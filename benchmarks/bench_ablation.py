"""Ablations beyond the paper's figures (DESIGN.md A1/A2).

* A1 — Eq. (1) vs Eq. (2) target bounds inside BestFirst.  Eq. (1) is
  per-node tighter but O(|L| |V_T|) per evaluation; the paper argues
  (Section 4.2) that Eq. (2) wins overall.  Expect Eq2 faster on a
  populous category.
* A2 — what alpha actually trades: small alpha → many cheap TestLB
  calls (mostly failures), large alpha → few calls that each settle
  more nodes.  Counter means per query, not milliseconds.
"""

from __future__ import annotations

from repro.bench.experiments import (
    ablation_alpha_counters,
    ablation_bounds,
    ablation_hub_labels,
    work_table,
)


def test_work_counters_report(benchmark, report, queries_per_point):
    """Lemma 4.1, measured: per-algorithm work counters."""
    figure = benchmark.pedantic(
        lambda: work_table("CAL", category="Lake", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure, unit="count")


def test_ablation_eq1_vs_eq2_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: ablation_bounds(
            "CAL", category="Harbor", queries_per_point=queries_per_point
        ),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_ablation_hub_labels_report(benchmark, report, queries_per_point):
    """A3: 2-hop labels help KSP but degrade on KPJ (Section 3)."""
    figure = benchmark.pedantic(
        lambda: ablation_hub_labels("SJ", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_ablation_alpha_counters_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: ablation_alpha_counters(
            "CAL", category="Harbor", queries_per_point=queries_per_point
        ),
        rounds=1,
        iterations=1,
    )
    report(figure, unit="count")
