"""Figure 10 — varying the number of destination nodes (T1..T4).

Expected shape (paper): more destinations → shorter shortest paths
(Fig. 11) → every approach gets faster from T1 to T4, and
IterBound_I's margin over IterBound_P widens with |T| because SPT_I
prunes destinations the query never approaches.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig10
from repro.bench.harness import solver_for, workload_for


@pytest.mark.parametrize("dataset", ["SJ", "COL"])
def test_fig10_report(benchmark, report, queries_per_point, dataset):
    figure = benchmark.pedantic(
        lambda: fig10(dataset, queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


@pytest.mark.parametrize("category", ["T1", "T4"])
def test_single_query_extreme_categories(benchmark, category):
    """IterBound_I on COL at the smallest and largest destination sets."""
    _, solver = solver_for("COL")
    workload = workload_for("COL", category)
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category=category, k=20),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
