"""Figure 11 — shortest-path-length percentiles vs |T|.

Expected shape (paper): for every dataset, the longest node-to-T_i
distance drops through the all-pairs distance distribution as the
destination set grows from T1 to T4 — the structural reason all
approaches speed up with |T| in Figure 10.

Values are percentiles (%), not milliseconds.
"""

from __future__ import annotations

from repro.bench.experiments import fig11


def test_fig11_report(benchmark, report, full_suite):
    datasets = ("SJ", "SF", "COL", "FLA", "USA") if full_suite else ("SJ", "SF", "COL")
    figure = benchmark.pedantic(
        lambda: fig11(datasets=datasets, sample_sources=8),
        rounds=1,
        iterations=1,
    )
    report(figure, unit="%")
