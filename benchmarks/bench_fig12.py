"""Figure 12 — scalability of IterBound_I.

Expected shape (paper): growing the graph 40x (SJ → USA) raises the
query time only a few times (the exploration area depends on the
query's locality, not on n); time grows mildly and sublinearly with k
up to k = 500.
"""

from __future__ import annotations

from repro.bench.experiments import fig12a, fig12b
from repro.bench.harness import solver_for, workload_for


def test_fig12a_graph_size_report(benchmark, report, queries_per_point, full_suite):
    datasets = (
        ("SJ", "SF", "COL", "FLA", "USA")
        if full_suite
        else ("SJ", "SF", "COL", "FLA")
    )
    figure = benchmark.pedantic(
        lambda: fig12a(datasets=datasets, queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_fig12b_large_k_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig12b("COL", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_single_query_fla(benchmark):
    """IterBound_I on the second-largest default dataset."""
    _, solver = solver_for("FLA")
    workload = workload_for("FLA", "T2")
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category="T2", k=20),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_single_query_col_k500(benchmark):
    """IterBound_I at the paper's largest k."""
    _, solver = solver_for("COL")
    workload = workload_for("COL", "T2")
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category="T2", k=500),
        rounds=2,
        iterations=1,
    )
