"""Figure 13 — GKPJ (4 random sources) on COL: DA-SPT vs IterBound_I.

Expected shape (paper): with multiple sources the k shortest paths
get shorter, so the gap widens — IterBound_I beats DA-SPT by about
two orders of magnitude; both get faster as |T| grows, and slower
(mildly) with k.
"""

from __future__ import annotations

import random

from repro.bench.experiments import fig13
from repro.bench.harness import solver_for


def test_fig13_vary_t_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig13("COL", vary="T", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_fig13_vary_k_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig13("COL", vary="k", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_single_gkpj_iterbound_spti(benchmark):
    """One 4-source GKPJ query with the paper's best method."""
    network, solver = solver_for("COL")
    sources = tuple(random.Random(5).sample(range(network.n), 4))
    benchmark.pedantic(
        lambda: solver.join(sources=sources, category="T2", k=20),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_single_gkpj_da_spt(benchmark):
    """The same GKPJ query with DA-SPT."""
    network, solver = solver_for("COL")
    sources = tuple(random.Random(5).sample(range(network.n), 4))
    benchmark.pedantic(
        lambda: solver.join(sources=sources, category="T2", k=20, algorithm="da-spt"),
        rounds=2,
        iterations=1,
    )
