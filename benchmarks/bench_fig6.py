"""Figure 6 — parameter testing on CAL (landmark count and alpha).

Expected shape (paper): time falls as |L| grows to 16, then rises a
little at 32; alpha is best near 1.1, worse at both 1.05 (too many
iterations) and 1.8 (overshooting tau builds too much tree).
"""

from __future__ import annotations

from repro.bench.experiments import fig6a, fig6b
from repro.bench.harness import solver_for, time_query_batch, workload_for


def test_fig6a_vary_landmarks_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig6a(queries_per_point=queries_per_point), rounds=1, iterations=1
    )
    report(figure)


def test_fig6b_vary_alpha_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig6b(queries_per_point=queries_per_point), rounds=1, iterations=1
    )
    report(figure)


def _one_query(landmarks: int):
    _, solver = solver_for("CAL", landmarks=landmarks)
    workload = workload_for("CAL", "Lake")
    source = workload.group("Q3")[0]
    return lambda: solver.top_k(source, category="Lake", k=20)


def test_iterbound_spti_4_landmarks(benchmark):
    """One CAL/Lake query with a small landmark set."""
    benchmark.pedantic(_one_query(4), rounds=5, iterations=1, warmup_rounds=1)


def test_iterbound_spti_16_landmarks(benchmark):
    """Same query with the paper's default 16 landmarks."""
    benchmark.pedantic(_one_query(16), rounds=5, iterations=1, warmup_rounds=1)


def test_iterbound_spti_alpha_sensitivity(benchmark):
    """Same query at alpha=1.8 (coarse tau growth)."""
    _, solver = solver_for("CAL", landmarks=16)
    workload = workload_for("CAL", "Lake")
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category="Lake", k=20, alpha=1.8),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
