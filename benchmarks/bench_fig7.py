"""Figure 7 — KPJ on CAL: all seven algorithms vs the baselines.

Expected shape (paper): every best-first variant beats DA and DA-SPT;
IterBound_I is fastest; DA-SPT is roughly flat across query groups
(the full-SPT build dominates) while everything else grows from Q1 to
Q5; times rise mildly with k.  With the large "Harbor" category
(Fig. 7(e)–(f)) DA-SPT falls behind DA's relative position because
the full SPT is pure overhead for short paths.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ALGO_LABELS, fig7
from repro.bench.harness import solver_for, time_query_batch, workload_for


@pytest.mark.parametrize("category", ["Lake", "Crater", "Harbor"])
def test_fig7_vary_q_report(benchmark, report, queries_per_point, full_suite, category):
    if category == "Crater" and not full_suite:
        pytest.skip("Crater panel only in REPRO_BENCH_FULL=1 runs")
    figure = benchmark.pedantic(
        lambda: fig7(category=category, vary="Q", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


@pytest.mark.parametrize("category", ["Lake", "Crater", "Harbor"])
def test_fig7_vary_k_report(benchmark, report, queries_per_point, full_suite, category):
    if category != "Lake" and not full_suite:
        pytest.skip("extra vary-k panels only in REPRO_BENCH_FULL=1 runs")
    figure = benchmark.pedantic(
        lambda: fig7(category=category, vary="k", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


@pytest.mark.parametrize("algorithm", sorted(ALGO_LABELS))
def test_single_query_lake_q3(benchmark, algorithm):
    """One CAL/Lake Q3 query (k=20) per algorithm — the per-algorithm
    timing units behind Fig. 7(a)."""
    _, solver = solver_for("CAL")
    workload = workload_for("CAL", "Lake")
    source = workload.group("Q3")[0]
    rounds = 2 if algorithm in ("da", "da-spt") else 5
    benchmark.pedantic(
        lambda: solver.top_k(source, category="Lake", k=20, algorithm=algorithm),
        rounds=rounds,
        iterations=1,
    )
