"""Figure 8 — KSP on CAL ("Glacier" has one node).

Expected shape (paper): same as Fig. 7 — the best-first family beats
both deviation baselines by orders of magnitude even in the pure-KSP
setting, demonstrating the paper's closing claim.
"""

from __future__ import annotations

from repro.bench.experiments import fig8
from repro.bench.harness import solver_for, workload_for


def test_fig8_vary_q_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig8(vary="Q", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_fig8_vary_k_report(benchmark, report, queries_per_point):
    figure = benchmark.pedantic(
        lambda: fig8(vary="k", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


def test_ksp_iterbound_spti_single_query(benchmark):
    """One Glacier KSP query with the paper's best method."""
    _, solver = solver_for("CAL")
    workload = workload_for("CAL", "Glacier")
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category="Glacier", k=20),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_ksp_da_spt_single_query(benchmark):
    """The same query with the pre-paper state of the art."""
    _, solver = solver_for("CAL")
    workload = workload_for("CAL", "Glacier")
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category="Glacier", k=20, algorithm="da-spt"),
        rounds=2,
        iterations=1,
    )
