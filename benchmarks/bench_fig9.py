"""Figure 9 — our four approaches on SJ and COL (category T2).

Expected shape (paper): IterBound slightly beats BestFirst (fewer
shortest-path computations, pricier bounds), IterBound_P beats
IterBound (faster lower-bound testing), IterBound_I beats them all
(smallest exploration area); times grow with Q and with k.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig9
from repro.bench.harness import solver_for, workload_for


@pytest.mark.parametrize("dataset", ["SJ", "COL"])
def test_fig9_vary_q_report(benchmark, report, queries_per_point, dataset):
    figure = benchmark.pedantic(
        lambda: fig9(dataset, vary="Q", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


@pytest.mark.parametrize("dataset", ["SJ", "COL"])
def test_fig9_vary_k_report(benchmark, report, queries_per_point, dataset):
    figure = benchmark.pedantic(
        lambda: fig9(dataset, vary="k", queries_per_point=queries_per_point),
        rounds=1,
        iterations=1,
    )
    report(figure)


@pytest.mark.parametrize(
    "algorithm", ["best-first", "iter-bound", "iter-bound-sptp", "iter-bound-spti"]
)
def test_single_query_col_q3(benchmark, algorithm):
    """One COL/T2 Q3 query (k=20) per approach."""
    _, solver = solver_for("COL")
    workload = workload_for("COL", "T2")
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: solver.top_k(source, category="T2", k=20, algorithm=algorithm),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
