"""Flat-core IterBound engine benchmark (BENCH_iterbound.json).

Not a paper figure — this times the *query path* of every registry
algorithm on COL under both search substrates and writes a
machine-readable per-query latency report to
``benchmarks/results/BENCH_iterbound.json``:

* every algorithm in :data:`repro.core.kpj.ALGORITHMS`, ``dict``
  kernel vs ``flat`` kernel, per-query p50/p95 over the timed
  sources;
* the headline ``IterBound-SPT_I`` comparison over the **full** T2
  workload (all five groups): the flat-core engine
  (:func:`repro.core.flat_engine.flat_spti_search` — per-query
  :class:`FlatQueryContext`, array-backed incremental SPT, batched
  Alg. 8 division) against the *pre-flat-core baseline* — the PR-1
  configuration that ran the dict driver over the flat leaf kernels
  and materialised the eager Eq. (2) source-bound vector per query.

Every timed configuration is asserted to return identical results
before its numbers are recorded: exact ``(length, nodes)`` sequences
for all algorithms except ``da-spt``, whose SPT-ordered deviation
search is only specified up to the length multiset (scipy and dict
SPT builds break distance ties differently).

Timing protocol: one untimed warm-up pass per configuration (fills
the CSR/overlay/landmark caches — the engine's whole point is that
these are per-snapshot, not per-query), then best-of-``R`` reps per
query (``REPRO_BENCH_REPS``, default 3) to suppress scheduler noise;
p50/p95 are taken across the per-query best times.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.bench.harness import solver_for, workload_for
from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.core.spt_incremental import iter_bound_spti
from repro.core.stats import SearchStats
from repro.graph.virtual import build_query_graph
from repro.pathing.kernels import use_kernel

RESULTS_DIR = Path(__file__).parent / "results"

K = 20
REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
# Sources per workload group for the all-algorithms sweep (the
# headline SPT_I comparison always runs the full workload).
SWEEP_PER_GROUP = int(os.environ.get("REPRO_BENCH_SWEEP_SOURCES", "2"))

GROUPS = ("Q1", "Q2", "Q3", "Q4", "Q5")


def _setup():
    network, solver = solver_for("COL")
    workload = workload_for("COL", "T2")
    return network, solver, workload


def _percentiles(seconds: list[float]) -> dict[str, float]:
    ordered = sorted(seconds)
    p95_at = min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))
    return {
        "queries": len(ordered),
        "p50_ms": statistics.median(ordered) * 1e3,
        "p95_ms": ordered[p95_at] * 1e3,
        "mean_ms": statistics.fmean(ordered) * 1e3,
    }


def _best_of(fn, reps: int = REPS) -> tuple[float, object]:
    """Best wall-clock of ``reps`` runs and the (identical) result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


def _path_key(paths) -> list[tuple[float, tuple[int, ...]]]:
    return [(p.length, p.nodes) for p in paths]


def _length_key(paths) -> list[float]:
    return sorted(round(p.length, 9) for p in paths)


def test_iterbound_engine_report():
    """Per-query p50/p95 of every registry algorithm, dict vs flat,
    plus the flat-core vs pre-flat-core ``SPT_I`` headline; asserts
    result identity everywhere and writes ``BENCH_iterbound.json``.
    """
    network, dict_solver, workload = _setup()
    index = dict_solver.landmark_index
    flat_solver = KPJSolver(
        network.graph, network.categories, landmarks=index, kernel="flat"
    )
    destinations = workload.destinations

    report: dict = {
        "dataset": "COL",
        "n": network.graph.n,
        "m": network.graph.m,
        "k": K,
        "workload": {
            "category": "T2",
            "destinations": len(destinations),
            "groups": {g: len(workload.group(g)) for g in GROUPS},
        },
        "protocol": {
            "reps_best_of": REPS,
            "warmup_passes": 1,
            "sweep_sources_per_group": SWEEP_PER_GROUP,
        },
        "algorithms": {},
    }

    # ------------------------------------------------------------------
    # All-algorithms sweep: dict vs flat, identical answers asserted.
    # ------------------------------------------------------------------
    sweep_sources = [s for g in GROUPS for s in workload.group(g)[:SWEEP_PER_GROUP]]
    solvers = {"dict": dict_solver, "flat": flat_solver}
    for algorithm in ALGORITHMS:
        entry: dict = {}
        answers: dict[str, list] = {}
        for kernel, solver in solvers.items():
            for source in sweep_sources:  # warm-up: caches + allocator
                solver.top_k(
                    source, destinations=destinations, k=K, algorithm=algorithm
                )
            times = []
            paths = []
            for source in sweep_sources:
                dt, result = _best_of(
                    lambda s=source: solver.top_k(
                        s, destinations=destinations, k=K, algorithm=algorithm
                    )
                )
                times.append(dt)
                paths.append(result.paths)
            answers[kernel] = paths
            entry[kernel] = _percentiles(times)
        for got_dict, got_flat in zip(answers["dict"], answers["flat"]):
            if algorithm == "da-spt":
                # SPT-ordered deviation: identical length multiset only
                # (tie-broken SPT parents differ between substrates).
                assert _length_key(got_dict) == _length_key(got_flat), algorithm
            else:
                assert _path_key(got_dict) == _path_key(got_flat), algorithm
        entry["speedup_flat_over_dict_p50"] = (
            entry["dict"]["p50_ms"] / entry["flat"]["p50_ms"]
        )
        report["algorithms"][algorithm] = entry

    # ------------------------------------------------------------------
    # Headline: IterBound-SPT_I flat-core vs the pre-flat-core flat
    # baseline, full workload, per-group and aggregate.
    # ------------------------------------------------------------------
    graph = network.graph
    target_bounds = index.to_target_bounds(destinations)

    def run_pre(qg):
        # PR-1 configuration: dict driver over flat leaf kernels, eager
        # per-query Eq. (2) source-bound vector.
        source_bounds = index.from_source_bounds(qg.sources)
        return iter_bound_spti(
            qg, K, target_bounds, source_bounds, stats=SearchStats(), flat_core=False
        )

    def run_core(qg):
        # This PR: flat engine end-to-end, lazy source bounds.
        source_bounds = index.lazy_source_bounds(qg.sources)
        return iter_bound_spti(
            qg, K, target_bounds, source_bounds, stats=SearchStats(), flat_core=True
        )

    headline: dict = {"groups": {}}
    all_pre: list[float] = []
    all_core: list[float] = []
    with use_kernel("flat"):
        for group in GROUPS:
            query_graphs = [
                build_query_graph(graph, (s,), destinations)
                for s in workload.group(group)
            ]
            for qg in query_graphs:  # warm-up
                run_pre(qg)
                run_core(qg)
            pre_times, core_times = [], []
            for qg in query_graphs:
                dt_pre, paths_pre = _best_of(lambda q=qg: run_pre(q))
                dt_core, paths_core = _best_of(lambda q=qg: run_core(q))
                assert _path_key(paths_pre) == _path_key(paths_core), group
                pre_times.append(dt_pre)
                core_times.append(dt_core)
            all_pre += pre_times
            all_core += core_times
            headline["groups"][group] = {
                "pre_flat_baseline": _percentiles(pre_times),
                "flat_core": _percentiles(core_times),
                "speedup_p50": statistics.median(pre_times)
                / statistics.median(core_times),
            }
    headline["pre_flat_baseline"] = _percentiles(all_pre)
    headline["flat_core"] = _percentiles(all_core)
    headline["speedup_p50"] = statistics.median(all_pre) / statistics.median(all_core)
    headline["speedup_total"] = sum(all_pre) / sum(all_core)
    report["iter_bound_spti_flat_core_vs_pre"] = headline

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_iterbound.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\nIterBound-SPT_I flat-core vs pre-flat baseline (COL/T2, k={K}):")
    for group, numbers in headline["groups"].items():
        print(
            f"  {group}: pre p50 {numbers['pre_flat_baseline']['p50_ms']:.2f} ms"
            f"  core p50 {numbers['flat_core']['p50_ms']:.2f} ms"
            f"  = {numbers['speedup_p50']:.2f}x"
        )
    print(
        f"  ALL: pre p50 {headline['pre_flat_baseline']['p50_ms']:.2f} ms"
        f"  core p50 {headline['flat_core']['p50_ms']:.2f} ms"
        f"  = {headline['speedup_p50']:.2f}x (total {headline['speedup_total']:.2f}x)"
    )

    # The flat core must never regress the flat baseline; the measured
    # target on an unloaded machine is >= 2x at the aggregate p50 (the
    # committed JSON records the exact figure).
    assert headline["speedup_p50"] > 1.0, headline["speedup_p50"]


if __name__ == "__main__":  # pragma: no cover - manual convenience
    pytest.main([__file__, "-s", "-x"])
