"""Micro-benchmarks of the shortest-path substrate.

Not a paper figure — these isolate the kernels every algorithm is
built from, so a regression here explains a regression everywhere:
full Dijkstra, goal-directed A*, bounded A* (TestLB), the full-SPT
build (DA-SPT's fixed cost), the per-query Eq. (2) bound vector, and
the batch-API saving from reusing it.

``test_kernel_comparison_report`` additionally times the ``dict``,
``flat``, and ``native`` kernels head-to-head, checks the results
agree, and writes a machine-readable summary to
``benchmarks/results/BENCH_kernels.json`` (queries/sec per kernel
plus the speedup ratios).  The native-over-flat floor (3x) is only
asserted when numba is installed; without it the native tier
delegates to flat and the column documents fallback parity instead.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import solver_for, workload_for
from repro.pathing.astar import astar_path, bounded_astar_path
from repro.pathing.dijkstra import single_source_distances
from repro.pathing.spt import build_spt_to_target

RESULTS_DIR = Path(__file__).parent / "results"


def _setup():
    network, solver = solver_for("COL")
    workload = workload_for("COL", "T2")
    return network, solver, workload


def test_dijkstra_full_sssp(benchmark):
    """One full single-source run on COL (the landmark-build unit)."""
    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: single_source_distances(network.graph, source),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_astar_point_to_point(benchmark):
    """Goal-directed A* with the landmark heuristic on COL."""
    network, solver, workload = _setup()
    source = workload.group("Q5")[0]
    target = network.categories.nodes_of("T2")[0]
    bounds = solver.landmark_index.to_target_bounds((target,))
    benchmark.pedantic(
        lambda: astar_path(network.graph, source, target, bounds),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_bounded_astar_failing_test(benchmark):
    """A failing TestLB (the common, cheap case of IterBound)."""
    network, solver, workload = _setup()
    source = workload.group("Q5")[0]
    target = network.categories.nodes_of("T2")[0]
    bounds = solver.landmark_index.to_target_bounds((target,))
    tau = bounds(source) * 0.9  # below the true distance: must fail fast
    benchmark.pedantic(
        lambda: bounded_astar_path(
            network.graph, source, target, bounds, bound=tau
        ),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_full_spt_build(benchmark):
    """DA-SPT's fixed per-query cost: the full SPT on COL's G_Q."""
    from repro.graph.virtual import build_query_graph

    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    qg = build_query_graph(
        network.graph, (source,), network.categories.nodes_of("T2")
    )
    benchmark.pedantic(
        lambda: build_spt_to_target(qg.graph, qg.target),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_eq2_bound_vector(benchmark):
    """The per-query O(|L| n) Eq. (2) initialisation on COL."""
    network, solver, _ = _setup()
    targets = network.categories.nodes_of("T2")
    benchmark.pedantic(
        lambda: solver.landmark_index.to_target_bounds(targets),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_prepared_batch_queries(benchmark):
    """Five IterBound_I queries through the prepared-category API."""
    _, solver, workload = _setup()
    sources = workload.group("Q3")[:5]

    def run():
        prepared = solver.prepare(category="T2")
        for source in sources:
            prepared.top_k(source, k=20)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


# ----------------------------------------------------------------------
# dict vs flat kernel comparison
# ----------------------------------------------------------------------


def test_flat_dijkstra_full_sssp(benchmark):
    """The flat-kernel counterpart of ``test_dijkstra_full_sssp``."""
    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    # Prime the CSR export so the benchmark measures the solve alone.
    single_source_distances(network.graph, source, kernel="flat")
    benchmark.pedantic(
        lambda: single_source_distances(network.graph, source, kernel="flat"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_flat_full_spt_build(benchmark):
    """The flat-kernel counterpart of ``test_full_spt_build``."""
    from repro.graph.virtual import build_query_graph

    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    qg = build_query_graph(
        network.graph, (source,), network.categories.nodes_of("T2")
    )
    build_spt_to_target(qg.graph, qg.target, kernel="flat")
    benchmark.pedantic(
        lambda: build_spt_to_target(qg.graph, qg.target, kernel="flat"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_native_dijkstra_full_sssp(benchmark):
    """The native-kernel counterpart of ``test_dijkstra_full_sssp``.

    Without numba this measures the flat-delegating fallback — a
    sanity check that the dispatch layer adds no real overhead.
    """
    from repro.pathing.native import warmup_jit

    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    warmup_jit()
    single_source_distances(network.graph, source, kernel="native")
    benchmark.pedantic(
        lambda: single_source_distances(network.graph, source, kernel="native"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def _time_kernel(fn, rounds: int) -> float:
    """Best-of-``rounds`` wall-clock seconds for one call of ``fn``."""
    fn()  # warmup (also primes lazy CSR/landmark caches)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_comparison_report():
    """Time every kernel's SSSP on COL and write BENCH_kernels.json.

    Also asserts all substrates agree on every distance, so the
    speedup numbers are for *identical* answers.
    """
    from repro.pathing.kernels import KERNELS
    from repro.pathing.native import HAVE_NUMBA, warmup_jit

    network, _, workload = _setup()
    sources = workload.group("Q3")[:3]

    dist_dict = single_source_distances(network.graph, sources[0], kernel="dict")
    for kernel in KERNELS[1:]:
        dist = single_source_distances(
            network.graph, sources[0], kernel=kernel
        )
        assert np.array_equal(
            np.asarray(dist_dict), np.asarray(dist)
        ), f"{kernel} and dict SSSP disagree on COL"

    warmup_jit()  # JIT compilation must not pollute the native column
    report = {
        "dataset": "COL",
        "n": network.graph.n,
        "have_numba": HAVE_NUMBA,
        "kernels": {},
    }
    for kernel in KERNELS:

        def run(kernel=kernel):
            for source in sources:
                single_source_distances(network.graph, source, kernel=kernel)

        seconds = _time_kernel(run, rounds=3)
        report["kernels"][kernel] = {
            "sssp_seconds_per_query": seconds / len(sources),
            "sssp_queries_per_s": len(sources) / seconds,
        }

    per_query = {
        kernel: report["kernels"][kernel]["sssp_seconds_per_query"]
        for kernel in KERNELS
    }
    ratio = per_query["dict"] / per_query["flat"]
    report["flat_speedup_over_dict"] = ratio
    native_ratio = per_query["flat"] / per_query["native"]
    report["native_speedup_over_flat"] = native_ratio

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_kernels.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nflat vs dict SSSP on COL: {ratio:.2f}x, "
          f"native vs flat: {native_ratio:.2f}x  -> {out}")

    from repro.pathing.flat import HAVE_SCIPY

    if HAVE_SCIPY:
        assert ratio >= 2.0, (
            f"flat kernel only {ratio:.2f}x over dict on COL SSSP "
            "(acceptance floor is 2x)"
        )
    if HAVE_NUMBA:
        assert native_ratio >= 3.0, (
            f"native kernel only {native_ratio:.2f}x over flat on COL SSSP "
            "(acceptance floor is 3x)"
        )
