"""Micro-benchmarks of the shortest-path substrate.

Not a paper figure — these isolate the kernels every algorithm is
built from, so a regression here explains a regression everywhere:
full Dijkstra, goal-directed A*, bounded A* (TestLB), the full-SPT
build (DA-SPT's fixed cost), the per-query Eq. (2) bound vector, and
the batch-API saving from reusing it.
"""

from __future__ import annotations

from repro.bench.harness import solver_for, workload_for
from repro.pathing.astar import astar_path, bounded_astar_path
from repro.pathing.dijkstra import single_source_distances
from repro.pathing.spt import build_spt_to_target


def _setup():
    network, solver = solver_for("COL")
    workload = workload_for("COL", "T2")
    return network, solver, workload


def test_dijkstra_full_sssp(benchmark):
    """One full single-source run on COL (the landmark-build unit)."""
    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    benchmark.pedantic(
        lambda: single_source_distances(network.graph, source),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_astar_point_to_point(benchmark):
    """Goal-directed A* with the landmark heuristic on COL."""
    network, solver, workload = _setup()
    source = workload.group("Q5")[0]
    target = network.categories.nodes_of("T2")[0]
    bounds = solver.landmark_index.to_target_bounds((target,))
    benchmark.pedantic(
        lambda: astar_path(network.graph, source, target, bounds),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_bounded_astar_failing_test(benchmark):
    """A failing TestLB (the common, cheap case of IterBound)."""
    network, solver, workload = _setup()
    source = workload.group("Q5")[0]
    target = network.categories.nodes_of("T2")[0]
    bounds = solver.landmark_index.to_target_bounds((target,))
    tau = bounds(source) * 0.9  # below the true distance: must fail fast
    benchmark.pedantic(
        lambda: bounded_astar_path(
            network.graph, source, target, bounds, bound=tau
        ),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_full_spt_build(benchmark):
    """DA-SPT's fixed per-query cost: the full SPT on COL's G_Q."""
    from repro.graph.virtual import build_query_graph

    network, _, workload = _setup()
    source = workload.group("Q3")[0]
    qg = build_query_graph(
        network.graph, (source,), network.categories.nodes_of("T2")
    )
    benchmark.pedantic(
        lambda: build_spt_to_target(qg.graph, qg.target),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_eq2_bound_vector(benchmark):
    """The per-query O(|L| n) Eq. (2) initialisation on COL."""
    network, solver, _ = _setup()
    targets = network.categories.nodes_of("T2")
    benchmark.pedantic(
        lambda: solver.landmark_index.to_target_bounds(targets),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_prepared_batch_queries(benchmark):
    """Five IterBound_I queries through the prepared-category API."""
    _, solver, workload = _setup()
    sources = workload.group("Q3")[:5]

    def run():
        prepared = solver.prepare(category="T2")
        for source in sources:
            prepared.top_k(source, k=20)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
