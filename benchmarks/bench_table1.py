"""Table 1 — dataset summary (paper sizes vs scaled analogues).

Also benchmarks the dataset construction + landmark indexing path,
the per-dataset offline cost every other benchmark amortises.
"""

from __future__ import annotations

from repro.bench.experiments import table1
from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.datasets.synthetic import grid_road_network


def test_table1_report(benchmark, report):
    """Print the Table-1 rows (dataset sizes)."""

    def run():
        return table1()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'dataset':<8} {'nodes':>9} {'edges':>9} {'paper n':>10} {'paper m':>11}"
    lines = ["Table 1: datasets (scaled synthetic analogues)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<8} {row['nodes']:>9} {row['edges']:>9} "
            f"{row['paper_nodes']:>10} {row['paper_edges']:>11}"
        )
    print("\n" + "\n".join(lines) + "\n")
    from pathlib import Path

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "table1.txt").write_text("\n".join(lines) + "\n")


def test_generate_sj_scale_network(benchmark):
    """Offline: generating an SJ-scale road network."""
    benchmark.pedantic(
        lambda: grid_road_network(32, 28, seed=99), rounds=3, iterations=1
    )


def test_landmark_build_sj(benchmark):
    """Offline: 16-landmark index on SJ (one Dijkstra per landmark)."""
    dataset = road_network("SJ")

    def build():
        return KPJSolver(dataset.graph, dataset.categories, landmarks=16)

    benchmark.pedantic(build, rounds=3, iterations=1)
