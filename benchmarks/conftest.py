"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_QUERIES`` — sources timed per figure point (default 2;
  the paper uses 100 — raise it for tighter numbers).
* ``REPRO_BENCH_FULL=1`` — include the most expensive panels (the USA
  dataset in Figures 11/12, every CAL category panel in Figure 7).

Every reproduced figure is printed to stdout (visible with ``-s`` /
in the benchmark run log) *and* persisted under
``benchmarks/results/`` so the numbers survive output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def queries_per_point() -> int:
    """Sources timed per figure point."""
    return QUERIES


@pytest.fixture(scope="session")
def full_suite() -> bool:
    """Whether the expensive panels are enabled."""
    return FULL


@pytest.fixture(scope="session")
def report():
    """Print a reproduced figure and persist it under results/."""
    from repro.bench.reporting import format_figure, write_figure

    def _report(figure, unit: str = "ms") -> None:
        text = format_figure(figure, unit=unit)
        print("\n" + text + "\n")
        write_figure(figure, RESULTS_DIR, unit=unit)

    return _report
