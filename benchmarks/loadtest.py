"""Config-driven load-test harness (BENCH_loadtest.json).

The serving-side counterpart of ``benchmarks/regression.py``: where
the perf gate pins single-query phase latencies, this harness pins
**behaviour under concurrent open-loop load** — tail latency split
into queue wait vs service time, achieved-vs-target throughput,
occupancy, and error counts — for one or more declarative workload
specs (see :mod:`repro.bench.workload` and ``benchmarks/specs/``).

Each invocation replays every ``--spec`` (default: the pinned smoke
spec) and either:

* ``--update`` — appends one schema-versioned entry per spec to
  ``benchmarks/results/BENCH_loadtest.json``;
* ``--check`` (the default) — replays and evaluates the SLO gate:
  the spec's declared absolute bounds (p99 latency ceiling,
  throughput floor, error budget) plus the regression bound against
  the latest committed entry with the identical spec.  A spec with no
  committed baseline is gated on its absolute bounds only and
  reported.  Any violation exits non-zero.

The arrival schedule is deterministic in the spec's seed (the entry
records its SHA-256), so a baseline comparison is known to have
replayed exactly the same workload; the latencies are the only thing
allowed to differ.  ``kpj report --loadtest`` renders the committed
trajectory as markdown.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.loadtest import (  # noqa: E402
    baseline_for,
    evaluate_gate,
    load_entries,
    render_entry_summary,
    replay_workload,
)
from repro.bench.workload import load_spec  # noqa: E402
from repro.exceptions import QueryError  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_loadtest.json"
DEFAULT_SPEC = Path(__file__).parent / "specs" / "loadtest_smoke.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--spec",
        action="append",
        metavar="FILE",
        help=f"workload spec file(s), repeatable (default: {DEFAULT_SPEC})",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help="append a trajectory entry per spec instead of gating",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="gate against the spec SLO + committed baseline (default)",
    )
    parser.add_argument(
        "--target", choices=("pool", "service"), default="pool",
        help="serving tier to replay against (default: pool); entries "
        "and baselines are matched per target",
    )
    parser.add_argument(
        "--url", metavar="URL", default=None,
        help="replay over HTTP against a running `kpj serve` endpoint "
        "(implies --target service)",
    )
    args = parser.parse_args(argv)
    target = "service" if args.url else args.target

    spec_paths = args.spec or [str(DEFAULT_SPEC)]
    try:
        specs = [load_spec(path) for path in spec_paths]
    except QueryError as exc:
        print(f"bad workload spec: {exc}", file=sys.stderr)
        return 2
    trajectory = load_entries(str(TRAJECTORY))

    exit_code = 0
    for spec in specs:
        baseline = baseline_for(trajectory, spec.as_dict(), target=target)
        try:
            entry = replay_workload(
                spec, progress=lambda msg: print(f"# {msg}"),
                target=target, url=args.url,
            )
        except QueryError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(render_entry_summary(entry, baseline))
        if args.update:
            trajectory.append(entry)
            continue
        failures = evaluate_gate(entry, spec, baseline)
        if failures:
            print(f"\nSLO GATE FAILED for {spec.name!r}:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            exit_code = 1
        elif baseline is None:
            print(f"slo gate OK for {spec.name!r} "
                  "(no committed baseline yet; absolute bounds only — "
                  "run with --update to record one)")
        else:
            print(f"slo gate OK for {spec.name!r} vs "
                  f"{str(baseline.get('sha', '?'))[:12]} "
                  f"({baseline.get('date', '?')})")

    if args.update:
        RESULTS_DIR.mkdir(exist_ok=True)
        TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"recorded {len(specs)} entr"
              f"{'y' if len(specs) == 1 else 'ies'} -> {TRAJECTORY}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
