"""Continuous perf-regression harness (BENCH_trajectory.json).

Runs a **pinned** small workload — COL, category T2, eight fixed
sources, ``k=64``, eight landmarks, ``iter-bound-spti`` — once per
kernel (``dict``, ``flat``, ``native``) with the span tracer
attached, and derives per-phase latencies from the recorded spans
(:func:`repro.obs.tracing.phase_durations`, which sums only the
``cat == "phase"`` leaves, so container spans never double-count).
The dict workload is protocol v1, byte-identical to the original
single-workload harness, so its trajectory continues unbroken; the
flat and native workloads differ only in the ``kernel`` field, which
lets the trajectory file record the dict/flat/native speed story of
the same answers over time.  (Under ``native`` the tracer forces the
sequential TestLB loop — the batched driver has no span story — so
the native column measures the compiled kernels per request.)  Each
invocation either:

* ``--update`` — appends one trajectory entry per workload (git SHA,
  UTC date, per-phase p50/p95 across the workload's queries,
  total-query percentiles, the per-phase **work counters** of the §3g
  taxonomy, and a checksum of every returned path) to
  ``benchmarks/results/BENCH_trajectory.json``;
* ``--check`` (the default) — re-measures each workload and compares
  it against the **latest committed entry with the same protocol**:
  any phase whose baseline p50 is at least ``MIN_PHASE_MS`` and whose
  new p50 exceeds ``THRESHOLD`` (1.25×) the baseline fails the gate,
  as does any change to the paths checksum (a perf harness that
  silently computes different answers is worse than a slow one).
  A workload with no committed baseline yet is reported and skipped.
  Whatever the mode, all kernels must return the **same** checksum as
  each other — cross-kernel divergence fails immediately.  Every run
  additionally writes ``results/work_counter_deltas.md`` — the work
  counters of each workload against its committed baseline (reported,
  never gated: counters are deterministic, so a delta is an
  algorithmic change to review, not noise; ``kpj report`` renders the
  same story from the committed trajectory).  On failure
  the offending run's span timeline is written to
  ``results/regression_failure.trace.json`` (Chrome trace-event JSON
  — the CI perf-gate job uploads it as an artifact) and the process
  exits non-zero.

Noise control: every query is measured ``REPS`` times (default 5)
and the minimum per phase is kept — the minimum estimates the
noise-free cost, which is the right statistic for a regression gate —
and phases cheaper than ``MIN_PHASE_MS`` at baseline are reported but
never gated (a 0.1 ms phase doubling under scheduler jitter is not a
regression).  A check that would fail re-measures the whole workload
once and keeps the elementwise minimum before deciding, so a transient
load spike on the runner needs to survive two full passes to block a
merge.  The workload is deliberately small (< 10 s end to end) so the
gate can run on every push.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.trajectory import (  # noqa: E402
    accumulate_work,
    render_work_deltas,
)
from repro.core.kpj import KPJSolver  # noqa: E402
from repro.datasets.registry import road_network  # noqa: E402
from repro.obs.tracing import (  # noqa: E402
    SpanTracer,
    chrome_trace,
    phase_durations,
)

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"
FAILURE_TRACE = RESULTS_DIR / "regression_failure.trace.json"
#: Work-counter delta tables vs baseline, one section per workload —
#: written on every run; the CI perf-gate job uploads it as an
#: artifact so counter drift is reviewable even when latency passes.
WORK_DELTAS = RESULTS_DIR / "work_counter_deltas.md"

#: p50 growth beyond this factor fails the gate.
THRESHOLD = 1.25
#: Phases cheaper than this at baseline are never gated (noise floor).
MIN_PHASE_MS = 0.5
#: Per-query repetitions; the per-phase minimum is kept.
REPS = int(os.environ.get("REPRO_REGRESSION_REPS", "5"))

#: The pinned workload (protocol v1, unchanged since the first
#: trajectory entry).  Changing ANY of these invalidates that
#: kernel's trajectory — bump the protocol version and start fresh.
PROTOCOL = {
    "version": 1,
    "dataset": "COL",
    "category": "T2",
    "sources": [10, 500, 1500, 3000, 5000, 7500, 10000, 14000],
    "k": 64,
    "landmarks": 8,
    "algorithm": "iter-bound-spti",
    "kernel": "dict",
}

#: One gated workload per kernel; identical but for the substrate, so
#: their checksums must agree with each other on every run.
PROTOCOLS = [
    PROTOCOL,
    {**PROTOCOL, "kernel": "flat"},
    {**PROTOCOL, "kernel": "native"},
]


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _percentiles(values_ms: list[float]) -> dict[str, float]:
    ordered = sorted(values_ms)
    p95_at = min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))
    return {"p50_ms": statistics.median(ordered), "p95_ms": ordered[p95_at]}


def run_workload(spec: dict = PROTOCOL) -> tuple[dict, str, list[dict], dict]:
    """Measure one pinned workload.

    Returns ``(per-phase percentiles, paths checksum, last-rep trace
    snapshots, work block)`` — the snapshots back the failure
    artifact; the work block is the workload's summed rep-0 work
    counters grouped per phase (deterministic, so one rep suffices —
    the work-parity fuzz invariant pins them across kernels).
    """
    dataset = road_network(spec["dataset"])
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=spec["landmarks"],
        kernel=spec["kernel"],
        tracer=SpanTracer(),
    )
    # Warm-up: landmark caches, prepared category, allocator.
    for source in spec["sources"]:
        solver.top_k(
            source, category=spec["category"], k=spec["k"],
            algorithm=spec["algorithm"],
        )

    checksum = hashlib.sha256()
    per_phase: dict[str, list[float]] = {}
    traces: list[dict] = []
    work: dict = {}
    for source in spec["sources"]:
        best: dict[str, float] = {}
        last_trace: dict | None = None
        for rep in range(REPS):
            result = solver.top_k(
                source, category=spec["category"], k=spec["k"],
                algorithm=spec["algorithm"],
            )
            phases = phase_durations(result.trace)
            phases["total"] = result.elapsed_ms / 1e3
            for name, seconds in phases.items():
                ms = seconds * 1e3
                if name not in best or ms < best[name]:
                    best[name] = ms
            last_trace = result.trace
            if rep == 0:
                accumulate_work(work, result.stats)
                for path in result.paths:
                    checksum.update(
                        f"{source}:{path.length:.9f}:{path.nodes}".encode()
                    )
        traces.append(last_trace)
        for name, ms in best.items():
            per_phase.setdefault(name, []).append(ms)

    phases = {name: _percentiles(values) for name, values in per_phase.items()}
    return phases, checksum.hexdigest(), traces, work


def make_entry(spec: dict = PROTOCOL) -> tuple[dict, list[dict]]:
    phases, checksum, traces, work = run_workload(spec)
    entry = {
        "sha": _git_sha(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "protocol": spec,
        "reps": REPS,
        "phases": phases,
        "work": work,
        "paths_checksum": checksum,
    }
    return entry, traces


def load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())


def baseline_for(trajectory: list[dict], spec: dict) -> dict | None:
    """The latest committed entry measured under exactly ``spec``."""
    for entry in reversed(trajectory):
        if entry.get("protocol") == spec:
            return entry
    return None


def check(entry: dict, baseline: dict) -> list[str]:
    """Gate ``entry`` against ``baseline``; returns failure messages."""
    failures: list[str] = []
    if baseline.get("protocol") != entry["protocol"]:
        return [
            "workload protocol changed — refresh the trajectory with --update"
        ]
    if baseline.get("paths_checksum") != entry["paths_checksum"]:
        failures.append(
            "paths checksum mismatch: the workload now returns different "
            f"answers (baseline {baseline.get('paths_checksum', '?')[:12]}…, "
            f"now {entry['paths_checksum'][:12]}…)"
        )
    base_phases = baseline.get("phases", {})
    for name, base in sorted(base_phases.items()):
        now = entry["phases"].get(name)
        if now is None:
            failures.append(f"phase {name!r} disappeared from the trace")
            continue
        if base["p50_ms"] < MIN_PHASE_MS:
            continue  # below the noise floor: report-only
        ratio = now["p50_ms"] / base["p50_ms"] if base["p50_ms"] else float("inf")
        if ratio > THRESHOLD:
            failures.append(
                f"phase {name!r} regressed {ratio:.2f}x at p50 "
                f"({base['p50_ms']:.3f} ms -> {now['p50_ms']:.3f} ms, "
                f"threshold {THRESHOLD}x)"
            )
    return failures


def _print_entry(entry: dict, baseline: dict | None) -> None:
    spec = entry["protocol"]
    print(f"workload: {spec['dataset']}/{spec['category']} "
          f"x{len(spec['sources'])} sources, k={spec['k']}, "
          f"{spec['algorithm']} ({spec['kernel']} kernel), "
          f"best-of-{entry['reps']}")
    base_phases = (baseline or {}).get("phases", {})
    width = max(len(n) for n in entry["phases"])
    for name in sorted(entry["phases"]):
        now = entry["phases"][name]
        line = (
            f"  {name:<{width}}  p50 {now['p50_ms']:8.3f} ms"
            f"  p95 {now['p95_ms']:8.3f} ms"
        )
        base = base_phases.get(name)
        if base and base["p50_ms"]:
            ratio = now["p50_ms"] / base["p50_ms"]
            gated = base["p50_ms"] >= MIN_PHASE_MS
            line += f"  ({ratio:5.2f}x vs baseline{'' if gated else ', not gated'})"
        print(line)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help="append a trajectory entry instead of gating",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="gate against the last committed entry (default)",
    )
    args = parser.parse_args(argv)

    trajectory = load_trajectory()
    measured: list[tuple[dict, list[dict]]] = []
    for spec in PROTOCOLS:
        measured.append(make_entry(spec))

    # Cross-kernel invariant: identical workload -> identical answers,
    # whatever the substrate.  Checked in every mode.
    checksums = {
        e["protocol"]["kernel"]: e["paths_checksum"] for e, _ in measured
    }
    if len(set(checksums.values())) != 1:
        print("CROSS-KERNEL CHECKSUM MISMATCH — the kernels disagree:",
              file=sys.stderr)
        for kernel, digest in sorted(checksums.items()):
            print(f"  {kernel}: {digest[:16]}…", file=sys.stderr)
        return 1

    # Work-counter delta artifact, written in every mode: the counters
    # are exact and deterministic, so any drift against the committed
    # baseline is an algorithmic change worth reviewing even when the
    # latency gate passes.  Reported, never gated.
    RESULTS_DIR.mkdir(exist_ok=True)
    sections = [
        render_work_deltas(entry, baseline_for(trajectory, entry["protocol"]))
        for entry, _ in measured
    ]
    WORK_DELTAS.write_text(
        "# Work-counter deltas vs committed baseline\n\n"
        + "\n\n".join(sections) + "\n"
    )
    print(f"work-counter delta table -> {WORK_DELTAS}")

    if args.update:
        RESULTS_DIR.mkdir(exist_ok=True)
        for entry, _ in measured:
            previous = baseline_for(trajectory, entry["protocol"])
            trajectory.append(entry)
            _print_entry(entry, previous)
        TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")
        sha = measured[0][0]["sha"][:12]
        print(f"recorded {len(measured)} entries ({sha}) -> {TRAJECTORY}")
        return 0

    if not trajectory:
        print(f"no trajectory at {TRAJECTORY}; run with --update first",
              file=sys.stderr)
        return 2
    exit_code = 0
    for entry, traces in measured:
        baseline = baseline_for(trajectory, entry["protocol"])
        if baseline is None:
            print(f"no baseline for the {entry['protocol']['kernel']!r} "
                  "workload yet; run with --update to record one (skipped)")
            continue
        failures = check(entry, baseline)
        if failures:
            # Second chance: a loaded runner inflates every phase at
            # once.  Re-measure and keep the per-phase minimum.
            print("gate would fail; re-measuring once to rule out "
                  "runner load", file=sys.stderr)
            retry, retry_traces = make_entry(entry["protocol"])
            for name, now in retry["phases"].items():
                old = entry["phases"].get(name)
                if old is None or now["p50_ms"] < old["p50_ms"]:
                    entry["phases"][name] = now
            if entry["paths_checksum"] != retry["paths_checksum"]:
                failures = ["paths checksum unstable across two passes"]
            else:
                traces = retry_traces
                failures = check(entry, baseline)
        _print_entry(entry, baseline)
        if failures:
            print(f"\nPERF GATE FAILED vs {baseline['sha'][:12]} "
                  f"({baseline['date']}):", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            RESULTS_DIR.mkdir(exist_ok=True)
            # One Chrome document with every query's last-rep timeline.
            merged = SpanTracer()
            for trace in traces:
                merged.absorb(trace)
            FAILURE_TRACE.write_text(json.dumps(chrome_trace(merged)) + "\n")
            print(f"  span timeline written to {FAILURE_TRACE}",
                  file=sys.stderr)
            exit_code = 1
        else:
            print(f"perf gate OK vs {baseline['sha'][:12]} "
                  f"({baseline['date']})")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
