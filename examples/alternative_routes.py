"""Alternative-route analysis: how *different* are the top-k routes?

KSP/KPJ applications rarely want k near-identical detours — trip
planners surface alternatives, investigators want distinct chains.
This example combines the KPJ engine with
:mod:`repro.analysis`: it computes top-k routes to a category, scores
their pairwise diversity (Jaccard distance of edge sets), shows how
diversity grows with k, and ranks the junctions that appear on the
most routes (the bottlenecks every alternative shares).

Run with::

    python examples/alternative_routes.py
"""

from __future__ import annotations

from repro import KPJSolver, road_network
from repro.analysis import node_frequencies, path_diversity
from repro.datasets.queries import stratified_sources


def main() -> None:
    dataset = road_network("SF")
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=16)
    workload = stratified_sources(
        dataset.graph, dataset.categories, "T2", per_group=5, seed=11
    )
    source = workload.group("Q4")[0]
    print(
        f"SF-style network ({dataset.n} junctions); routes from junction "
        f"{source} to category T2 ({dataset.categories.size('T2')} POIs)\n"
    )

    print(f"{'k':>4} {'k-th length':>12} {'diversity':>10} {'destinations':>13}")
    result = None
    for k in (2, 5, 10, 20, 40):
        result = solver.top_k(source, category="T2", k=k)
        diversity = path_diversity(result.paths)
        destinations = len({p.destination for p in result.paths})
        print(
            f"{k:>4} {result.paths[-1].length:>12.3f} {diversity:>10.3f} "
            f"{destinations:>13}"
        )

    assert result is not None
    endpoints = {source} | set(dataset.categories.nodes_of("T2"))
    print("\nshared junctions across the top-40 routes (bottlenecks):")
    for node, count in node_frequencies(result.paths, exclude=endpoints)[:8]:
        print(f"  junction {node:6d}: on {count} of {len(result.paths)} routes")

    # Contrast: the same query against a far smaller category T1 —
    # fewer reachable destinations usually means less diverse routes.
    t1 = solver.top_k(source, category="T1", k=20)
    t4 = solver.top_k(source, category="T4", k=20)
    print(
        f"\ndiversity at k=20: T1={path_diversity(t1.paths):.3f} "
        f"T4={path_diversity(t4.paths):.3f} "
        "(more destinations -> more genuinely distinct routes)"
    )


if __name__ == "__main__":
    main()
