"""Importing an external road network (DIMACS challenge-9 format).

The paper's COL/FLA/USA datasets ship as DIMACS ``.gr`` files; this
example shows the full pipeline on your own files:

1. parse a ``.gr`` graph (a small sample is embedded below),
2. attach POI categories from a ``node category`` file,
3. build a landmark index, persist it, reload it,
4. answer a KPJ query and validate the answer.

Run with::

    python examples/dimacs_import.py
"""

from __future__ import annotations

import io
import tempfile
from pathlib import Path

from repro import KPJSolver, LandmarkIndex, validate_against_oracle
from repro.graph.io import load_dimacs_gr, load_poi_file

# A 12-junction town; "a u v w" arcs with 1-based ids (both directions
# listed, as real DIMACS road files do).
SAMPLE_GR = """c sample town
p sp 12 34
a 1 2 3   a 2 1 3
a 2 3 2   a 3 2 2
a 3 4 4   a 4 3 4
a 1 5 2   a 5 1 2
a 5 6 2   a 6 5 2
a 6 7 3   a 7 6 3
a 7 4 2   a 4 7 2
a 2 6 1   a 6 2 1
a 3 7 1   a 7 3 1
a 5 8 5   a 8 5 5
a 8 9 1   a 9 8 1
a 9 10 1  a 10 9 1
a 10 11 2 a 11 10 2
a 11 12 1 a 12 11 1
a 12 4 6  a 4 12 6
a 9 6 4   a 6 9 4
"""

# Which junctions carry which POI (0-based ids, matching the loader).
SAMPLE_POI = """3 Hotel
6 Hotel
11 Hotel
7 Fuel
9 Fuel
"""


def normalise(text: str) -> str:
    """The sample packs several arcs per line; DIMACS wants one."""
    lines = []
    for raw in text.splitlines():
        if raw.startswith("a "):
            fields = raw.split()
            for i in range(0, len(fields), 4):
                lines.append(" ".join(fields[i : i + 4]))
        else:
            lines.append(raw)
    return "\n".join(lines) + "\n"


def main() -> None:
    graph = load_dimacs_gr(io.StringIO(normalise(SAMPLE_GR)))
    categories = load_poi_file(io.StringIO(SAMPLE_POI))
    print(f"loaded {graph.n} junctions, {graph.m} arcs, {len(categories)} categories")

    # Build the landmark index once and persist it — the offline step.
    index = LandmarkIndex.build(graph, num_landmarks=4, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "landmarks.npz"
        index.save(snapshot)
        index = LandmarkIndex.load(snapshot, graph)
        print(f"landmark index persisted and reloaded from {snapshot.name}")

    solver = KPJSolver(graph, categories, landmarks=index)
    source = 0  # junction 1 in the DIMACS file
    result = solver.top_k(source, category="Hotel", k=4)
    print(f"\ntop-{len(result.paths)} routes from junction 1 to any Hotel:")
    for rank, path in enumerate(result.paths, start=1):
        stops = " -> ".join(str(v + 1) for v in path.nodes)  # back to 1-based
        print(f"  {rank}. length {path.length:g}: {stops}")

    report = validate_against_oracle(
        graph, result, [source], categories.nodes_of("Hotel"), k=4
    )
    print(f"\noracle validation: {'OK' if report.ok else report.violations}")


if __name__ == "__main__":
    main()
