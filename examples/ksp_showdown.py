"""KSP showdown: every algorithm on the same single-destination query.

"Our approaches can be immediately used to process KSP queries, and
they also outperform the state-of-the-art algorithm for KSP queries"
— Section 8.

Runs all seven registered algorithms on one KSP query (the CAL
"Glacier" category has exactly one node, mirroring Figure 8) and
prints a verification that every algorithm agrees, together with the
work counters that explain the time differences.

Run with::

    python examples/ksp_showdown.py
"""

from __future__ import annotations

import time

from repro import ALGORITHMS, KPJSolver, road_network
from repro.datasets.queries import stratified_sources


def main() -> None:
    dataset = road_network("CAL")
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=16)
    workload = stratified_sources(
        dataset.graph, dataset.categories, "Glacier", per_group=5, seed=3
    )
    source = workload.group("Q4")[0]
    glacier = dataset.categories.nodes_of("Glacier")[0]
    k = 20
    print(
        f"KSP query: top-{k} simple paths from junction {source} "
        f"to junction {glacier} (the single 'Glacier' POI)\n"
    )

    reference = None
    header = f"{'algorithm':<22} {'time':>9} {'SP comps':>9} {'settled':>9} {'LB tests':>9}"
    print(header)
    print("-" * len(header))
    for algorithm in ALGORITHMS:
        start = time.perf_counter()
        result = solver.ksp(source, glacier, k=k, algorithm=algorithm)
        elapsed = (time.perf_counter() - start) * 1000.0
        lengths = tuple(round(length, 9) for length in result.lengths)
        if reference is None:
            reference = lengths
        status = "" if lengths == reference else "  <-- MISMATCH!"
        stats = result.stats
        print(
            f"{algorithm:<22} {elapsed:7.1f}ms {stats.shortest_path_computations:>9} "
            f"{stats.nodes_settled:>9} {stats.lb_tests:>9}{status}"
        )
    assert reference is not None
    print(f"\nall algorithms agree on {len(reference)} path lengths;")
    print(f"k-th (longest) length: {reference[-1]:.3f}, shortest: {reference[0]:.3f}")


if __name__ == "__main__":
    main()
