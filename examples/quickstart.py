"""Quickstart: build a graph, index it, answer KPJ and KSP queries.

Run with::

    python examples/quickstart.py

Covers the three public entry points — ``top_k`` (KPJ), ``ksp``
(single destination), and ``join`` (GKPJ) — on a small hand-built
city graph, and shows how to read the instrumentation counters.
"""

from __future__ import annotations

from repro import CategoryIndex, GraphBuilder, KPJSolver


def build_city():
    """A toy city: a main street, a ring road, and three hotels."""
    builder = GraphBuilder(bidirectional=True)
    # Main street: a -> b -> c -> d -> e (fast segments).
    for u, v in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]:
        builder.add_edge(u, v, 1.0)
    # Ring road around the centre (longer segments).
    ring = ["a", "f", "g", "h", "e"]
    for u, v in zip(ring, ring[1:]):
        builder.add_edge(u, v, 2.0)
    # Connectors.
    builder.add_edge("b", "f", 1.5)
    builder.add_edge("c", "g", 1.5)
    builder.add_edge("d", "h", 1.5)
    built = builder.build()
    hotels = [built.node_id(x) for x in ("c", "g", "e")]
    fuel = [built.node_id(x) for x in ("f", "d")]
    categories = CategoryIndex({"Hotel": hotels, "Fuel": fuel})
    return built, categories


def main() -> None:
    built, categories = build_city()
    solver = KPJSolver(built.graph, categories, landmarks=4)

    print("== KPJ: top-3 routes from 'a' to any Hotel ==")
    result = solver.top_k(built.node_id("a"), category="Hotel", k=3)
    for rank, path in enumerate(result.paths, start=1):
        names = " -> ".join(built.labels[v] for v in path.nodes)
        print(f"  {rank}. length {path.length:.1f}: {names}")

    print("\n== KSP: top-3 routes from 'a' to 'e' specifically ==")
    result = solver.ksp(built.node_id("a"), built.node_id("e"), k=3)
    for rank, path in enumerate(result.paths, start=1):
        names = " -> ".join(built.labels[v] for v in path.nodes)
        print(f"  {rank}. length {path.length:.1f}: {names}")

    print("\n== GKPJ: top-3 routes from any Fuel station to any Hotel ==")
    result = solver.join(source_category="Fuel", category="Hotel", k=3)
    for rank, path in enumerate(result.paths, start=1):
        names = " -> ".join(built.labels[v] for v in path.nodes)
        print(f"  {rank}. length {path.length:.1f}: {names}")

    print("\n== Instrumentation of the last query ==")
    for key, value in result.stats.as_dict().items():
        print(f"  {key:28s} {value}")


if __name__ == "__main__":
    main()
