"""Connection chains between groups in a social network (GKPJ).

"The KPJ query can be used to detect user accounts involved in the
top-k shortest paths between two criminal gangs to identify other
'most suspicious' user accounts" — Section 1.

The graph here is *not* a road network: a synthetic small-world
social graph (ring lattice + random rewires, Watts–Strogatz style)
with interaction-strength weights.  Two "gangs" are planted as node
groups; the GKPJ query surfaces the shortest interaction chains
between them, and the accounts appearing on those chains — the
would-be investigation leads — are ranked by how many chains they
appear on.

Run with::

    python examples/social_network.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import DiGraph, KPJSolver


def small_world_graph(n: int, neighbours: int, rewire: float, seed: int) -> DiGraph:
    """Ring lattice with random rewiring; weights = 1/interaction."""
    rng = random.Random(seed)
    graph = DiGraph(n)
    seen: set[tuple[int, int]] = set()

    def add(u: int, v: int) -> None:
        if u == v or (u, v) in seen:
            return
        seen.add((u, v))
        seen.add((v, u))
        weight = round(1.0 / rng.uniform(0.2, 1.0), 3)  # strong tie = short edge
        graph.add_bidirectional_edge(u, v, weight)

    for u in range(n):
        for offset in range(1, neighbours // 2 + 1):
            v = (u + offset) % n
            if rng.random() < rewire:
                v = rng.randrange(n)
            add(u, v)
    return graph.freeze()


def main() -> None:
    n = 3000
    graph = small_world_graph(n, neighbours=6, rewire=0.1, seed=7)
    print(f"social graph: {graph.n} accounts, {graph.m} directed ties")

    rng = random.Random(99)
    gang_a = tuple(rng.sample(range(n), 6))
    gang_b = tuple(rng.sample(range(n), 6))
    print(f"gang A accounts: {gang_a}")
    print(f"gang B accounts: {gang_b}")

    solver = KPJSolver(graph, landmarks=8)
    result = solver.join(sources=gang_a, destinations=gang_b, k=15)

    print(f"\ntop-{len(result.paths)} interaction chains (GKPJ):")
    for rank, path in enumerate(result.paths, start=1):
        chain = " - ".join(str(v) for v in path.nodes)
        print(f"  {rank:2d}. strength-distance {path.length:6.3f}: {chain}")

    # Rank intermediaries: accounts on chains that belong to neither gang.
    gangs = set(gang_a) | set(gang_b)
    counter: Counter[int] = Counter()
    for path in result.paths:
        counter.update(v for v in path.nodes if v not in gangs)
    print("\nmost suspicious intermediary accounts (chain appearances):")
    for account, count in counter.most_common(8):
        print(f"  account {account:5d}: on {count} of the top chains")


if __name__ == "__main__":
    main()
