"""Trip planning on a road network — the paper's motivating scenario.

"The KPJ query can be used in route planning where the destination is
any one from a group of nodes (e.g., 'IKEA')" — Section 1.

This example loads the CAL-style synthetic road network, plans the
top-k routes from a random trip origin to the nearest "Harbor" POIs,
and compares what the deviation baseline and the paper's IterBound_I
would each have to do for the same answer.

Run with::

    python examples/trip_planning.py
"""

from __future__ import annotations

import random
import time

from repro import KPJSolver, road_network


def main() -> None:
    dataset = road_network("CAL")
    print(f"CAL-style network: {dataset.n} junctions, {dataset.m} road segments")
    print(f"'Harbor' has {dataset.categories.size('Harbor')} locations")

    print("building landmark index (offline step)...")
    start = time.perf_counter()
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=16)
    print(f"  done in {time.perf_counter() - start:.2f}s")

    origin = random.Random(42).randrange(dataset.n)
    print(f"\ntrip origin: junction {origin}")

    for algorithm in ("da", "iter-bound-spti"):
        start = time.perf_counter()
        result = solver.top_k(origin, category="Harbor", k=5, algorithm=algorithm)
        elapsed = (time.perf_counter() - start) * 1000.0
        print(
            f"\n{algorithm}: {elapsed:.1f} ms, "
            f"{result.stats.shortest_path_computations} shortest-path computations, "
            f"{result.stats.nodes_settled} nodes settled"
        )
        for rank, path in enumerate(result.paths, start=1):
            print(
                f"  {rank}. road distance {path.length:8.3f}, "
                f"{len(path) - 1:3d} segments, arrives at harbor {path.destination}"
            )

    # Alternative-destination planning: the same origin, but the user
    # will settle for a Lake if it is much closer than any Harbor.
    print("\ncomparing nearest Harbor vs nearest Lake:")
    for category in ("Harbor", "Lake"):
        result = solver.top_k(origin, category=category, k=1)
        if result.paths:
            print(f"  nearest {category:<7}: distance {result.paths[0].length:.3f}")


if __name__ == "__main__":
    main()
