"""Legacy setup shim.

Modern installs use pyproject.toml; this file exists so that editable
installs also work on offline machines whose environments lack the
``wheel`` package (pip's PEP-517 editable path needs ``bdist_wheel``;
the legacy ``setup.py develop`` path does not).
"""

from setuptools import setup

setup()
