"""repro — Top-K Shortest Path Join (KPJ).

A production-quality reproduction of *"Efficiently Computing Top-K
Shortest Path Join"* (Chang, Lin, Qin, Yu, Pei — EDBT 2015): the
best-first / iteratively bounding framework with the ``SPT_P`` and
``SPT_I`` online indexes, the DA / DA-SPT deviation baselines, a
landmark (ALT) lower-bound index, synthetic road-network datasets,
and a benchmark harness regenerating every figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import KPJSolver, road_network
>>> dataset = road_network("SJ")                       # doctest: +SKIP
>>> solver = KPJSolver(dataset.graph, dataset.categories)  # doctest: +SKIP
>>> result = solver.top_k(source=0, category="T2", k=5)    # doctest: +SKIP
"""

from repro.core.gkpj import gkpj
from repro.core.kpj import ALGORITHMS, DEFAULT_ALGORITHM, KPJSolver
from repro.core.result import Path, QueryResult
from repro.core.stats import SearchStats
from repro.core.walks import top_k_walks
from repro.validation import (
    validate_against_oracle,
    validate_instance,
    validate_result,
)
from repro.datasets.registry import available_datasets, road_network
from repro.exceptions import (
    DatasetError,
    GraphError,
    LandmarkError,
    QueryError,
    ReproError,
)
from repro.graph.builder import GraphBuilder
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.landmarks.index import LandmarkIndex
from repro.obs.metrics import MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "gkpj",
    "top_k_walks",
    "validate_against_oracle",
    "validate_instance",
    "validate_result",
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "KPJSolver",
    "Path",
    "QueryResult",
    "SearchStats",
    "available_datasets",
    "road_network",
    "DatasetError",
    "GraphError",
    "LandmarkError",
    "QueryError",
    "ReproError",
    "GraphBuilder",
    "CategoryIndex",
    "DiGraph",
    "LandmarkIndex",
    "MetricsRegistry",
    "__version__",
]
