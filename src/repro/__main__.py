"""``python -m repro`` — alias for the ``kpj`` CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
