"""Analytics over graphs and query results.

Two groups of utilities:

* **Distance-distribution estimation** — the machinery behind Fig. 11:
  sample full single-source runs to approximate the all-pairs distance
  distribution, then locate any distance's percentile within it.
* **Result diversity** — applications of KPJ (alternative routes,
  suspicious-account discovery) care how *different* the k paths are,
  not just how short; :func:`path_diversity` quantifies it with the
  average pairwise Jaccard distance of edge sets, and
  :func:`node_frequencies` ranks nodes by how many of the top paths
  they appear on (the "most suspicious accounts" ranking of the
  paper's introduction, used by ``examples/social_network.py``).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections import Counter
from typing import Iterable, Sequence

from repro.core.result import Path
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import single_source_distances

__all__ = [
    "DistanceSample",
    "sample_distance_distribution",
    "path_diversity",
    "node_frequencies",
    "degree_statistics",
]

INF = float("inf")


class DistanceSample:
    """A sorted sample of pairwise shortest distances.

    Built by :func:`sample_distance_distribution`; supports percentile
    queries in ``O(log n)``.
    """

    def __init__(self, distances: list[float]) -> None:
        self._sorted = sorted(distances)

    def __len__(self) -> int:
        return len(self._sorted)

    def percentile_of(self, distance: float) -> float:
        """Percentage of sampled distances ``<= distance`` (0..100)."""
        if not self._sorted:
            raise ValueError("empty distance sample")
        return 100.0 * bisect_right(self._sorted, distance) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sorted:
            raise ValueError("empty distance sample")
        index = min(len(self._sorted) - 1, int(q * len(self._sorted)))
        return self._sorted[index]


def sample_distance_distribution(
    graph: DiGraph, num_sources: int = 12, seed: int = 0
) -> DistanceSample:
    """Estimate the all-pairs distance distribution.

    Runs ``num_sources`` full Dijkstra searches from uniformly sampled
    sources and pools the finite distances — ``num_sources * n`` pair
    samples, plenty for percentile estimates at Fig.-11 granularity.
    """
    rng = random.Random(seed)
    pooled: list[float] = []
    for source in rng.sample(range(graph.n), min(num_sources, graph.n)):
        pooled.extend(d for d in single_source_distances(graph, source) if d < INF)
    return DistanceSample(pooled)


def _edge_set(path: Path) -> frozenset[tuple[int, int]]:
    return frozenset(zip(path.nodes, path.nodes[1:]))


def path_diversity(paths: Sequence[Path]) -> float:
    """Mean pairwise Jaccard *distance* between the paths' edge sets.

    1.0 means every pair of paths is edge-disjoint; 0.0 means all
    paths are identical (or fewer than two paths were given).
    """
    if len(paths) < 2:
        return 0.0
    edge_sets = [_edge_set(p) for p in paths]
    total = 0.0
    pairs = 0
    for i in range(len(edge_sets)):
        for j in range(i + 1, len(edge_sets)):
            union = edge_sets[i] | edge_sets[j]
            if union:
                overlap = len(edge_sets[i] & edge_sets[j]) / len(union)
            else:
                overlap = 1.0  # two trivial single-node paths
            total += 1.0 - overlap
            pairs += 1
    return total / pairs


def node_frequencies(
    paths: Iterable[Path], exclude: Iterable[int] = ()
) -> list[tuple[int, int]]:
    """Nodes ranked by how many of the given paths they appear on.

    ``exclude`` removes endpoints of no interest (e.g. the query's own
    source/destination sets).  Returns ``(node, count)`` pairs, most
    frequent first, ties broken by node id.
    """
    excluded = set(exclude)
    counter: Counter[int] = Counter()
    for path in paths:
        counter.update(v for v in set(path.nodes) if v not in excluded)
    return sorted(counter.items(), key=lambda item: (-item[1], item[0]))


def degree_statistics(graph: DiGraph) -> dict[str, float]:
    """Out-degree summary: min / mean / max — the road-likeness check
    used when validating synthetic networks against Table 1.
    """
    if graph.n == 0:
        raise ValueError("empty graph")
    degrees = [graph.out_degree(u) for u in range(graph.n)]
    return {
        "min": float(min(degrees)),
        "mean": sum(degrees) / len(degrees),
        "max": float(max(degrees)),
    }
