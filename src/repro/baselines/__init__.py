"""Baseline algorithms: DA, DA-SPT, classic Yen, and brute force."""

from repro.baselines.brute_force import brute_force_topk, enumerate_simple_paths
from repro.baselines.deviation import deviation_algorithm
from repro.baselines.deviation_spt import deviation_spt
from repro.baselines.pseudo_tree import PseudoTree, PTVertex
from repro.baselines.yen import yen_ksp

__all__ = [
    "brute_force_topk",
    "enumerate_simple_paths",
    "deviation_algorithm",
    "deviation_spt",
    "PseudoTree",
    "PTVertex",
    "yen_ksp",
]
