"""Exhaustive enumeration — the ground-truth oracle for small graphs.

Enumerates *every* simple path from a source to a set of destinations
by depth-first search and ranks them by length.  Exponential, so only
usable on toy graphs, but it has no shared machinery with any other
algorithm in the package — the property-based tests lean on it as the
final arbiter.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.result import Path
from repro.graph.digraph import DiGraph

__all__ = ["enumerate_simple_paths", "brute_force_topk"]


def enumerate_simple_paths(
    graph: DiGraph,
    source: int,
    destinations: Sequence[int],
) -> Iterator[Path]:
    """Yield every simple path from ``source`` to any destination.

    Paths are produced in DFS order (not by length).  A path ending at
    one destination may continue to another, so recursion proceeds
    past destination nodes.
    """
    destination_set = frozenset(destinations)
    adjacency = graph.adjacency
    path: list[int] = [source]
    on_path: set[int] = {source}

    def walk(u: int, length: float) -> Iterator[Path]:
        if u in destination_set:
            yield Path(length=length, nodes=tuple(path))
        for v, w in adjacency[u]:
            if v in on_path:
                continue
            path.append(v)
            on_path.add(v)
            yield from walk(v, length + w)
            path.pop()
            on_path.discard(v)

    yield from walk(source, 0.0)


def brute_force_topk(
    graph: DiGraph,
    source: int,
    destinations: Sequence[int],
    k: int,
) -> list[Path]:
    """The exact top-``k`` shortest simple paths, by full enumeration.

    Ties at the k-th length are broken by node sequence, matching the
    deterministic ordering of :class:`~repro.core.result.Path`.
    """
    paths = sorted(enumerate_simple_paths(graph, source, destinations))
    return paths[:k]
