"""DA — the deviation algorithm (Alg. 1), the paper's first baseline.

Yen's paradigm applied to the ``G_Q`` transform: maintain the
pseudo-tree of chosen paths and one *candidate path* per tree vertex
(the shortest path taking the vertex's prefix and avoiding its used
edges); the next result is always the shortest candidate
(Lemma 3.1).  Every candidate is computed *eagerly* with a full
constrained Dijkstra that traverses the graph exhaustively — the two
deficiencies (O(k·n) candidate computations, no index applicability)
that motivate the paper's best-first framework.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count

from repro.baselines.pseudo_tree import PseudoTree, PTVertex
from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.graph.virtual import QueryGraph
from repro.pathing.dijkstra import constrained_shortest_path

__all__ = ["deviation_algorithm"]


def deviation_algorithm(
    query_graph: QueryGraph,
    k: int,
    stats: SearchStats | None = None,
) -> list[Path]:
    """Top-``k`` shortest simple paths on ``G_Q`` via plain DA.

    Returns paths in ``G_Q`` coordinates, non-decreasing in length.
    """
    stats = stats if stats is not None else SearchStats()
    graph = query_graph.graph
    source, target = query_graph.source, query_graph.target

    def candidate(vertex: PTVertex):
        stats.shortest_path_computations += 1
        return constrained_shortest_path(
            graph,
            vertex.node,
            target,
            blocked=vertex.prefix[:-1],
            banned_first_hops=vertex.used_hops,
            initial_distance=vertex.prefix_weight,
            stats=stats,
        )

    tree = PseudoTree(source)
    tie = count()
    candidates: list[tuple[float, int, tuple[int, ...], PTVertex]] = []
    first = candidate(tree.root)
    if first is not None:
        tail, length = first
        heappush(candidates, (length, next(tie), tail, tree.root))

    results: list[Path] = []
    edge_weight = graph.edge_weight
    while candidates and len(results) < k:
        length, _, tail, vertex = heappop(candidates)
        path = vertex.prefix[:-1] + tail
        results.append(Path(length=length, nodes=path))
        weights = [edge_weight(a, b) for a, b in zip(path, path[1:])]
        deviation, new_vertices = tree.insert(path, weights)
        # Alg. 1 line 6: refresh the deviation vertex (its excluded-edge
        # set just grew) and compute candidates for the new vertices on
        # the path from the deviation vertex to the target; the final
        # vertex (the virtual target) has no outgoing edges, hence no
        # candidate.
        for refresh in (deviation, *new_vertices[:-1]):
            found = candidate(refresh)
            if found is not None:
                new_tail, new_length = found
                heappush(candidates, (new_length, next(tie), new_tail, refresh))
    return results
