"""DA-SPT — the deviation algorithm with a full shortest-path tree.

The state of the art for KSP before the paper (Pascoal '06, Gao et
al. '10/'12, Section 3).  One full SPT rooted at the (virtual) target
is built per query; candidate paths are then computed by:

1. **Pascoal's constant-time check** — the best one-hop extension
   ``prefix + (u, v) + SPT-path(v)`` is the candidate whenever it is
   simple;
2. **Gao's iterative test** otherwise — an A* guided by the exact SPT
   distances that, each time it settles a node ``v``, checks whether
   gluing the SPT path of ``v`` onto the search path yields a simple
   path and shortcuts the search if so.

The full-SPT build is the weakness the paper exploits: its cost is
insensitive to the query (Figures 7(e)–(f) show DA-SPT *flat* and
losing when the k shortest paths are short).
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count

from repro.baselines.pseudo_tree import PseudoTree, PTVertex
from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.graph.virtual import QueryGraph
from repro.pathing.spt import ShortestPathTree, build_spt_to_target

__all__ = ["deviation_spt", "spt_candidate"]

INF = float("inf")


def spt_candidate(
    graph,
    spt: ShortestPathTree,
    prefix: tuple[int, ...],
    prefix_weight: float,
    banned_first_hops: set[int],
    stats: SearchStats | None = None,
):
    """Shortest simple path extending ``prefix`` (avoiding the banned
    first hops) to the SPT's target, using the SPT for both the
    Pascoal fast path and as the A* heuristic of the Gao search.

    Returns ``(full_path, length)`` or ``None``.
    """
    u = prefix[-1]
    blocked = set(prefix)  # includes u: the extension may not revisit it
    target = spt.target
    dist = spt.dist

    # Pascoal: try the cheapest one-hop extension first.
    best_v, best_estimate = -1, INF
    for v, w in graph.adjacency[u]:
        if v in blocked or v in banned_first_hops:
            continue
        estimate = w + dist[v]
        if estimate < best_estimate:
            best_estimate = estimate
            best_v = v
    if best_v < 0:
        return None
    if best_estimate < INF:
        tree_path = spt.path_from(best_v)
        if tree_path is not None and blocked.isdisjoint(tree_path):
            return prefix + tree_path, prefix_weight + best_estimate

    # Gao: A* from u with h(v) = exact distance-to-target; on every
    # settle, test whether the SPT path completes a simple candidate.
    if stats is not None:
        stats.shortest_path_computations += 1
    g: dict[int, float] = {u: 0.0}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = []
    if dist[u] < INF:
        heap.append((dist[u], u))
    adjacency = graph.adjacency
    while heap:
        _, x = heappop(heap)
        if x in settled:
            continue
        settled.add(x)
        if stats is not None:
            stats.nodes_settled += 1
        # Reconstruct the search path u -> ... -> x.
        walk = [x]
        node = x
        while node != u:
            node = parent[node]
            walk.append(node)
        walk.reverse()
        if x == target:
            return prefix + tuple(walk[1:]), prefix_weight + g[x]
        tree_path = spt.path_from(x)
        # At the start node the tree path's first hop must also respect
        # the excluded-edge set of the subspace.
        first_hop_ok = x != u or (
            tree_path is not None
            and len(tree_path) > 1
            and tree_path[1] not in banned_first_hops
        )
        if tree_path is not None and first_hop_ok:
            on_search = set(walk)
            if blocked.isdisjoint(tree_path[1:]) and on_search.isdisjoint(
                tree_path[1:]
            ):
                full = prefix + tuple(walk[1:]) + tree_path[1:]
                return full, prefix_weight + g[x] + dist[x]
        gx = g[x]
        at_start = x == u
        for v, w in adjacency[x]:
            if v in blocked or v in settled:
                continue
            if at_start and v in banned_first_hops:
                continue
            nd = gx + w
            if nd < g.get(v, INF):
                hv = dist[v]
                if hv == INF:
                    continue
                g[v] = nd
                parent[v] = x
                heappush(heap, (nd + hv, v))
                if stats is not None:
                    stats.edges_relaxed += 1
    return None


def deviation_spt(
    query_graph: QueryGraph,
    k: int,
    stats: SearchStats | None = None,
) -> list[Path]:
    """Top-``k`` shortest simple paths on ``G_Q`` via DA-SPT.

    Returns paths in ``G_Q`` coordinates, non-decreasing in length.
    """
    stats = stats if stats is not None else SearchStats()
    graph = query_graph.graph
    source, target = query_graph.source, query_graph.target
    spt = build_spt_to_target(graph, target, stats=stats)
    stats.spt_nodes = sum(1 for d in spt.dist if d != INF)

    def candidate(vertex: PTVertex):
        return spt_candidate(
            graph,
            spt,
            vertex.prefix,
            vertex.prefix_weight,
            vertex.used_hops,
            stats=stats,
        )

    tree = PseudoTree(source)
    tie = count()
    candidates: list[tuple[float, int, tuple[int, ...], PTVertex]] = []
    first = candidate(tree.root)
    if first is not None:
        path, length = first
        heappush(candidates, (length, next(tie), path, tree.root))

    results: list[Path] = []
    edge_weight = graph.edge_weight
    while candidates and len(results) < k:
        length, _, path, vertex = heappop(candidates)
        results.append(Path(length=length, nodes=path))
        weights = [edge_weight(a, b) for a, b in zip(path, path[1:])]
        deviation, new_vertices = tree.insert(path, weights)
        for refresh in (deviation, *new_vertices[:-1]):
            found = candidate(refresh)
            if found is not None:
                new_path, new_length = found
                heappush(candidates, (new_length, next(tie), new_path, refresh))
    return results
