"""The pseudo-tree of the deviation paradigm (Section 3).

The deviation algorithm encodes the already-chosen paths in a compact
trie-like structure the paper calls a *pseudo-tree*: the same graph
node may appear at several places, so tree elements are called
**vertices** to distinguish them from graph nodes.  Every vertex ``u``
carries the prefix path from the source to it and the set of its
outgoing edges already used by chosen paths — exactly the data needed
to define its candidate path ``c(u)`` (the shortest path that takes
the prefix and avoids the used edges), which is also exactly a
subspace in the best-first view (the one-to-one correspondence
Lemma 4.1's proof builds on).
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["PTVertex", "PseudoTree"]


class PTVertex:
    """One vertex of the pseudo-tree.

    Attributes
    ----------
    node:
        The graph node this vertex stands for.
    prefix:
        The path from the source to this vertex (graph nodes).
    prefix_weight:
        Total weight of ``prefix``.
    used_hops:
        Graph nodes ``w`` such that the tree contains the edge
        ``(node, w)`` below this vertex — the excluded edge set of the
        vertex's candidate path.
    children:
        Child vertices keyed by their graph node.
    """

    __slots__ = ("node", "prefix", "prefix_weight", "used_hops", "children")

    def __init__(self, node: int, prefix: tuple[int, ...], prefix_weight: float) -> None:
        self.node = node
        self.prefix = prefix
        self.prefix_weight = prefix_weight
        self.used_hops: set[int] = set()
        self.children: dict[int, "PTVertex"] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PTVertex(node={self.node}, prefix={self.prefix})"


class PseudoTree:
    """Trie of chosen paths, rooted at the source node."""

    def __init__(self, source: int) -> None:
        self.root = PTVertex(source, (source,), 0.0)
        self._size = 1

    def __len__(self) -> int:
        return self._size

    def insert(
        self, path: tuple[int, ...], path_weights: list[float]
    ) -> tuple[PTVertex, list[PTVertex]]:
        """Insert a chosen path, sharing the longest existing prefix.

        Parameters
        ----------
        path:
            The full path (must start at the source node).
        path_weights:
            ``path_weights[i]`` is the weight of edge
            ``(path[i], path[i+1])``.

        Returns
        -------
        ``(deviation_vertex, new_vertices)`` — the last shared vertex
        (the paper's deviation vertex ``d``) and the vertices created
        for the path's new suffix, in path order.  The deviation
        vertex's ``used_hops`` is extended with the path's next hop.
        """
        assert path[0] == self.root.node, "path must start at the tree's source"
        vertex = self.root
        i = 0
        while i + 1 < len(path) and path[i + 1] in vertex.children:
            vertex = vertex.children[path[i + 1]]
            i += 1
        deviation = vertex
        new_vertices: list[PTVertex] = []
        weight = deviation.prefix_weight
        for j in range(i + 1, len(path)):
            node = path[j]
            weight += path_weights[j - 1]
            child = PTVertex(node, path[: j + 1], weight)
            vertex.used_hops.add(node)
            vertex.children[node] = child
            new_vertices.append(child)
            vertex = child
            self._size += 1
        return deviation, new_vertices

    def vertices(self) -> Iterator[PTVertex]:
        """Depth-first iteration over all vertices."""
        stack = [self.root]
        while stack:
            vertex = stack.pop()
            yield vertex
            stack.extend(vertex.children.values())
