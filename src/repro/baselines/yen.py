"""Classic Yen's algorithm — an independent correctness oracle.

This is the textbook formulation of Yen (1971): for every spur node of
the previous result path, ban the outgoing edges used by already-
chosen paths sharing the same root, and run a constrained shortest-
path search.  It shares *no* code with the pseudo-tree implementation
of :mod:`repro.baselines.deviation`, which makes it a genuinely
independent oracle for the cross-algorithm equivalence tests.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count

from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import constrained_shortest_path, shortest_path

__all__ = ["yen_ksp"]


def yen_ksp(
    graph: DiGraph,
    source: int,
    target: int,
    k: int,
    stats: SearchStats | None = None,
) -> list[Path]:
    """Top-``k`` shortest simple paths from ``source`` to ``target``.

    Works on any :class:`DiGraph` (no virtual transform required);
    returns non-decreasing lengths, fewer than ``k`` if the graph runs
    out of simple paths.
    """
    stats = stats if stats is not None else SearchStats()
    stats.shortest_path_computations += 1
    first = shortest_path(graph, source, target)
    if first is None:
        return []
    results: list[Path] = [Path(length=first[1], nodes=first[0])]
    tie = count()
    candidates: list[tuple[float, int, tuple[int, ...]]] = []
    seen: set[tuple[int, ...]] = {first[0]}

    while len(results) < k:
        previous = results[-1].nodes
        for j in range(len(previous) - 1):
            root = previous[: j + 1]
            spur = previous[j]
            banned = {
                p.nodes[j + 1]
                for p in results
                if len(p.nodes) > j + 1 and p.nodes[: j + 1] == root
            }
            root_weight = graph.path_weight(root)
            stats.shortest_path_computations += 1
            found = constrained_shortest_path(
                graph,
                spur,
                target,
                blocked=root[:-1],
                banned_first_hops=banned,
                initial_distance=root_weight,
                stats=stats,
            )
            if found is None:
                continue
            tail, length = found
            candidate = root[:-1] + tail
            if candidate not in seen:
                seen.add(candidate)
                heappush(candidates, (length, next(tie), candidate))
        if not candidates:
            break
        length, _, path = heappop(candidates)
        results.append(Path(length=length, nodes=path))
    return results
