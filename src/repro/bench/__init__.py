"""Benchmark harness: per-figure experiments, load tests, reporting."""

from repro.bench.harness import (
    BatchTiming,
    FigureResult,
    Series,
    solver_for,
    time_query_batch,
    workload_for,
)
from repro.bench.loadtest import (
    baseline_for,
    evaluate_gate,
    load_entries,
    render_entry_summary,
    replay_workload,
)
from repro.bench.reporting import format_figure, format_speedups, write_figure
from repro.bench.trajectory import render_loadtest_report
from repro.bench.workload import (
    Arrival,
    WorkloadSpec,
    generate_schedule,
    load_spec,
    parse_spec,
    schedule_digest,
)

__all__ = [
    "BatchTiming",
    "FigureResult",
    "Series",
    "solver_for",
    "time_query_batch",
    "workload_for",
    "format_figure",
    "format_speedups",
    "write_figure",
    "Arrival",
    "WorkloadSpec",
    "generate_schedule",
    "load_spec",
    "parse_spec",
    "schedule_digest",
    "replay_workload",
    "evaluate_gate",
    "baseline_for",
    "load_entries",
    "render_entry_summary",
    "render_loadtest_report",
]
