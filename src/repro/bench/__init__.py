"""Benchmark harness: per-figure experiments and table rendering."""

from repro.bench.harness import (
    BatchTiming,
    FigureResult,
    Series,
    solver_for,
    time_query_batch,
    workload_for,
)
from repro.bench.reporting import format_figure, format_speedups, write_figure

__all__ = [
    "BatchTiming",
    "FigureResult",
    "Series",
    "solver_for",
    "time_query_batch",
    "workload_for",
    "format_figure",
    "format_speedups",
    "write_figure",
]
