"""Per-figure experiment definitions (Section 7 of the paper).

Each ``fig*`` function reproduces one figure of the evaluation and
returns a :class:`~repro.bench.harness.FigureResult` whose series
correspond to the paper's plotted lines.  ``queries_per_point``
controls how many sources are timed per point (the paper uses 100;
the default here keeps a full suite tractable in pure Python —
raise it for tighter numbers).

All experiments are deterministic in their seeds.
"""

from __future__ import annotations

import random
import statistics
import time

from repro.bench.harness import (
    FigureResult,
    solver_for,
    time_query_batch,
    workload_for,
)
from repro.core.kpj import KPJSolver
from repro.datasets.queries import distances_to_targets
from repro.datasets.registry import PAPER_SIZES, road_network
from repro.landmarks.index import TargetBounds

__all__ = [
    "ALGO_LABELS",
    "ALL_ALGOS",
    "OUR_ALGOS",
    "table1",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12a",
    "fig12b",
    "fig13",
    "work_table",
    "ablation_bounds",
    "ablation_alpha_counters",
    "ablation_hub_labels",
]

INF = float("inf")

#: Registry-name → paper-name mapping for series labels.
ALGO_LABELS: dict[str, str] = {
    "da": "DA",
    "da-spt": "DA-SPT",
    "best-first": "BestFirst",
    "iter-bound": "IterBound",
    "iter-bound-sptp": "IterBoundP",
    "iter-bound-spti": "IterBoundI",
    "iter-bound-spti-nl": "IterBoundI-NL",
}

#: The seven algorithms of Figures 7–8, slowest first (paper order).
ALL_ALGOS = (
    "da",
    "da-spt",
    "best-first",
    "iter-bound",
    "iter-bound-sptp",
    "iter-bound-spti-nl",
    "iter-bound-spti",
)

#: The four approaches of Figures 9–10.
OUR_ALGOS = ("best-first", "iter-bound", "iter-bound-sptp", "iter-bound-spti")

CAL_CATEGORIES = ("Crater", "Glacier", "Harbor", "Lake")
Q_LABELS = ("Q1", "Q2", "Q3", "Q4", "Q5")
K_VALUES = (10, 20, 30, 50)
NESTED = ("T1", "T2", "T3", "T4")


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1(seed: int = 0) -> list[dict[str, int | str]]:
    """Dataset summary rows (paper sizes next to this package's)."""
    rows: list[dict[str, int | str]] = []
    for name, (paper_n, paper_m) in PAPER_SIZES.items():
        network = road_network(name, seed=seed)
        rows.append(
            {
                "dataset": name,
                "paper_nodes": paper_n,
                "paper_edges": paper_m,
                "nodes": network.n,
                "edges": network.m,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 6 — parameters (|L| and alpha) on CAL
# ----------------------------------------------------------------------
def fig6a(
    queries_per_point: int = 5,
    sizes: tuple[int, ...] = (4, 8, 12, 16, 20, 32),
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 6(a): IterBound_I on CAL, Q3, varying the landmark count."""
    figure = FigureResult(
        figure="Fig 6a",
        title="IterBound_I on CAL (Q3, k=20), varying |L|",
        x_label="|L|",
    )
    for category in CAL_CATEGORIES:
        series = figure.new_series(category)
        workload = workload_for("CAL", category, seed=seed)
        sources = workload.group("Q3")[:queries_per_point]
        for size in sizes:
            _, solver = solver_for("CAL", landmarks=size, seed=seed)
            timing = time_query_batch(
                solver, sources, category, k, "iter-bound-spti"
            )
            series.add(str(size), timing.mean_ms)
    return figure


def fig6b(
    queries_per_point: int = 5,
    alphas: tuple[float, ...] = (1.05, 1.1, 1.2, 1.5, 1.8),
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 6(b): IterBound_I on CAL, Q3, varying alpha."""
    figure = FigureResult(
        figure="Fig 6b",
        title="IterBound_I on CAL (Q3, k=20), varying alpha",
        x_label="alpha",
    )
    _, solver = solver_for("CAL", seed=seed)
    for category in CAL_CATEGORIES:
        series = figure.new_series(category)
        workload = workload_for("CAL", category, seed=seed)
        sources = workload.group("Q3")[:queries_per_point]
        for alpha in alphas:
            timing = time_query_batch(
                solver, sources, category, k, "iter-bound-spti", alpha=alpha
            )
            series.add(f"{alpha:g}", timing.mean_ms)
    return figure


# ----------------------------------------------------------------------
# Figures 7–8 — against the baselines on CAL
# ----------------------------------------------------------------------
def _algorithm_sweep(
    figure: FigureResult,
    dataset: str,
    category: str,
    algorithms: tuple[str, ...],
    vary: str,
    queries_per_point: int,
    k: int,
    seed: int,
) -> FigureResult:
    _, solver = solver_for(dataset, seed=seed)
    workload = workload_for(dataset, category, seed=seed)
    for algorithm in algorithms:
        series = figure.new_series(ALGO_LABELS[algorithm])
        if vary == "Q":
            for q in Q_LABELS:
                sources = workload.group(q)[:queries_per_point]
                timing = time_query_batch(solver, sources, category, k, algorithm)
                series.add(q, timing.mean_ms)
        elif vary == "k":
            sources = workload.group("Q3")[:queries_per_point]
            for k_value in K_VALUES:
                timing = time_query_batch(
                    solver, sources, category, k_value, algorithm
                )
                series.add(str(k_value), timing.mean_ms)
        else:
            raise ValueError(f"vary must be 'Q' or 'k', got {vary!r}")
    return figure


def fig7(
    category: str = "Lake",
    vary: str = "Q",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 7: all seven algorithms on CAL (KPJ queries).

    ``category`` selects the panel (Lake/Crater/Harbor); ``vary``
    selects the x-axis (query group or k).
    """
    figure = FigureResult(
        figure=f"Fig 7 ({category}, vary {vary})",
        title=f"KPJ on CAL, category {category}",
        x_label="Q group" if vary == "Q" else "k",
    )
    return _algorithm_sweep(
        figure, "CAL", category, ALL_ALGOS, vary, queries_per_point, k, seed
    )


def fig8(
    vary: str = "Q",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 8: KSP queries — category "Glacier" has a single node."""
    figure = FigureResult(
        figure=f"Fig 8 (vary {vary})",
        title="KSP on CAL, category Glacier (1 node)",
        x_label="Q group" if vary == "Q" else "k",
    )
    return _algorithm_sweep(
        figure, "CAL", "Glacier", ALL_ALGOS, vary, queries_per_point, k, seed
    )


# ----------------------------------------------------------------------
# Figures 9–10 — our approaches on SJ and COL
# ----------------------------------------------------------------------
def fig9(
    dataset: str = "SJ",
    vary: str = "Q",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 9: BestFirst / IterBound / IterBound_P / IterBound_I (T2)."""
    figure = FigureResult(
        figure=f"Fig 9 ({dataset}, vary {vary})",
        title=f"Our approaches on {dataset}, category T2",
        x_label="Q group" if vary == "Q" else "k",
    )
    return _algorithm_sweep(
        figure, dataset, "T2", OUR_ALGOS, vary, queries_per_point, k, seed
    )


def fig10(
    dataset: str = "SJ",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 10: varying the number of destination nodes (T1..T4)."""
    network, solver = solver_for(dataset, seed=seed)
    figure = FigureResult(
        figure=f"Fig 10 ({dataset})",
        title=f"Varying |T| on {dataset} (Q3, k={k})",
        x_label="category",
    )
    for algorithm in OUR_ALGOS:
        series = figure.new_series(ALGO_LABELS[algorithm])
        for category in NESTED:
            workload = workload_for(dataset, category, seed=seed)
            sources = workload.group("Q3")[:queries_per_point]
            timing = time_query_batch(solver, sources, category, k, algorithm)
            size = network.categories.size(category)
            series.add(f"{category}({size})", timing.mean_ms)
    return figure


# ----------------------------------------------------------------------
# Figure 11 — shortest-path-length percentile vs |T|
# ----------------------------------------------------------------------
def fig11(
    datasets: tuple[str, ...] = ("SJ", "SF", "COL", "FLA", "USA"),
    sample_sources: int = 12,
    seed: int = 0,
) -> FigureResult:
    """Fig. 11: percentile position of the longest node-to-``T_i``
    distance within the all-pairs distance distribution.

    The paper computes this over all ``n * n`` pairs; we estimate the
    all-pairs distribution from ``sample_sources`` full Dijkstra runs
    (tens of millions of pair distances already at the default).
    """
    from repro.analysis import sample_distance_distribution

    figure = FigureResult(
        figure="Fig 11",
        title="Longest shortest-path length to T_i, as an all-pairs percentile",
        x_label="dataset",
    )
    for dataset in datasets:
        network = road_network(dataset, seed=seed)
        graph = network.graph
        sample = sample_distance_distribution(graph, sample_sources, seed=seed)
        series = figure.new_series(dataset)
        for category in NESTED:
            targets = network.categories.nodes_of(category)
            dist = distances_to_targets(graph, targets)
            longest = max(d for d in dist if d < INF)
            series.add(category, sample.percentile_of(longest))
    figure.notes = "values are percentiles (%), not milliseconds"
    return figure


# ----------------------------------------------------------------------
# Figure 12 — scalability of IterBound_I
# ----------------------------------------------------------------------
def fig12a(
    datasets: tuple[str, ...] = ("SJ", "SF", "COL", "FLA", "USA"),
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Fig. 12(a): IterBound_I across graph sizes (T2, Q3, k=20)."""
    figure = FigureResult(
        figure="Fig 12a",
        title="Scalability of IterBound_I over graph size (T2, Q3, k=20)",
        x_label="dataset",
    )
    series = figure.new_series("IterBoundI")
    for dataset in datasets:
        _, solver = solver_for(dataset, seed=seed)
        workload = workload_for(dataset, "T2", seed=seed)
        sources = workload.group("Q3")[:queries_per_point]
        timing = time_query_batch(solver, sources, "T2", k, "iter-bound-spti")
        series.add(dataset, timing.mean_ms)
    return figure


def fig12b(
    dataset: str = "COL",
    k_values: tuple[int, ...] = (10, 50, 100, 200, 500),
    queries_per_point: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Fig. 12(b): IterBound_I on COL for large k (T2, Q3)."""
    figure = FigureResult(
        figure="Fig 12b",
        title=f"Scalability of IterBound_I over k ({dataset}, T2, Q3)",
        x_label="k",
    )
    _, solver = solver_for(dataset, seed=seed)
    workload = workload_for(dataset, "T2", seed=seed)
    sources = workload.group("Q3")[:queries_per_point]
    series = figure.new_series("IterBoundI")
    for k in k_values:
        timing = time_query_batch(solver, sources, "T2", k, "iter-bound-spti")
        series.add(str(k), timing.mean_ms)
    return figure


# ----------------------------------------------------------------------
# Figure 13 — GKPJ
# ----------------------------------------------------------------------
def _time_gkpj(
    solver: KPJSolver,
    source_sets: list[tuple[int, ...]],
    category: str,
    k: int,
    algorithm: str,
) -> float:
    times = []
    for sources in source_sets:
        start = time.perf_counter()
        solver.join(sources=sources, category=category, k=k, algorithm=algorithm)
        times.append((time.perf_counter() - start) * 1000.0)
    return statistics.fmean(times)


def fig13(
    dataset: str = "COL",
    vary: str = "T",
    queries_per_point: int = 3,
    k: int = 20,
    source_set_size: int = 4,
    seed: int = 0,
) -> FigureResult:
    """Fig. 13: GKPJ (4 random source nodes) — DA-SPT vs IterBound_I."""
    network, solver = solver_for(dataset, seed=seed)
    rng = random.Random(seed + 17)
    source_sets = [
        tuple(rng.sample(range(network.n), source_set_size))
        for _ in range(queries_per_point)
    ]
    figure = FigureResult(
        figure=f"Fig 13 (vary {vary})",
        title=f"GKPJ on {dataset}, |V_S|={source_set_size}",
        x_label="category" if vary == "T" else "k",
    )
    for algorithm in ("da-spt", "iter-bound-spti"):
        series = figure.new_series(ALGO_LABELS[algorithm])
        if vary == "T":
            for category in NESTED:
                size = network.categories.size(category)
                mean = _time_gkpj(solver, source_sets, category, k, algorithm)
                series.add(f"{category}({size})", mean)
        elif vary == "k":
            for k_value in K_VALUES:
                mean = _time_gkpj(solver, source_sets, "T2", k_value, algorithm)
                series.add(str(k_value), mean)
        else:
            raise ValueError(f"vary must be 'T' or 'k', got {vary!r}")
    return figure


# ----------------------------------------------------------------------
# Ablations (ours, motivated by DESIGN.md)
# ----------------------------------------------------------------------
class _Eq1Bounds:
    """Eq. (1) target bound as a lazily cached heuristic callable."""

    def __init__(self, index, targets: tuple[int, ...], n: int) -> None:
        self._index = index
        self._targets = targets
        self._n = n
        self._cache: dict[int, float] = {}

    def __call__(self, u: int) -> float:
        if u >= self._n:
            return 0.0
        cached = self._cache.get(u)
        if cached is None:
            cached = self._index.to_target_bound_eq1(u, self._targets)
            self._cache[u] = cached
        return cached


def ablation_bounds(
    dataset: str = "CAL",
    category: str = "Harbor",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Ablation A1: Eq. (1) vs Eq. (2) target bounds inside BestFirst.

    Eq. (1) is tighter per node but ``O(|L| |V_T|)`` per evaluation;
    Eq. (2) is the paper's choice.  Run BestFirst with each bound and
    compare processing times.
    """
    from repro.core.best_first import best_first
    from repro.core.stats import SearchStats
    from repro.graph.virtual import build_query_graph

    network, solver = solver_for(dataset, seed=seed)
    index = solver.landmark_index
    workload = workload_for(dataset, category, seed=seed)
    sources = workload.group("Q3")[:queries_per_point]
    figure = FigureResult(
        figure="Ablation A1",
        title=f"Eq.(1) vs Eq.(2) bounds, BestFirst on {dataset}/{category}",
        x_label="bound",
    )
    targets = network.categories.nodes_of(category)
    for label in ("Eq2", "Eq1"):
        series = figure.new_series(label)
        times = []
        for source in sources:
            qg = build_query_graph(network.graph, (source,), targets)
            if label == "Eq2":
                bounds = index.to_target_bounds(qg.destinations)
            else:
                bounds = _Eq1Bounds(index, qg.destinations, network.graph.n)
            start = time.perf_counter()
            best_first(qg, k, bounds, stats=SearchStats())
            times.append((time.perf_counter() - start) * 1000.0)
        series.add("BestFirst", statistics.fmean(times))
    return figure


def ablation_hub_labels(
    dataset: str = "SJ",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Ablation A3: the 2-hop index on KSP vs on KPJ (Section 3's claim).

    For a *single* destination (KSP) the exact hub-label heuristic is
    applicable and competitive; for a *category* (KPJ, here T2) the
    per-node probe degrades to ``min`` over |V_T| label merges, and the
    landmark Eq. (2) bound wins — the reason the paper builds its own
    online indexes instead.
    """
    import statistics as _stats

    from repro.core.best_first import best_first
    from repro.core.stats import SearchStats
    from repro.graph.virtual import build_query_graph
    from repro.landmarks.hub_labels import HubLabelIndex, exact_target_heuristic

    network, solver = solver_for(dataset, seed=seed)
    landmark_index = solver.landmark_index
    hub_index = HubLabelIndex.build(network.graph)
    figure = FigureResult(
        figure="Ablation A3",
        title=f"2-hop labels vs landmarks inside BestFirst ({dataset})",
        x_label="heuristic",
    )

    def timed(qg, bounds) -> float:
        start = time.perf_counter()
        best_first(qg, k, bounds, stats=SearchStats())
        return (time.perf_counter() - start) * 1000.0

    # KSP setting: single destination (first T1 node).
    target = network.categories.nodes_of("T1")[0]
    ksp_workload = workload_for(dataset, "T1", seed=seed)
    ksp_sources = ksp_workload.group("Q3")[:queries_per_point]
    # KPJ setting: the T2 category.
    kpj_targets = network.categories.nodes_of("T2")
    kpj_workload = workload_for(dataset, "T2", seed=seed)
    kpj_sources = kpj_workload.group("Q3")[:queries_per_point]

    hub = figure.new_series("hub-labels")
    landmark = figure.new_series("landmarks-eq2")
    n = network.graph.n
    for label, sources, targets in (
        ("KSP", ksp_sources, (target,)),
        ("KPJ-T2", kpj_sources, kpj_targets),
    ):
        hub_times = []
        landmark_times = []
        for source in sources:
            qg = build_query_graph(network.graph, (source,), targets)
            if len(targets) == 1:
                hub_bounds = exact_target_heuristic(hub_index, targets[0])
            else:
                # The KPJ probe the paper warns about: min over V_T per node.
                def hub_bounds(v, _targets=targets):
                    if v >= n:
                        return 0.0
                    return hub_index.distance_to_set(v, _targets)

            hub_times.append(timed(qg, hub_bounds))
            landmark_times.append(
                timed(qg, landmark_index.to_target_bounds(qg.destinations))
            )
        hub.add(label, _stats.fmean(hub_times))
        landmark.add(label, _stats.fmean(landmark_times))
    return figure


def work_table(
    dataset: str = "CAL",
    category: str = "Lake",
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Lemma 4.1 as a table: mean work counters per algorithm.

    Shows *why* the timing figures look the way they do: shortest-path
    computations collapse from O(k·n)-flavoured counts under the
    deviation paradigm to a single initial computation under the
    iteratively bounding approaches, and the settled-node counts track
    each method's exploration area.
    """
    _, solver = solver_for(dataset, seed=seed)
    workload = workload_for(dataset, category, seed=seed)
    sources = workload.group("Q3")[:queries_per_point]
    figure = FigureResult(
        figure="Work counters",
        title=f"Mean per-query work on {dataset}/{category} (Q3, k={k})",
        x_label="algorithm",
    )
    sp = figure.new_series("sp_computations")
    settled = figure.new_series("nodes_settled")
    tests = figure.new_series("lb_tests")
    for algorithm in ALL_ALGOS:
        timing = time_query_batch(solver, sources, category, k, algorithm)
        label = ALGO_LABELS[algorithm]
        sp.add(label, timing.stats.shortest_path_computations / timing.queries)
        settled.add(label, timing.stats.nodes_settled / timing.queries)
        tests.add(label, timing.stats.lb_tests / timing.queries)
    figure.notes = "values are per-query counters, not milliseconds"
    return figure


def ablation_alpha_counters(
    dataset: str = "CAL",
    category: str = "Harbor",
    alphas: tuple[float, ...] = (1.05, 1.1, 1.2, 1.5, 1.8),
    queries_per_point: int = 3,
    k: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Ablation A2: how alpha trades TestLB calls against failures.

    Smaller alpha means more, cheaper tests; larger alpha means fewer
    tests that each explore more.  Reported values are counter means
    per query (not milliseconds).
    """
    _, solver = solver_for(dataset, seed=seed)
    workload = workload_for(dataset, category, seed=seed)
    sources = workload.group("Q3")[:queries_per_point]
    figure = FigureResult(
        figure="Ablation A2",
        title=f"IterBound_I TestLB counters vs alpha ({dataset}/{category})",
        x_label="alpha",
    )
    tests = figure.new_series("lb_tests")
    failures = figure.new_series("lb_test_failures")
    settled = figure.new_series("nodes_settled")
    for alpha in alphas:
        timing = time_query_batch(
            solver, sources, category, k, "iter-bound-spti", alpha=alpha
        )
        tests.add(f"{alpha:g}", timing.stats.lb_tests / timing.queries)
        failures.add(f"{alpha:g}", timing.stats.lb_test_failures / timing.queries)
        settled.add(f"{alpha:g}", timing.stats.nodes_settled / timing.queries)
    figure.notes = "values are per-query counters, not milliseconds"
    return figure
