"""Timing harness for the experiment suite.

Wraps a :class:`~repro.core.kpj.KPJSolver` with query batches and
wall-clock measurement, and defines the result containers the
reporting layer renders (a *figure* is a set of labelled series over a
shared x-axis, exactly like the paper's plots).

Solvers (and their landmark indexes) are cached per dataset so a
benchmark session pays the offline cost once, mirroring the paper's
offline/online split.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

from repro.core.kpj import KPJSolver
from repro.core.stats import SearchStats
from repro.datasets.queries import QueryWorkload, stratified_sources
from repro.datasets.registry import RoadNetwork, road_network

__all__ = [
    "Series",
    "FigureResult",
    "solver_for",
    "workload_for",
    "time_query_batch",
    "BatchTiming",
]


@dataclass
class BatchTiming:
    """Aggregate of one timed batch of queries."""

    mean_ms: float
    median_ms: float
    total_ms: float
    queries: int
    stats: SearchStats


@dataclass
class Series:
    """One line of a figure: a label and (x, milliseconds) points."""

    label: str
    points: list[tuple[str, float]] = field(default_factory=list)

    def add(self, x: str, value_ms: float) -> None:
        """Append a point."""
        self.points.append((x, value_ms))


@dataclass
class FigureResult:
    """A reproduced figure: labelled series over a shared x-axis."""

    figure: str
    title: str
    x_label: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def new_series(self, label: str) -> Series:
        """Create, register, and return a fresh series."""
        series = Series(label)
        self.series.append(series)
        return series


@lru_cache(maxsize=None)
def solver_for(
    dataset: str, landmarks: int | None = 16, seed: int = 0
) -> tuple[RoadNetwork, KPJSolver]:
    """Dataset + solver, cached across benchmarks in one process."""
    network = road_network(dataset, seed=seed)
    solver = KPJSolver(network.graph, network.categories, landmarks=landmarks, seed=seed)
    return network, solver


@lru_cache(maxsize=None)
def workload_for(
    dataset: str, category: str, per_group: int = 20, seed: int = 0
) -> QueryWorkload:
    """Stratified ``Q1..Q5`` source groups, cached."""
    network = road_network(dataset, seed=seed)
    return stratified_sources(
        network.graph, network.categories, category, per_group=per_group, seed=seed
    )


def time_query_batch(
    solver: KPJSolver,
    sources: Sequence[int],
    category: str,
    k: int,
    algorithm: str,
    alpha: float = 1.1,
    metrics=None,
) -> BatchTiming:
    """Run one query per source and aggregate the solver-recorded times.

    Per-query wall time comes from ``QueryResult.elapsed_ms`` (the
    solver times itself now) rather than a harness-side stopwatch, so
    a benchmark measures exactly what serving measures.  Pass a
    :class:`~repro.obs.metrics.MetricsRegistry` as ``metrics`` to also
    collect phase attribution for the batch; it is attached to the
    solver only for the duration (solvers are cached across figures).
    """
    times: list[float] = []
    stats = SearchStats()
    saved = solver.metrics
    if metrics is not None:
        solver.metrics = metrics
    try:
        for source in sources:
            result = solver.top_k(
                source, category=category, k=k, algorithm=algorithm, alpha=alpha
            )
            times.append(result.elapsed_ms)
            stats.merge(result.stats)
    finally:
        solver.metrics = saved
    return BatchTiming(
        mean_ms=statistics.fmean(times),
        median_ms=statistics.median(times),
        total_ms=sum(times),
        queries=len(times),
        stats=stats,
    )
