"""Open-loop load-test replay, aggregation, and the SLO gate.

:func:`replay_workload` takes a frozen
:class:`~repro.bench.workload.WorkloadSpec`, expands it into its
deterministic arrival schedule, and replays it against a serving
target: the dispatcher sleeps until each arrival's scheduled offset
and submits the query **regardless of completions** (open loop), so a
system that cannot keep up accumulates visible queue wait instead of
quietly throttling the offered load.

Three targets share that dispatcher:

* ``target="pool"`` (default) — the same forked processes
  :func:`repro.server.pool.run_batch` uses; each query comes back
  with its metrics snapshot and a worker-stamped ``started_at_s``,
  and the dispatcher records its own enqueue offset per arrival, so
  queue wait and service time are attributed separately without any
  new timers on the query path;
* ``target="service"`` — the resident-worker tier
  (:class:`repro.server.service.QueryService`), spun in-process for
  the replay: warm-up (JIT, shared-memory export, category prewarm)
  is paid **once at service start** and lands in the entry's
  one-time ``warmup`` phase, so ``service_ms`` reflects steady-state
  serving;
* ``url=...`` — an already-running ``kpj serve`` endpoint, replayed
  over HTTP (the entry still records ``target: service``); phase
  attribution comes from the server's ``/status`` report, which
  covers the server's lifetime, not just this replay.

Entries record their ``target``, and :func:`baseline_for` matches on
it, so pool and service trajectories gate independently.

Collection rides the existing observability layers: per-query latency
from ``QueryResult.elapsed_ms``, per-phase wall clock from the merged
:class:`~repro.obs.metrics.MetricsRegistry` snapshots, per-phase work
counters from ``SearchStats`` via
:func:`repro.bench.trajectory.accumulate_work`.  Tail behaviour is
summarised into log-spaced histograms
(:data:`~repro.obs.metrics.LOADTEST_LATENCY_BUCKETS_MS`) so
p50/p95/p99/p99.9 stay in finite buckets even when queueing pushes
the tail far beyond any single query's service time.

The result is one schema-versioned ``BENCH_loadtest.json`` entry;
:func:`evaluate_gate` enforces the spec's declared SLO (absolute p99
and throughput floors, error budget) plus a regression bound against
the pinned baseline entry with the identical spec.  Queries that
raise are **counted, not fatal** — a serving benchmark reports its
error rate and lets the gate's error budget decide.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter, sleep
from typing import Mapping, Sequence

from repro.bench.trajectory import accumulate_work
from repro.bench.workload import WorkloadSpec, generate_schedule, schedule_digest
from repro.exceptions import QueryError
from repro.obs.metrics import (
    LOADTEST_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "LOADTEST_SCHEMA_VERSION",
    "replay_workload",
    "evaluate_gate",
    "baseline_for",
    "load_entries",
    "render_entry_summary",
]

#: Version stamped into every ``BENCH_loadtest.json`` entry; bump on
#: any change to the entry's fields or their meaning.
LOADTEST_SCHEMA_VERSION = 1

#: The tail quantiles every latency block reports.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _summarise(hist: Histogram) -> dict:
    """One latency block: count/mean + the tail quantiles (JSON-safe)."""
    out: dict = {
        "count": hist.total,
        "mean": hist.sum / hist.total if hist.total else None,
    }
    for name, q in _QUANTILES:
        value = hist.quantile(q) if hist.total else math.nan
        out[name] = None if math.isnan(value) else value
    return out


def _solver_for(spec: WorkloadSpec):
    from repro.core.kpj import KPJSolver
    from repro.datasets.registry import road_network

    dataset = road_network(spec.dataset)
    missing = [
        c for c in spec.categories if not dataset.categories.has_category(c)
    ]
    if missing:
        raise QueryError(
            f"dataset {spec.dataset!r} has no categor"
            f"{'y' if len(missing) == 1 else 'ies'} "
            f"{', '.join(repr(c) for c in missing)}"
        )
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=spec.landmarks,
        kernel=spec.kernel,
    )
    return dataset, solver


def _replay_pool(spec, solver, schedule, queries, agg):
    """The fork-per-batch target (the original replay engine)."""
    from repro.server.pool import (
        _execute,
        _warm_cache,
        _WorkerFailure,
        _worker_execute,
    )
    from repro.server import pool as pool_mod

    # Per-query snapshots need a registry attached before the fork;
    # the parent merges each result's snapshot into ``agg`` uniformly
    # (pooled or not), so the solver's own registry is never read.
    solver.metrics = MetricsRegistry()
    t_warm = perf_counter()
    _warm_cache(solver, queries)
    agg.observe_phase("warmup", perf_counter() - t_warm)

    ctx = None
    if spec.workers > 1:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = None

    raws: list[tuple] = []  # (arrival, enqueued_abs, result-or-failure)
    t0 = perf_counter()
    if ctx is not None:
        pool_mod._WORKER_SOLVER = solver
        try:
            with ctx.Pool(
                processes=spec.workers,
                initializer=pool_mod._init_worker,
                initargs=(ctx.Value("i", 0),),
            ) as pool:
                t0 = perf_counter()
                pending = []
                for arrival, query in zip(schedule, queries):
                    delay = arrival.offset_s - (perf_counter() - t0)
                    if delay > 0:
                        sleep(delay)
                    enq = perf_counter()
                    pending.append(
                        (arrival, enq, pool.apply_async(_worker_execute, (query,)))
                    )
                raws = [(a, enq, h.get()) for a, enq, h in pending]
        finally:
            pool_mod._WORKER_SOLVER = None
    else:
        # Single-worker (or fork-less) replay: the dispatcher itself
        # is the one worker.  Arrivals stay open-loop — a query that
        # arrives while the previous one is still running starts late,
        # and that lateness *is* its queue wait.
        t0 = perf_counter()
        for arrival, query in zip(schedule, queries):
            delay = arrival.offset_s - (perf_counter() - t0)
            if delay > 0:
                sleep(delay)
            enq = perf_counter()
            try:
                result = _execute(solver, query)
            except Exception as exc:
                raws.append((arrival, enq, _WorkerFailure(error=exc)))
                continue
            result.timing = {"started_at_s": enq}
            raws.append((arrival, enq, result))
    makespan = perf_counter() - t0
    solver.metrics = None
    return raws, makespan


def _replay_service(spec, solver, schedule, queries, agg):
    """The resident-worker target: one long-lived service for the
    whole replay, warm-up paid once at start."""
    from repro.server.pool import _WorkerFailure
    from repro.server.service import QueryService

    service = QueryService(
        solver,
        workers=spec.workers,
        # The replay is open-loop by design — admission shedding would
        # turn offered-load pressure into errors, which is the serve
        # path's policy, not the benchmark's.  Bound high enough that
        # every arrival is admitted.
        max_pending=len(schedule) + spec.workers + 1,
        prewarm=spec.categories,
    )
    service.start()
    try:
        t0 = perf_counter()
        pending = []
        for arrival, query in zip(schedule, queries):
            delay = arrival.offset_s - (perf_counter() - t0)
            if delay > 0:
                sleep(delay)
            enq = perf_counter()
            pending.append((arrival, enq, service.submit(query)))
        raws = []
        for arrival, enq, future in pending:
            try:
                raws.append((arrival, enq, future.result()))
            except Exception as exc:
                raws.append((arrival, enq, _WorkerFailure(error=exc)))
        makespan = perf_counter() - t0
    finally:
        service.shutdown()
    # The service registry holds the one-time ``warmup`` phase, every
    # per-query snapshot, and the service counters/histograms.
    agg.merge(service.metrics)
    return raws, makespan


def _http_query(url: str, payload: dict, timeout: float):
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + "/query",
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        try:
            message = json.loads(body).get("error", body)
        except (json.JSONDecodeError, AttributeError):
            message = body
        raise QueryError(f"HTTP {exc.code}: {message}") from None
    except (urllib.error.URLError, OSError) as exc:
        raise QueryError(f"service unreachable at {url!r}: {exc}") from None


def _replay_http(spec, url, schedule, queries, agg):
    """Replay against a running ``kpj serve`` endpoint over HTTP."""
    from concurrent.futures import ThreadPoolExecutor
    from types import SimpleNamespace

    from repro.core.stats import SearchStats
    from repro.server.pool import _WorkerFailure

    raws: list[tuple] = []
    timeout = 120.0
    with ThreadPoolExecutor(
        max_workers=min(64, max(4, spec.workers * 4))
    ) as executor:
        t0 = perf_counter()
        pending = []
        for arrival, query in zip(schedule, queries):
            delay = arrival.offset_s - (perf_counter() - t0)
            if delay > 0:
                sleep(delay)
            enq = perf_counter()
            payload = {
                "source": query.source, "k": query.k,
                "algorithm": query.algorithm, "alpha": query.alpha,
            }
            if query.category is not None:
                payload["category"] = query.category
            if query.destinations is not None:
                payload["destinations"] = list(query.destinations)
            pending.append(
                (arrival, enq, executor.submit(_http_query, url, payload, timeout))
            )
        for arrival, enq, future in pending:
            try:
                body = future.result()
            except Exception as exc:
                raws.append((arrival, enq, _WorkerFailure(error=exc)))
                continue
            raws.append((
                arrival,
                enq,
                SimpleNamespace(
                    timing=body.get("timing") or {},
                    elapsed_ms=float(body.get("elapsed_ms", 0.0)),
                    stats=SearchStats(**(body.get("stats") or {})),
                    metrics=body.get("metrics"),
                ),
            ))
        makespan = perf_counter() - t0
    # Phase attribution lives server-side; fold in the /status report
    # (lifetime totals — documented caveat for long-running servers).
    try:
        import urllib.request

        with urllib.request.urlopen(
            url.rstrip("/") + "/status", timeout=10
        ) as response:
            status = json.loads(response.read().decode("utf-8"))
        for phase, block in (status["metrics"].get("phases") or {}).items():
            agg.observe_phase(
                phase, block.get("seconds", 0.0), calls=block.get("calls", 1)
            )
    except Exception:  # pragma: no cover - status endpoint unreachable
        pass
    return raws, makespan


def replay_workload(
    spec: WorkloadSpec, progress=None, target: str = "pool",
    url: str | None = None,
) -> dict:
    """Replay ``spec`` open-loop and return one trajectory entry.

    ``target`` picks the serving tier (``"pool"`` or ``"service"``);
    passing ``url`` replays over HTTP against a running ``kpj serve``
    (and implies ``target="service"``).  Raises
    :class:`~repro.exceptions.QueryError` on spec/dataset mismatches
    (unknown category).  Individual query failures during the replay
    are counted into the entry's ``errors`` block instead of aborting
    — the SLO gate's error budget decides whether they fail the run.
    """
    from repro.server.pool import BatchQuery, _WorkerFailure

    if url is not None:
        target = "service"
    if target not in ("pool", "service"):
        raise QueryError(
            f"unknown loadtest target {target!r}; choose 'pool' or 'service'"
        )
    if url is not None:
        dataset_n = None
        from repro.datasets.registry import road_network

        dataset_n = road_network(spec.dataset).n
        solver = None
        schedule = generate_schedule(spec, dataset_n)
    else:
        dataset, solver = _solver_for(spec)
        schedule = generate_schedule(spec, dataset.n)
    if progress is not None:
        where = url if url is not None else target
        progress(
            f"replaying {spec.name!r}: {len(schedule)} arrivals at "
            f"{spec.target_qps:g} qps over {spec.workers} worker(s) "
            f"[{where}]"
        )
    queries = [
        BatchQuery(
            source=a.source, category=a.category, k=a.k,
            algorithm=spec.algorithm, alpha=spec.alpha,
        )
        for a in schedule
    ]
    agg = MetricsRegistry()
    if url is not None:
        raws, makespan = _replay_http(spec, url, schedule, queries, agg)
    elif target == "service":
        raws, makespan = _replay_service(spec, solver, schedule, queries, agg)
    else:
        raws, makespan = _replay_pool(spec, solver, schedule, queries, agg)

    latency = Histogram(LOADTEST_LATENCY_BUCKETS_MS)
    queue_wait = Histogram(LOADTEST_LATENCY_BUCKETS_MS)
    service = Histogram(LOADTEST_LATENCY_BUCKETS_MS)
    work: dict = {}
    errors: list[dict] = []
    service_total_s = 0.0
    for arrival, enq, raw in raws:
        if isinstance(raw, _WorkerFailure):
            errors.append({"index": arrival.index, "error": str(raw.error)})
            continue
        timing = raw.timing or {}
        if "queue_wait_s" in timing:
            # Service/HTTP results arrive with the wait already derived
            # (their ``*_at_s`` offsets are epoch-rebased, not raw
            # ``perf_counter`` readings comparable to ``enq``).
            qw_ms = max(0.0, timing["queue_wait_s"]) * 1e3
        else:
            started = timing.get("started_at_s", enq)
            qw_ms = max(0.0, started - enq) * 1e3
        svc_ms = raw.elapsed_ms
        queue_wait.observe(qw_ms)
        service.observe(svc_ms)
        latency.observe(qw_ms + svc_ms)
        service_total_s += svc_ms / 1e3
        accumulate_work(work, raw.stats)
        if raw.metrics is not None:
            agg.merge(raw.metrics)
    completed = latency.total

    report = agg.report()
    entry = {
        "schema_version": LOADTEST_SCHEMA_VERSION,
        "sha": _git_sha(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "spec": spec.as_dict(),
        "target": target,
        "schedule_sha": schedule_digest(schedule),
        "queries": len(schedule),
        "completed": completed,
        "errors": {"count": len(errors), "samples": errors[:5]},
        "duration_s": makespan,
        "target_qps": spec.target_qps,
        "achieved_qps": completed / makespan if makespan > 0 else 0.0,
        "occupancy": (
            service_total_s / (spec.workers * makespan) if makespan > 0 else 0.0
        ),
        "latency_ms": _summarise(latency),
        "queue_wait_ms": _summarise(queue_wait),
        "service_ms": _summarise(service),
        "phases": report["phases"],
        "work": work,
    }
    if url is not None:
        entry["url"] = url
    return entry


def baseline_for(
    entries: Sequence[Mapping], spec_dict: Mapping, target: str = "pool"
) -> dict | None:
    """The latest entry recorded under exactly ``spec_dict`` for
    ``target``.

    Entries from before targets existed carry no ``target`` field and
    are treated as ``"pool"`` — the only tier that produced them — so
    pool and service trajectories gate against their own baselines.
    """
    for entry in reversed(list(entries)):
        if (
            entry.get("spec") == spec_dict
            and entry.get("target", "pool") == target
        ):
            return dict(entry)
    return None


def load_entries(path: str) -> list[dict]:
    """Read a ``BENCH_loadtest.json`` trajectory (missing file → ``[]``)."""
    p = Path(path)
    if not p.exists():
        return []
    text = p.read_text()
    if not text.strip():
        return []
    try:
        entries = json.loads(text)
    except json.JSONDecodeError as exc:
        raise QueryError(f"malformed trajectory {path!r}: {exc}") from None
    if not isinstance(entries, list):
        raise QueryError(f"trajectory {path!r} is not a list of entries")
    return entries


def evaluate_gate(
    entry: Mapping, spec: WorkloadSpec, baseline: Mapping | None = None
) -> list[str]:
    """SLO gate: spec bounds plus baseline regression.  Returns failures.

    Absolute bounds come from the spec (``slo.p99_ms``,
    ``slo.min_qps``, ``slo.max_error_rate``); when a ``baseline``
    entry with the identical spec is supplied and the spec declares a
    ``regression_factor``, the candidate's p99 may not exceed
    ``baseline_p99 × factor`` and its achieved QPS may not fall below
    ``baseline_qps / factor``.
    """
    failures: list[str] = []
    slo = spec.slo
    p99 = (entry.get("latency_ms") or {}).get("p99")
    achieved = entry.get("achieved_qps", 0.0)
    n_queries = entry.get("queries", 0)
    n_errors = (entry.get("errors") or {}).get("count", 0)
    if slo.p99_ms is not None:
        if p99 is None:
            failures.append("no completed queries — p99 SLO cannot be met")
        elif p99 > slo.p99_ms:
            failures.append(
                f"latency p99 {p99:.3f} ms exceeds the declared SLO "
                f"bound {slo.p99_ms:.3f} ms"
            )
    if slo.min_qps is not None and achieved < slo.min_qps:
        failures.append(
            f"achieved throughput {achieved:.2f} qps is below the "
            f"declared floor {slo.min_qps:.2f} qps"
        )
    if n_queries:
        rate = n_errors / n_queries
        if rate > slo.max_error_rate:
            failures.append(
                f"error rate {rate:.4f} ({n_errors}/{n_queries}) exceeds "
                f"the budget {slo.max_error_rate:.4f}"
            )
    if baseline is not None and slo.regression_factor is not None:
        if baseline.get("spec") != entry.get("spec"):
            failures.append(
                "baseline entry was recorded under a different spec — "
                "refresh the baseline"
            )
        elif baseline.get("target", "pool") != entry.get("target", "pool"):
            failures.append(
                "baseline entry was recorded under a different target — "
                "refresh the baseline"
            )
        else:
            base_p99 = (baseline.get("latency_ms") or {}).get("p99")
            if base_p99 and p99 is not None and p99 > base_p99 * slo.regression_factor:
                failures.append(
                    f"latency p99 regressed {p99 / base_p99:.2f}x vs the "
                    f"baseline ({base_p99:.3f} ms -> {p99:.3f} ms, "
                    f"threshold {slo.regression_factor}x)"
                )
            base_qps = baseline.get("achieved_qps")
            if base_qps and achieved < base_qps / slo.regression_factor:
                failures.append(
                    f"achieved throughput fell {base_qps / achieved:.2f}x vs "
                    f"the baseline ({base_qps:.2f} -> {achieved:.2f} qps, "
                    f"threshold {slo.regression_factor}x)"
                )
    return failures


def _fmt_ms(value) -> str:
    return "-" if value is None else f"{value:.3f}"


def render_entry_summary(entry: Mapping, baseline: Mapping | None = None) -> str:
    """Human-readable replay summary (the ``kpj loadtest`` stdout)."""
    spec = entry.get("spec") or {}
    lines = [
        f"loadtest {spec.get('name', '?')!r}: {spec.get('dataset', '?')} "
        f"({spec.get('algorithm', '?')}, {spec.get('kernel', '?')} kernel, "
        f"{spec.get('workers', '?')} worker(s), seed {spec.get('seed', '?')}, "
        f"target {entry.get('target', 'pool')})",
        f"  arrivals  {entry.get('queries', 0)} "
        f"(completed {entry.get('completed', 0)}, "
        f"errors {(entry.get('errors') or {}).get('count', 0)}), "
        f"schedule {str(entry.get('schedule_sha', '?'))[:12]}",
        f"  duration  {entry.get('duration_s', 0.0):.2f} s   "
        f"qps {entry.get('achieved_qps', 0.0):.2f} achieved / "
        f"{entry.get('target_qps', 0.0):g} target   "
        f"occupancy {entry.get('occupancy', 0.0):.2f}",
        "  component     p50 ms     p95 ms     p99 ms   p99.9 ms",
    ]
    for key, label in (
        ("latency_ms", "latency"),
        ("queue_wait_ms", "queue wait"),
        ("service_ms", "service"),
    ):
        block = entry.get(key) or {}
        lines.append(
            f"  {label:<10}"
            + "".join(
                f" {_fmt_ms(block.get(q)):>10}" for q in ("p50", "p95", "p99", "p999")
            )
        )
    if baseline is not None:
        base_p99 = (baseline.get("latency_ms") or {}).get("p99")
        now_p99 = (entry.get("latency_ms") or {}).get("p99")
        if base_p99 and now_p99 is not None:
            lines.append(
                f"  baseline  p99 {base_p99:.3f} ms "
                f"({baseline.get('date', '?')}): now {now_p99 / base_p99:.2f}x"
            )
    return "\n".join(lines)
