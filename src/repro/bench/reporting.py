"""Rendering of reproduced figures as aligned text tables.

The paper's figures are log-scale line plots of processing time; in a
terminal-first reproduction the equivalent artefact is a table with
one row per series and one column per x value, which is what
:func:`format_figure` produces.  :func:`format_speedups` adds the
relative view (every series normalised by a baseline) since the
paper's claims are about ratios, not absolute milliseconds.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.harness import FigureResult

__all__ = ["format_figure", "format_speedups", "write_figure"]


def _fmt(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def format_figure(figure: FigureResult, unit: str = "ms") -> str:
    """Render a figure as an aligned table (rows = series)."""
    xs: list[str] = []
    for series in figure.series:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    label_width = max([len(s.label) for s in figure.series] + [len(figure.x_label)])
    col_width = max([len(x) for x in xs] + [8])
    lines = [f"{figure.figure}: {figure.title}  [{unit}]"]
    header = f"{figure.x_label:<{label_width}}  " + "  ".join(
        f"{x:>{col_width}}" for x in xs
    )
    lines.append(header)
    lines.append("-" * len(header))
    for series in figure.series:
        values = dict(series.points)
        cells = []
        for x in xs:
            value = values.get(x)
            cells.append(f"{_fmt(value):>{col_width}}" if value is not None else " " * col_width)
        lines.append(f"{series.label:<{label_width}}  " + "  ".join(cells))
    if figure.notes:
        lines.append(f"note: {figure.notes}")
    return "\n".join(lines)


def format_speedups(figure: FigureResult, baseline_label: str) -> str:
    """Render the same figure as speedups relative to one series."""
    baseline = next(
        (s for s in figure.series if s.label == baseline_label), None
    )
    if baseline is None:
        raise ValueError(f"no series labelled {baseline_label!r} in {figure.figure}")
    base = dict(baseline.points)
    relative = FigureResult(
        figure=figure.figure,
        title=f"{figure.title} — speedup vs {baseline_label}",
        x_label=figure.x_label,
    )
    for series in figure.series:
        out = relative.new_series(series.label)
        for x, value in series.points:
            if x in base and value > 0:
                out.add(x, base[x] / value)
    return format_figure(relative, unit="x")


def write_figure(figure: FigureResult, directory: str | Path, unit: str = "ms") -> Path:
    """Persist a rendered figure under ``directory`` and return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{figure.figure.lower().replace(' ', '_')}.txt"
    path.write_text(format_figure(figure, unit=unit) + "\n", encoding="utf-8")
    return path
