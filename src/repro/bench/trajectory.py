"""Trajectory rendering — BENCH_trajectory.json as a markdown report.

The perf-regression harness (``benchmarks/regression.py``) appends one
entry per pinned workload per ``--update`` run: per-phase p50/p95
latencies, a paths checksum, and — since the work-attribution layer —
the per-phase **work counters** (relaxations, heap traffic, TestLB
verdicts) that explain *why* a latency moved.  This module renders
that file for humans: ``kpj report`` prints the markdown trajectory
(latency history per kernel, the latest entry's phase table, and the
work-counter deltas against the previous entry), and the harness
reuses :func:`render_work_deltas` for the delta table the CI perf-gate
job uploads as an artifact.

Work counters are whole-query totals grouped under the phase that
primarily drives them (the §3g taxonomy): ``comp_sp`` owns the
shortest-path computations, ``test_lb`` owns the bounded-search work
(settles, relaxations, heap traffic, verdict tallies, batch
occupancy), ``spt_grow`` the tree size, ``division`` the subspace
bookkeeping, ``prepare`` the cache traffic.  Counters are exact and
deterministic (the work-parity invariant pins them across kernels), so
any delta here is an algorithmic change, not noise — which is why the
gate *reports* them but latency alone decides pass/fail.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

__all__ = [
    "WORK_PHASE_FIELDS",
    "work_snapshot",
    "render_trajectory_report",
    "render_work_deltas",
    "render_loadtest_report",
]

#: §3g taxonomy: which SearchStats counters ride under which phase in
#: a trajectory entry's ``work`` block.  Keep in sync with
#: :data:`repro.core.stats.WORK_PARITY_FIELDS` (the parity test
#: asserts the union covers it).
WORK_PHASE_FIELDS: dict[str, tuple[str, ...]] = {
    "comp_sp": ("shortest_path_computations",),
    "spt_grow": ("spt_nodes",),
    "test_lb": (
        "lb_tests",
        "lb_test_hits",
        "lb_test_misses",
        "lb_test_retires",
        "lb_test_failures",
        "nodes_settled",
        "edges_relaxed",
        "heap_pushes",
        "heap_pops",
        "batch_rounds",
        "batch_slots_filled",
    ),
    "division": (
        "subspaces_created",
        "subspaces_pruned",
        "lower_bound_computations",
    ),
    "prepare": ("prepared_cache_hits", "prepared_cache_misses"),
}


def work_snapshot(stats) -> dict[str, dict[str, int]]:
    """A :class:`~repro.core.stats.SearchStats` as a ``work`` block.

    Phase-grouped totals per :data:`WORK_PHASE_FIELDS`; zero-valued
    counters are kept (a counter dropping *to* zero is exactly the
    kind of change the deltas exist to surface).
    """
    return {
        phase: {field: int(getattr(stats, field)) for field in fields}
        for phase, fields in WORK_PHASE_FIELDS.items()
    }


def _merge_work(into: dict, add: Mapping) -> dict:
    for phase, counters in add.items():
        bucket = into.setdefault(phase, {})
        for field, value in counters.items():
            bucket[field] = bucket.get(field, 0) + int(value)
    return into


def accumulate_work(total: dict, stats) -> dict:
    """Fold one query's counters into a workload-level ``work`` block."""
    return _merge_work(total, work_snapshot(stats))


def _fmt_delta(now: int, base: int | None) -> str:
    if base is None:
        return "(new)"
    if now == base:
        return "="
    sign = "+" if now > base else ""
    pct = f" ({(now - base) / base * 100.0:+.1f}%)" if base else ""
    return f"{sign}{now - base}{pct}"


def render_work_deltas(entry: Mapping, baseline: Mapping | None) -> str:
    """Markdown table of one entry's work counters vs its baseline.

    ``entry``/``baseline`` are trajectory entries; a baseline of
    ``None`` (or one recorded before the work-attribution layer, i.e.
    without a ``work`` block) renders the current values with every
    delta marked ``(new)``.
    """
    work = entry.get("work") or {}
    base_work = (baseline or {}).get("work") or {}
    kernel = (entry.get("protocol") or {}).get("kernel", "?")
    lines = [
        f"### Work counters — `{kernel}` kernel",
        "",
        "| phase | counter | value | Δ vs baseline |",
        "|---|---|---:|---:|",
    ]
    if not work:
        return "\n".join(lines[:2] + ["(entry has no work block)"])
    for phase in sorted(work):
        base_phase = base_work.get(phase) or {}
        for field in sorted(work[phase]):
            now = int(work[phase][field])
            base = base_phase.get(field)
            base = int(base) if base is not None else None
            lines.append(
                f"| {phase} | {field} | {now} | {_fmt_delta(now, base)} |"
            )
    return "\n".join(lines)


def _protocol_key(entry: Mapping) -> str:
    return json.dumps(entry.get("protocol") or {}, sort_keys=True)


def render_trajectory_report(trajectory: Sequence[Mapping]) -> str:
    """The full ``kpj report`` markdown document for a trajectory file.

    One section per pinned workload (grouped by exact protocol, the
    same matching rule the gate uses): the latency history table, the
    latest entry's per-phase p50/p95 with deltas against the previous
    entry, and the work-counter delta table.
    """
    if not trajectory:
        return "# Perf trajectory report\n\n(no entries)"
    groups: dict[str, list[Mapping]] = {}
    for entry in trajectory:
        groups.setdefault(_protocol_key(entry), []).append(entry)
    out = ["# Perf trajectory report", ""]
    for key in sorted(groups, key=lambda k: json.loads(k).get("kernel", "")):
        entries = groups[key]
        spec = json.loads(key)
        latest = entries[-1]
        previous = entries[-2] if len(entries) > 1 else None
        out.append(
            f"## {spec.get('dataset', '?')}/{spec.get('category', '?')} — "
            f"`{spec.get('kernel', '?')}` kernel "
            f"(protocol v{spec.get('version', '?')}, "
            f"{spec.get('algorithm', '?')}, k={spec.get('k', '?')}, "
            f"{len(spec.get('sources', []))} sources)"
        )
        out.append("")
        out.append("| date | sha | total p50 ms | total p95 ms |")
        out.append("|---|---|---:|---:|")
        for entry in entries:
            total = (entry.get("phases") or {}).get("total") or {}
            out.append(
                f"| {entry.get('date', '?')} | {str(entry.get('sha', '?'))[:12]} "
                f"| {total.get('p50_ms', float('nan')):.3f} "
                f"| {total.get('p95_ms', float('nan')):.3f} |"
            )
        out.append("")
        out.append("### Phases (latest entry)")
        out.append("")
        out.append("| phase | p50 ms | p95 ms | Δp50 vs previous |")
        out.append("|---|---:|---:|---:|")
        prev_phases = (previous or {}).get("phases") or {}
        for name in sorted(latest.get("phases") or {}):
            now = latest["phases"][name]
            prev = prev_phases.get(name)
            if prev and prev.get("p50_ms"):
                delta = f"{now['p50_ms'] / prev['p50_ms']:.2f}x"
            else:
                delta = "(new)"
            out.append(
                f"| {name} | {now['p50_ms']:.3f} | {now['p95_ms']:.3f} "
                f"| {delta} |"
            )
        out.append("")
        out.append(render_work_deltas(latest, previous))
        out.append("")
    return "\n".join(out).rstrip() + "\n"


def _lt(block: Mapping | None, key: str) -> str:
    value = (block or {}).get(key)
    return "-" if value is None else f"{value:.3f}"


def render_loadtest_report(entries: Sequence[Mapping]) -> str:
    """The ``kpj report --loadtest`` markdown for ``BENCH_loadtest.json``.

    One section per workload spec (grouped by exact spec dict, the
    same matching rule the SLO gate's baseline lookup uses): the
    tail-latency/throughput history table, then the latest entry's
    queue-wait vs service-time breakdown and work-counter deltas
    against the previous entry of the same spec.
    """
    if not entries:
        return "# Load-test trajectory report\n\n(no entries)"
    groups: dict[str, list[Mapping]] = {}
    for entry in entries:
        key = json.dumps(entry.get("spec") or {}, sort_keys=True)
        groups.setdefault(key, []).append(entry)
    out = ["# Load-test trajectory report", ""]
    for key in sorted(groups, key=lambda k: json.loads(k).get("name", "")):
        group = groups[key]
        spec = json.loads(key)
        latest = group[-1]
        previous = group[-2] if len(group) > 1 else None
        out.append(
            f"## {spec.get('name', '?')} — {spec.get('dataset', '?')}, "
            f"`{spec.get('kernel', '?')}` kernel, "
            f"{spec.get('workers', '?')} worker(s), "
            f"{spec.get('target_qps', '?')} qps target "
            f"(skew {(spec.get('skew') or {}).get('kind', '?')}, "
            f"seed {spec.get('seed', '?')})"
        )
        out.append("")
        out.append(
            "| date | sha | qps | p50 ms | p99 ms | p99.9 ms | errors |"
        )
        out.append("|---|---|---:|---:|---:|---:|---:|")
        for entry in group:
            lat = entry.get("latency_ms") or {}
            out.append(
                f"| {entry.get('date', '?')} | {str(entry.get('sha', '?'))[:12]} "
                f"| {entry.get('achieved_qps', 0.0):.2f} "
                f"| {_lt(lat, 'p50')} | {_lt(lat, 'p99')} | {_lt(lat, 'p999')} "
                f"| {(entry.get('errors') or {}).get('count', 0)} |"
            )
        out.append("")
        out.append("### Queue wait vs service time (latest entry)")
        out.append("")
        out.append("| component | p50 ms | p95 ms | p99 ms | p99.9 ms |")
        out.append("|---|---:|---:|---:|---:|")
        for field, label in (
            ("latency_ms", "latency (sojourn)"),
            ("queue_wait_ms", "queue wait"),
            ("service_ms", "service"),
        ):
            block = latest.get(field) or {}
            out.append(
                f"| {label} | {_lt(block, 'p50')} | {_lt(block, 'p95')} "
                f"| {_lt(block, 'p99')} | {_lt(block, 'p999')} |"
            )
        out.append("")
        out.append(
            f"achieved {latest.get('achieved_qps', 0.0):.2f} / "
            f"{latest.get('target_qps', 0.0):g} qps target over "
            f"{latest.get('duration_s', 0.0):.2f} s, occupancy "
            f"{latest.get('occupancy', 0.0):.2f}, schedule "
            f"`{str(latest.get('schedule_sha', '?'))[:12]}`"
        )
        out.append("")
        # render_work_deltas reads protocol.kernel; adapt the spec key.
        out.append(
            render_work_deltas(
                {"work": latest.get("work"),
                 "protocol": {"kernel": spec.get("kernel", "?")}},
                {"work": (previous or {}).get("work")} if previous else None,
            )
        )
        out.append("")
    return "\n".join(out).rstrip() + "\n"
