"""Declarative load-test workload specs and seeded arrival schedules.

The serving story needs numbers measured *under concurrent load*, not
single-query best-of-5, and those numbers are only comparable over
time if the workload that produced them is pinned.  This module is
the pinning mechanism: a JSON/TOML document is validated into a
frozen :class:`WorkloadSpec` (dataset × category skew × k distribution
× target QPS × worker concurrency × duration-or-query-budget × SLO
bounds), and :func:`generate_schedule` expands the spec into a
deterministic **open-loop** arrival schedule — Poisson inter-arrival
gaps drawn from ``random.Random(spec.seed)``, so the same spec
replays byte-identically (:func:`schedule_digest` is the proof).

Open-loop means arrivals do not wait for completions: the schedule
fixes *when* each query arrives, and a system that cannot keep up
accumulates queue wait instead of silently slowing the offered load —
the failure mode a closed-loop driver can never observe (the
coordinated-omission problem).  The replay engine lives in
:mod:`repro.bench.loadtest`; this module is deliberately free of any
execution machinery so spec validation and schedule generation are
unit-testable without building a dataset.

All validation failures raise :class:`~repro.exceptions.QueryError`
with a message naming the offending field, the same contract as
:mod:`repro.validation`.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import QueryError

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "SKEW_KINDS",
    "K_KINDS",
    "CategorySkew",
    "KDistribution",
    "SLOPolicy",
    "WorkloadSpec",
    "Arrival",
    "parse_spec",
    "load_spec",
    "generate_schedule",
    "schedule_digest",
]

#: Version stamped into specs and load-test entries; bump on any
#: change to the spec fields or the rng draw order (either breaks
#: byte-identical replay of committed specs).
SPEC_SCHEMA_VERSION = 1

SKEW_KINDS = ("uniform", "zipf", "hot-set")
K_KINDS = ("fixed", "choice")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise QueryError(message)


def _finite_number(value, name: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and math.isfinite(value),
        f"{name} must be a finite number, got {value!r}",
    )
    return float(value)


def _int_field(value, name: str) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer, got {value!r}",
    )
    return int(value)


def _check_keys(mapping: Mapping, allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    _require(
        not unknown,
        f"unknown {where} field(s): {', '.join(unknown)} "
        f"(allowed: {', '.join(allowed)})",
    )


@dataclass(frozen=True)
class CategorySkew:
    """How arrivals spread over the spec's ranked category list.

    * ``uniform`` — every category equally likely;
    * ``zipf`` — category at rank ``r`` (1-based) drawn with
      probability proportional to ``r ** -s``;
    * ``hot-set`` — the first ``hot`` categories share ``mass`` of the
      probability uniformly, the remaining categories share the rest.
    """

    kind: str = "uniform"
    s: float = 1.2
    hot: int = 1
    mass: float = 0.9

    def weights(self, count: int) -> tuple[float, ...]:
        """Per-category draw weights for ``count`` ranked categories."""
        if self.kind == "uniform":
            return (1.0,) * count
        if self.kind == "zipf":
            return tuple((rank + 1) ** -self.s for rank in range(count))
        # hot-set
        cold = count - self.hot
        return tuple(
            self.mass / self.hot if rank < self.hot else (1.0 - self.mass) / cold
            for rank in range(count)
        )

    def as_dict(self) -> dict:
        """Canonical JSON form (only the active kind's knobs)."""
        if self.kind == "zipf":
            return {"kind": self.kind, "s": self.s}
        if self.kind == "hot-set":
            return {"kind": self.kind, "hot": self.hot, "mass": self.mass}
        return {"kind": self.kind}

    @classmethod
    def parse(cls, data: Mapping, categories: int) -> "CategorySkew":
        """Validate a spec's ``skew`` mapping (QueryError on violation)."""
        _require(isinstance(data, Mapping), f"skew must be a mapping, got {data!r}")
        kind = data.get("kind")
        _require(
            kind in SKEW_KINDS,
            f"bad skew kind {kind!r}; choose one of: {', '.join(SKEW_KINDS)}",
        )
        if kind == "uniform":
            _check_keys(data, ("kind",), "skew")
            return cls(kind=kind)
        if kind == "zipf":
            _check_keys(data, ("kind", "s"), "skew")
            s = _finite_number(data.get("s", 1.2), "skew.s")
            _require(s > 0.0, f"skew.s must be > 0, got {s}")
            return cls(kind=kind, s=s)
        _check_keys(data, ("kind", "hot", "mass"), "skew")
        hot = _int_field(data.get("hot", 1), "skew.hot")
        _require(
            1 <= hot < categories,
            "skew.hot must leave at least one cold category "
            f"(1 <= hot < {categories}), got {hot}",
        )
        mass = _finite_number(data.get("mass", 0.9), "skew.mass")
        _require(0.0 < mass < 1.0, f"skew.mass must be in (0, 1), got {mass}")
        return cls(kind=kind, hot=hot, mass=mass)


@dataclass(frozen=True)
class KDistribution:
    """The per-arrival ``k`` draw: a fixed value or a weighted choice."""

    kind: str = "fixed"
    value: int = 8
    values: tuple[int, ...] = ()
    weights: tuple[float, ...] | None = None

    def draw(self, rng: random.Random) -> int:
        """One per-arrival ``k`` sample from ``rng``."""
        if self.kind == "fixed":
            return self.value
        return rng.choices(self.values, weights=self.weights)[0]

    def as_dict(self) -> dict:
        """Canonical JSON form (only the active kind's knobs)."""
        if self.kind == "fixed":
            return {"kind": self.kind, "value": self.value}
        out: dict = {"kind": self.kind, "values": list(self.values)}
        if self.weights is not None:
            out["weights"] = list(self.weights)
        return out

    @classmethod
    def parse(cls, data: Mapping) -> "KDistribution":
        """Validate a spec's ``k`` mapping (QueryError on violation)."""
        _require(isinstance(data, Mapping), f"k must be a mapping, got {data!r}")
        kind = data.get("kind")
        _require(
            kind in K_KINDS,
            f"bad k distribution kind {kind!r}; "
            f"choose one of: {', '.join(K_KINDS)}",
        )
        if kind == "fixed":
            _check_keys(data, ("kind", "value"), "k")
            value = _int_field(data.get("value", 8), "k.value")
            _require(value >= 1, f"k.value must be >= 1, got {value}")
            return cls(kind=kind, value=value)
        _check_keys(data, ("kind", "values", "weights"), "k")
        values = data.get("values")
        _require(
            isinstance(values, Sequence) and not isinstance(values, (str, bytes))
            and len(values) > 0,
            "k.values must be a non-empty list",
        )
        values = tuple(_int_field(v, "k.values entry") for v in values)
        _require(all(v >= 1 for v in values), "k.values entries must be >= 1")
        weights = data.get("weights")
        if weights is not None:
            _require(
                isinstance(weights, Sequence) and len(weights) == len(values),
                "k.weights must match k.values in length",
            )
            weights = tuple(
                _finite_number(w, "k.weights entry") for w in weights
            )
            _require(all(w > 0 for w in weights), "k.weights must be > 0")
        return cls(kind=kind, values=values, weights=weights)


@dataclass(frozen=True)
class SLOPolicy:
    """Declared service-level bounds the gate enforces after a replay.

    ``p99_ms``/``min_qps`` are absolute floors from the spec;
    ``regression_factor`` additionally gates against the pinned
    baseline entry with the same spec (p99 may not grow beyond the
    factor, achieved QPS may not shrink below ``baseline / factor``).
    """

    p99_ms: float | None = None
    min_qps: float | None = None
    max_error_rate: float = 0.0
    regression_factor: float | None = None

    def as_dict(self) -> dict:
        """Canonical JSON form (only the declared bounds)."""
        out: dict = {"max_error_rate": self.max_error_rate}
        if self.p99_ms is not None:
            out["p99_ms"] = self.p99_ms
        if self.min_qps is not None:
            out["min_qps"] = self.min_qps
        if self.regression_factor is not None:
            out["regression_factor"] = self.regression_factor
        return out

    @classmethod
    def parse(cls, data: Mapping) -> "SLOPolicy":
        """Validate a spec's ``slo`` mapping (QueryError on violation)."""
        _require(isinstance(data, Mapping), f"slo must be a mapping, got {data!r}")
        _check_keys(
            data,
            ("p99_ms", "min_qps", "max_error_rate", "regression_factor"),
            "slo",
        )
        p99 = data.get("p99_ms")
        if p99 is not None:
            p99 = _finite_number(p99, "slo.p99_ms")
            _require(p99 > 0.0, f"slo.p99_ms must be > 0, got {p99}")
        min_qps = data.get("min_qps")
        if min_qps is not None:
            min_qps = _finite_number(min_qps, "slo.min_qps")
            _require(min_qps > 0.0, f"slo.min_qps must be > 0, got {min_qps}")
        rate = _finite_number(data.get("max_error_rate", 0.0), "slo.max_error_rate")
        _require(
            0.0 <= rate <= 1.0, f"slo.max_error_rate must be in [0, 1], got {rate}"
        )
        factor = data.get("regression_factor")
        if factor is not None:
            factor = _finite_number(factor, "slo.regression_factor")
            _require(
                factor >= 1.0,
                f"slo.regression_factor must be >= 1, got {factor}",
            )
        return cls(
            p99_ms=p99, min_qps=min_qps, max_error_rate=rate,
            regression_factor=factor,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """One validated, frozen load-test workload.

    The :meth:`as_dict` form is the entry's **protocol key**: two
    load-test entries are comparable (baseline vs candidate) exactly
    when their spec dicts are equal, the same matching rule
    ``benchmarks/regression.py`` uses for its pinned workloads.
    """

    name: str
    dataset: str
    categories: tuple[str, ...]
    target_qps: float
    workers: int = 1
    duration_s: float | None = None
    queries: int | None = None
    seed: int = 0
    skew: CategorySkew = field(default_factory=CategorySkew)
    k: KDistribution = field(default_factory=KDistribution)
    algorithm: str = "iter-bound-spti"
    kernel: str = "dict"
    landmarks: int = 8
    alpha: float = 1.1
    slo: SLOPolicy = field(default_factory=SLOPolicy)

    def as_dict(self) -> dict:
        """Canonical JSON-ready form (the protocol key; sorted keys)."""
        out: dict = {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "dataset": self.dataset,
            "categories": list(self.categories),
            "target_qps": self.target_qps,
            "workers": self.workers,
            "seed": self.seed,
            "skew": self.skew.as_dict(),
            "k": self.k.as_dict(),
            "algorithm": self.algorithm,
            "kernel": self.kernel,
            "landmarks": self.landmarks,
            "alpha": self.alpha,
            "slo": self.slo.as_dict(),
        }
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.queries is not None:
            out["queries"] = self.queries
        return out


_SPEC_FIELDS = (
    "schema_version", "name", "dataset", "categories", "target_qps",
    "workers", "duration_s", "queries", "seed", "skew", "k", "algorithm",
    "kernel", "landmarks", "alpha", "slo",
)


def parse_spec(data: Mapping) -> WorkloadSpec:
    """Validate a mapping into a frozen :class:`WorkloadSpec`.

    Every constraint violation raises a
    :class:`~repro.exceptions.QueryError` naming the field — bad skew
    names, zero/negative QPS, negative durations, unknown keys, and
    unknown datasets/algorithms/kernels all fail here, before any
    dataset is built or worker forked.
    """
    from repro.core.kpj import ALGORITHMS
    from repro.datasets.registry import available_datasets
    from repro.pathing.kernels import KERNELS

    _require(isinstance(data, Mapping), "workload spec must be a mapping")
    _check_keys(data, _SPEC_FIELDS, "workload spec")
    version = data.get("schema_version", SPEC_SCHEMA_VERSION)
    _require(
        version == SPEC_SCHEMA_VERSION,
        f"unsupported spec schema_version {version!r} "
        f"(this build speaks {SPEC_SCHEMA_VERSION})",
    )
    name = data.get("name")
    _require(
        isinstance(name, str) and name.strip(), "spec needs a non-empty name"
    )
    dataset = data.get("dataset")
    _require(
        isinstance(dataset, str) and dataset in available_datasets(),
        f"unknown dataset {dataset!r}; "
        f"choose one of: {', '.join(available_datasets())}",
    )
    categories = data.get("categories")
    _require(
        isinstance(categories, Sequence)
        and not isinstance(categories, (str, bytes))
        and len(categories) > 0
        and all(isinstance(c, str) and c for c in categories),
        "categories must be a non-empty list of category names",
    )
    _require(
        len(set(categories)) == len(categories),
        "categories must not contain duplicates",
    )
    target_qps = _finite_number(data.get("target_qps"), "target_qps")
    _require(target_qps > 0.0, f"target_qps must be > 0, got {target_qps}")
    workers = _int_field(data.get("workers", 1), "workers")
    _require(workers >= 1, f"workers must be >= 1, got {workers}")
    duration_s = data.get("duration_s")
    queries = data.get("queries")
    _require(
        (duration_s is None) != (queries is None),
        "spec needs exactly one of duration_s or queries",
    )
    if duration_s is not None:
        duration_s = _finite_number(duration_s, "duration_s")
        _require(duration_s > 0.0, f"duration_s must be > 0, got {duration_s}")
    if queries is not None:
        queries = _int_field(queries, "queries")
        _require(queries >= 1, f"queries must be >= 1, got {queries}")
    seed = _int_field(data.get("seed", 0), "seed")
    _require(seed >= 0, f"seed must be >= 0, got {seed}")
    skew = CategorySkew.parse(data.get("skew", {"kind": "uniform"}),
                              len(categories))
    k = KDistribution.parse(data.get("k", {"kind": "fixed", "value": 8}))
    algorithm = data.get("algorithm", "iter-bound-spti")
    _require(
        algorithm in ALGORITHMS,
        f"unknown algorithm {algorithm!r}; "
        f"choose one of: {', '.join(sorted(ALGORITHMS))}",
    )
    kernel = data.get("kernel", "dict")
    _require(
        kernel in KERNELS,
        f"unknown kernel {kernel!r}; choose one of: {', '.join(KERNELS)}",
    )
    landmarks = _int_field(data.get("landmarks", 8), "landmarks")
    _require(landmarks >= 0, f"landmarks must be >= 0, got {landmarks}")
    alpha = _finite_number(data.get("alpha", 1.1), "alpha")
    _require(alpha >= 1.0, f"alpha must be >= 1, got {alpha}")
    slo = SLOPolicy.parse(data.get("slo", {}))
    return WorkloadSpec(
        name=name.strip(),
        dataset=dataset,
        categories=tuple(categories),
        target_qps=target_qps,
        workers=workers,
        duration_s=duration_s,
        queries=queries,
        seed=seed,
        skew=skew,
        k=k,
        algorithm=algorithm,
        kernel=kernel,
        landmarks=landmarks,
        alpha=alpha,
        slo=slo,
    )


def load_spec(path: str) -> WorkloadSpec:
    """Read and validate a workload spec file (``.json`` or ``.toml``)."""
    try:
        if str(path).endswith(".toml"):
            import tomllib

            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        else:
            with open(path) as fh:
                data = json.load(fh)
    except OSError as exc:
        raise QueryError(f"cannot read workload spec {path!r}: {exc}") from None
    except ValueError as exc:  # JSONDecodeError / TOMLDecodeError
        raise QueryError(f"malformed workload spec {path!r}: {exc}") from None
    return parse_spec(data)


@dataclass(frozen=True)
class Arrival:
    """One scheduled query: when it arrives and what it asks."""

    index: int
    offset_s: float
    source: int
    category: str
    k: int

    def as_dict(self) -> dict:
        """JSON-ready form; the unit :func:`schedule_digest` hashes."""
        return {
            "index": self.index,
            "offset_s": self.offset_s,
            "source": self.source,
            "category": self.category,
            "k": self.k,
        }


def generate_schedule(spec: WorkloadSpec, n_nodes: int) -> list[Arrival]:
    """Expand ``spec`` into its deterministic open-loop arrival schedule.

    One ``random.Random(spec.seed)`` drives every draw in a fixed
    order per arrival — inter-arrival gap (exponential at
    ``target_qps``, i.e. Poisson arrivals), source (uniform over
    ``n_nodes``), category (per the skew's weights), ``k`` (per the
    distribution) — so the same spec against the same dataset yields a
    byte-identical schedule (:func:`schedule_digest`), and a different
    seed yields a different one.  Changing the draw order is a
    schema-version bump.
    """
    _require(n_nodes >= 1, f"schedule needs n_nodes >= 1, got {n_nodes}")
    rng = random.Random(spec.seed)
    weights = list(spec.skew.weights(len(spec.categories)))
    arrivals: list[Arrival] = []
    offset = 0.0
    while True:
        offset += rng.expovariate(spec.target_qps)
        if spec.duration_s is not None and offset > spec.duration_s:
            break
        if spec.queries is not None and len(arrivals) >= spec.queries:
            break
        source = rng.randrange(n_nodes)
        category = rng.choices(spec.categories, weights=weights)[0]
        k = spec.k.draw(rng)
        arrivals.append(
            Arrival(
                index=len(arrivals), offset_s=offset, source=source,
                category=category, k=k,
            )
        )
    return arrivals


def schedule_digest(arrivals: Sequence[Arrival]) -> str:
    """SHA-256 over the canonical JSON of a schedule.

    The replay determinism proof: two runs of the same spec must
    produce the same digest, and the load-test entry records it so a
    baseline comparison is known to have replayed the same arrivals.
    """
    blob = json.dumps(
        [a.as_dict() for a in arrivals], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()
