"""Command-line interface.

Subcommands::

    kpj query    --dataset CAL --source 12 --category Lake --k 10
    kpj batch    --dataset CAL --category Lake --sources 1,2,3 --workers 4
    kpj datasets
    kpj bench    --figure fig7 [--queries 3]
    kpj metrics  --workload workload.json [--trace-out traces/]
    kpj trace    --dataset CAL --source 12 --category Lake --out t.json
    kpj report   [--trajectory benchmarks/results/BENCH_trajectory.json]
    kpj report   --loadtest [benchmarks/results/BENCH_loadtest.json]
    kpj loadtest --spec benchmarks/specs/loadtest_smoke.json [--out F]
    kpj serve    --dataset CAL --workers 4 --port 8321 [--prewarm Lake]
    kpj fuzz     --seed 0 --cases 1000 [--shrink] [--self-check]

``query`` answers one KPJ query on a named dataset and prints the
paths; ``batch`` answers a whole workload (optionally across a worker
pool) and reports throughput; ``datasets`` lists the registry
(Table-1 style); ``bench`` reproduces one figure and prints its
table; ``metrics`` replays a workload file and emits the aggregate
registry as Prometheus text exposition.  ``--kernel flat`` switches
any query-answering subcommand to the CSR flat-array search
substrate, ``--stats`` prints the instrumentation counters (search
work, kernel dispatches, prepared-cache hits/misses) next to the
answers, and ``--metrics json|text`` attaches a
:class:`~repro.obs.metrics.MetricsRegistry` and emits the structured
run report (phase wall times, counters, gauges, and — for batches —
p50/p95/p99 query latency).

Tracing surfaces (see DESIGN.md §3d): ``trace`` answers one query
with a :class:`~repro.obs.tracing.SpanTracer` attached and writes the
span timeline as Chrome trace-event JSON (load in ``chrome://tracing``
or Perfetto); ``query --trace`` prints the span tree and the
per-depth :class:`~repro.obs.subspace_report.SubspaceTreeReport`
inline; ``metrics --workload W --trace-out DIR`` additionally writes
one Chrome trace file per query of the workload; ``explain --tree``
prints the same subspace-tree reconstruction from the ``SearchTrace``
narration.

Work-attribution surfaces (DESIGN.md §3g): ``--log FILE`` on
``query``/``batch`` appends one JSON event per query (stable query id,
latency, non-zero work counters) and ``--slow-ms`` additionally dumps
any threshold-crossing query's full trace + metrics to a file next to
the log; ``--profile FILE`` wraps the run in :mod:`cProfile` and
writes pstats data; ``--memory`` starts tracemalloc and records
per-phase allocation attribution plus process/pool byte gauges;
``trace --folded FILE`` writes the span timeline in folded-stack
flamegraph format; ``report`` renders the committed perf trajectory
(``benchmarks/results/BENCH_trajectory.json``) — latency history plus
work-counter deltas — as markdown.

Load testing (DESIGN.md §3h): ``loadtest`` validates a declarative
JSON/TOML workload spec (:mod:`repro.bench.workload`), expands it
into a seeded deterministic open-loop arrival schedule, replays it
against a serving tier — the forked pool (default), the resident
service (``--target service``), or a running ``kpj serve`` endpoint
(``--url``) — and emits one schema-versioned ``BENCH_loadtest.json``
entry — p50/p95/p99/p99.9 tail latency split into queue wait vs
service time, achieved-vs-target QPS, occupancy, error counts,
per-phase timers and work counters — then evaluates the spec's SLO
gate (absolute p99/throughput floors plus a regression bound against
the pinned baseline entry for the same target), exiting non-zero on
any violation.  ``report --loadtest`` renders that trajectory as
markdown.

Serving (DESIGN.md §3i): ``serve`` runs the persistent query service
— resident worker processes spawned once over shared-memory CSR
segments, warm :class:`~repro.core.kpj.PreparedCategory` LRUs, an
asyncio front-end with admission control, per-query deadlines, and
prepare coalescing — behind a dependency-free HTTP surface
(``POST /query``, ``GET /healthz``, ``GET /metrics`` Prometheus
exposition, ``GET /status``).

``fuzz`` runs the differential fuzzing harness (:mod:`repro.fuzz`):
seeded random instances cross-checked over every registry algorithm ×
kernel × cached/uncached × sequential/batch against the brute-force
and Yen oracles (small cases) or metamorphic invariants (large
cases).  Failures are shrunk and written as replayable repro files;
``--replay FILE`` re-runs one, and ``--self-check`` plants known
mutations to prove the harness catches each bug class.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench import experiments
from repro.bench.reporting import format_figure
from repro.core.kpj import ALGORITHMS, DEFAULT_ALGORITHM, KPJSolver
from repro.datasets.registry import available_datasets, road_network
from repro.pathing.kernels import KERNELS

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig6a": experiments.fig6a,
    "fig6b": experiments.fig6b,
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "fig12a": experiments.fig12a,
    "fig12b": experiments.fig12b,
    "fig13": experiments.fig13,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="kpj",
        description="Top-K Shortest Path Join (EDBT 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer one KPJ query")
    query.add_argument("--dataset", required=True, choices=available_datasets())
    query.add_argument("--source", type=int, required=True)
    query.add_argument("--category", required=True)
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--algorithm", default=DEFAULT_ALGORITHM, choices=sorted(ALGORITHMS)
    )
    query.add_argument("--landmarks", type=int, default=16)
    query.add_argument(
        "--kernel", default="dict", choices=KERNELS, help="search substrate"
    )
    query.add_argument(
        "--stats", action="store_true", help="print instrumentation counters"
    )
    query.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    query.add_argument(
        "--metrics",
        choices=("json", "text"),
        default=None,
        help="emit the structured metrics report (phase timers etc.)",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="record spans and print the span tree + subspace report",
    )
    _add_obs_flags(query)

    batch = sub.add_parser(
        "batch", help="answer a query workload, optionally in parallel"
    )
    batch.add_argument("--dataset", required=True, choices=available_datasets())
    batch.add_argument("--category", required=True)
    src_group = batch.add_mutually_exclusive_group(required=True)
    src_group.add_argument(
        "--sources", help="comma-separated source node ids"
    )
    src_group.add_argument(
        "--random-sources",
        type=int,
        metavar="N",
        help="sample N random source nodes instead of listing them",
    )
    batch.add_argument("--seed", type=int, default=0, help="sampling seed")
    batch.add_argument("--k", type=int, default=10)
    batch.add_argument(
        "--algorithm", default=DEFAULT_ALGORITHM, choices=sorted(ALGORITHMS)
    )
    batch.add_argument("--landmarks", type=int, default=16)
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = sequential)"
    )
    batch.add_argument(
        "--kernel", default="dict", choices=KERNELS, help="search substrate"
    )
    batch.add_argument(
        "--stats", action="store_true", help="print aggregate counters"
    )
    batch.add_argument(
        "--json", action="store_true", help="emit all results as JSON"
    )
    batch.add_argument(
        "--metrics",
        choices=("json", "text"),
        default=None,
        help="emit the aggregate metrics report with latency percentiles",
    )
    _add_obs_flags(batch)

    sub.add_parser("datasets", help="list datasets (Table 1)")

    bench = sub.add_parser("bench", help="reproduce one figure")
    bench.add_argument("--figure", required=True, choices=sorted(_FIGURES))
    bench.add_argument("--queries", type=int, default=3)

    compare = sub.add_parser(
        "compare", help="run every algorithm on one query and verify agreement"
    )
    compare.add_argument("--dataset", required=True, choices=available_datasets())
    compare.add_argument("--source", type=int, required=True)
    compare.add_argument("--category", required=True)
    compare.add_argument("--k", type=int, default=10)
    compare.add_argument("--landmarks", type=int, default=16)

    explain = sub.add_parser(
        "explain", help="narrate the iteratively bounding search for one query"
    )
    explain.add_argument("--dataset", required=True, choices=available_datasets())
    explain.add_argument("--source", type=int, required=True)
    explain.add_argument("--category", required=True)
    explain.add_argument("--k", type=int, default=5)
    explain.add_argument("--landmarks", type=int, default=16)
    explain.add_argument("--limit", type=int, default=40, help="max events shown")
    explain.add_argument(
        "--kernel", default="dict", choices=KERNELS, help="search substrate"
    )
    explain.add_argument(
        "--algorithm",
        default="iter-bound",
        choices=("iter-bound", "iter-bound-spti"),
        help="which iteratively bounding variant to narrate",
    )
    explain.add_argument(
        "--tree",
        action="store_true",
        help="print the per-depth subspace-tree report",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: every algorithm × kernel vs the oracles",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--cases", type=int, default=200, help="number of generated cases"
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop generating new cases after this much wall clock",
    )
    fuzz.add_argument(
        "--kernel",
        choices=KERNELS,
        action="append",
        dest="kernels",
        help="substrate to cross-check (repeatable; default: all)",
    )
    fuzz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="minimise failing cases before reporting (default: on)",
    )
    fuzz.add_argument(
        "--corpus-dir",
        default="fuzz/corpus",
        help="where failure repro files are written (default: fuzz/corpus)",
    )
    fuzz.add_argument(
        "--self-check",
        action="store_true",
        help="plant each known mutation and assert the harness catches it",
    )
    fuzz.add_argument(
        "--replay",
        metavar="FILE",
        action="append",
        help="re-run a repro/corpus file instead of fuzzing (repeatable)",
    )

    metrics = sub.add_parser(
        "metrics", help="replay a workload file and print Prometheus exposition"
    )
    metrics.add_argument(
        "--workload",
        required=True,
        help="JSON file: {dataset, landmarks?, kernel?, workers?, queries: [...]}",
    )
    metrics.add_argument(
        "--prefix", default="kpj", help="metric name prefix (default: kpj)"
    )
    metrics.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="also write one Chrome trace-event file per query into DIR",
    )

    trace = sub.add_parser(
        "trace", help="trace one query and write Chrome trace-event JSON"
    )
    trace.add_argument("--dataset", required=True, choices=available_datasets())
    trace.add_argument("--source", type=int, required=True)
    trace.add_argument("--category", required=True)
    trace.add_argument("--k", type=int, default=10)
    trace.add_argument(
        "--algorithm", default=DEFAULT_ALGORITHM, choices=sorted(ALGORITHMS)
    )
    trace.add_argument("--landmarks", type=int, default=16)
    trace.add_argument(
        "--kernel", default="dict", choices=KERNELS, help="search substrate"
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace-event output file (default: trace.json)",
    )
    trace.add_argument(
        "--tree",
        action="store_true",
        help="also print the span tree and subspace report",
    )
    trace.add_argument(
        "--folded",
        default=None,
        metavar="FILE",
        help="also write the spans in folded-stack flamegraph format",
    )

    report = sub.add_parser(
        "report", help="render the perf trajectory + work deltas as markdown"
    )
    report.add_argument(
        "--trajectory",
        default="benchmarks/results/BENCH_trajectory.json",
        help="trajectory file (default: benchmarks/results/BENCH_trajectory.json)",
    )
    report.add_argument(
        "--loadtest",
        nargs="?",
        const="benchmarks/results/BENCH_loadtest.json",
        default=None,
        metavar="FILE",
        help="render the load-test trajectory instead "
        "(default file: benchmarks/results/BENCH_loadtest.json)",
    )
    report.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the markdown here instead of stdout",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="replay a declarative open-loop workload spec against a "
        "serving tier",
    )
    loadtest.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="workload spec (.json or .toml; see benchmarks/specs/)",
    )
    loadtest.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="append the entry to this BENCH_loadtest.json trajectory",
    )
    loadtest.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="trajectory holding the pinned baseline entry "
        "(default: the --out file before appending)",
    )
    loadtest.add_argument(
        "--json", action="store_true", help="emit the entry as JSON on stdout"
    )
    loadtest.add_argument(
        "--gate",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate the spec's SLO gate and exit non-zero on violation "
        "(default: on)",
    )
    loadtest.add_argument(
        "--target",
        choices=("pool", "service"),
        default="pool",
        help="serving tier: the fork-per-batch pool (default) or the "
        "resident-worker service; entries and baselines match per target",
    )
    loadtest.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="replay over HTTP against a running `kpj serve` endpoint "
        "(implies --target service)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the persistent query service (resident workers over "
        "shared-memory CSR, HTTP front-end)",
    )
    serve.add_argument("--dataset", required=True, choices=available_datasets())
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--workers", type=int, default=2, help="resident worker processes"
    )
    serve.add_argument(
        "--kernel", default="dict", choices=KERNELS, help="search substrate"
    )
    serve.add_argument("--landmarks", type=int, default=16)
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound: submissions beyond this many in-flight "
        "queries are shed with HTTP 429",
    )
    serve.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="default per-query deadline (cooperative, checked at phase "
        "boundaries); requests may override via their timeout_s field",
    )
    serve.add_argument(
        "--prewarm",
        default=None,
        metavar="CATS",
        help="comma-separated categories whose prepared state is built "
        "at startup (one-time warmup phase) before the workers fork",
    )
    serve.add_argument(
        "--prepared-cache",
        type=int,
        default=32,
        help="per-worker PreparedCategory LRU bound",
    )
    return parser


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    """The work-attribution flags shared by ``query`` and ``batch``."""
    sub_parser.add_argument(
        "--log",
        default=None,
        metavar="FILE",
        help="append one JSON event per query to FILE (structured query log)",
    )
    sub_parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="with --log: dump trace+metrics of queries at/over MS "
        "next to the log file",
    )
    sub_parser.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help="run under cProfile and write pstats data to FILE",
    )
    sub_parser.add_argument(
        "--memory",
        action="store_true",
        help="record tracemalloc phase attribution and memory gauges",
    )


def _print_stats(stats) -> None:
    """Render instrumentation counters: nonzero fields only, aligned."""
    fields = stats.nonzero()
    print("stats:")
    if not fields:
        print("  (all counters zero)")
        return
    width = max(len(name) for name in fields)
    for name, value in fields.items():
        print(f"  {name:<{width}}  {value}")


def _print_trace_report(trace: dict) -> None:
    """The span tree and subspace report shared by query/trace."""
    from repro.obs.subspace_report import SubspaceTreeReport
    from repro.obs.tracing import render_tree

    print("spans:")
    print(render_tree(trace))
    report = SubspaceTreeReport.from_spans(trace)
    if report.rows:
        print(report.render())


def _obs_wiring(args: argparse.Namespace):
    """Query logger + memory telemetry from the shared obs flags.

    Returns ``(query_log, memory)`` (either may be ``None``); raises
    :class:`ValueError` on an invalid flag combination — callers print
    the message and exit 2.
    """
    if args.slow_ms is not None and args.log is None:
        raise ValueError("--slow-ms requires --log")
    qlog = None
    if args.log:
        from repro.obs.log import QueryLogger

        qlog = QueryLogger(path=args.log, slow_ms=args.slow_ms)
    mem = None
    if args.memory:
        from repro.obs.memory import MemoryTelemetry

        mem = MemoryTelemetry().start()
    return qlog, mem


def _profiled(path: str, fn, *args, **kwargs):
    """Run ``fn`` under :mod:`cProfile`, writing pstats data to ``path``."""
    import cProfile

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn, *args, **kwargs)
    finally:
        profiler.dump_stats(path)
        print(
            f"# profile -> {path} (inspect: python -m pstats {path})",
            file=sys.stderr,
        )


def _print_memory(reg) -> None:
    """Byte accounting for ``--memory`` runs without a full metrics report.

    Gauges carry the peaks (RSS, tracemalloc, pool sizes); counters
    carry the per-phase net allocations (``mem_<phase>_alloc_bytes``).
    """
    rows = {
        name: value
        for source in (reg.gauges, reg.counters)
        for name, value in source.items()
        if name.endswith("_bytes")
    }
    print("memory:")
    if not rows:
        print("  (no memory gauges recorded)")
        return
    width = max(len(name) for name in rows)
    for name, value in sorted(rows.items()):
        print(f"  {name:<{width}}  {int(value)}")


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = road_network(args.dataset)
    if args.source < 0 or args.source >= dataset.n:
        print(f"source must be in [0, {dataset.n})", file=sys.stderr)
        return 2
    try:
        qlog, mem = _obs_wiring(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    reg = None
    if args.metrics or args.memory or args.slow_ms is not None:
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
    tracer = None
    if args.trace or args.slow_ms is not None:
        # Slow dumps embed the trace, so slow-logging implies tracing.
        from repro.obs.tracing import SpanTracer

        tracer = SpanTracer()
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=args.landmarks,
        kernel=args.kernel,
        metrics=reg,
        tracer=tracer,
        query_log=qlog,
        memory=mem,
    )
    try:
        if args.profile:
            result = _profiled(
                args.profile,
                solver.top_k,
                args.source,
                category=args.category,
                k=args.k,
                algorithm=args.algorithm,
            )
        else:
            result = solver.top_k(
                args.source,
                category=args.category,
                k=args.k,
                algorithm=args.algorithm,
            )
    finally:
        if mem is not None:
            mem.stop()
        if qlog is not None:
            qlog.close()
    if args.metrics == "json":
        import json

        print(
            json.dumps(
                {"result": result.to_dict(), "metrics": reg.report()}, indent=2
            )
        )
        return 0
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(
        f"top-{args.k} paths from node {args.source} to category "
        f"{args.category!r} on {args.dataset} ({args.algorithm}, "
        f"{args.kernel} kernel):"
    )
    for rank, path in enumerate(result.paths, start=1):
        nodes = " -> ".join(str(v) for v in path.nodes)
        print(f"{rank:3d}. length {path.length:10.4f}  {nodes}")
    if not result.paths:
        print("  (no path found)")
    print(f"elapsed {result.elapsed_ms:.1f}ms")
    if args.stats:
        _print_stats(result.stats)
    if args.metrics == "text":
        print(reg.render_text())
    if args.memory and args.metrics is None:
        _print_memory(reg)
    if args.trace and result.trace is not None:
        _print_trace_report(result.trace)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.tracing import SpanTracer, chrome_trace

    dataset = road_network(args.dataset)
    if args.source < 0 or args.source >= dataset.n:
        print(f"source must be in [0, {dataset.n})", file=sys.stderr)
        return 2
    tracer = SpanTracer()
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=args.landmarks,
        kernel=args.kernel,
        tracer=tracer,
    )
    result = solver.top_k(
        args.source, category=args.category, k=args.k, algorithm=args.algorithm
    )
    doc = chrome_trace(result.trace)
    try:
        with open(args.out, "w") as fh:
            json.dump(doc, fh)
    except OSError as exc:
        print(f"cannot write {args.out!r}: {exc}", file=sys.stderr)
        return 2
    print(
        f"{result.k_found} paths in {result.elapsed_ms:.1f}ms "
        f"({args.algorithm}, {args.kernel} kernel); "
        f"{len(doc['traceEvents'])} spans -> {args.out}"
    )
    if args.folded:
        from repro.obs.tracing import folded_stacks

        try:
            with open(args.folded, "w") as fh:
                fh.write(folded_stacks(result.trace) + "\n")
        except OSError as exc:
            print(f"cannot write {args.folded!r}: {exc}", file=sys.stderr)
            return 2
        print(f"folded stacks -> {args.folded}")
    if args.tree:
        _print_trace_report(result.trace)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import time

    from repro.core.stats import SearchStats
    from repro.server.pool import BatchQuery

    dataset = road_network(args.dataset)
    if args.sources is not None:
        try:
            sources = [int(s) for s in args.sources.split(",") if s.strip()]
        except ValueError:
            print("--sources must be comma-separated integers", file=sys.stderr)
            return 2
    else:
        import random

        rng = random.Random(args.seed)
        sources = [rng.randrange(dataset.n) for _ in range(args.random_sources)]
    if not sources:
        print("batch needs at least one source", file=sys.stderr)
        return 2
    for source in sources:
        if source < 0 or source >= dataset.n:
            print(f"source {source} must be in [0, {dataset.n})", file=sys.stderr)
            return 2
    try:
        qlog, mem = _obs_wiring(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    reg = None
    if args.metrics or args.memory or args.slow_ms is not None:
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=args.landmarks,
        kernel=args.kernel,
        metrics=reg,
        query_log=qlog,
        memory=mem,
    )
    if reg is not None:
        # The registry captured landmark_build during construction;
        # detach it so run_batch installs its own per-batch registry
        # (the aggregate arrives via the ``metrics=`` merge — leaving
        # it attached would double-count sequential batches).  The
        # query logger and memory telemetry stay attached: pool workers
        # inherit them through the fork, each appending whole lines to
        # the same log file (O_APPEND keeps lines intact).
        solver.metrics = None
    queries = [
        BatchQuery(
            source=source,
            category=args.category,
            k=args.k,
            algorithm=args.algorithm,
        )
        for source in sources
    ]
    total = SearchStats() if args.stats else None
    start = time.perf_counter()
    try:
        if args.profile:
            results = _profiled(
                args.profile,
                solver.solve_batch,
                queries,
                workers=args.workers,
                stats=total,
                metrics=reg,
            )
        else:
            results = solver.solve_batch(
                queries, workers=args.workers, stats=total, metrics=reg
            )
    finally:
        if mem is not None:
            mem.stop()
        if qlog is not None:
            qlog.close()
    elapsed = time.perf_counter() - start
    if args.metrics == "json":
        import json

        print(json.dumps(_batch_report(args, results, elapsed, reg), indent=2))
        return 0
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "dataset": args.dataset,
                    "category": args.category,
                    "workers": args.workers,
                    "kernel": args.kernel,
                    "elapsed_s": elapsed,
                    "queries_per_s": len(results) / elapsed if elapsed else 0.0,
                    **({"stats": total.as_dict()} if total is not None else {}),
                    "results": [
                        {"source": q.source, **r.to_dict()}
                        for q, r in zip(queries, results)
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{len(results)} queries to category {args.category!r} on "
        f"{args.dataset} ({args.algorithm}, {args.kernel} kernel, "
        f"workers={args.workers}):"
    )
    for query, result in zip(queries, results):
        best = f"{result.paths[0].length:.4f}" if result.paths else "-"
        print(
            f"  source {query.source:>6}: {result.k_found:>3} paths, "
            f"best {best}"
        )
    throughput = len(results) / elapsed if elapsed else 0.0
    print(f"elapsed {elapsed * 1000.0:.1f}ms  ({throughput:.1f} queries/s)")
    if total is not None:
        _print_stats(total)
    if args.metrics == "text":
        print(reg.render_text())
    if args.memory and args.metrics is None:
        _print_memory(reg)
    return 0


def _batch_report(args, results, elapsed: float, reg) -> dict:
    """The ``batch --metrics json`` document (one pipeable JSON object)."""
    latency = reg.histograms.get("query_latency_ms")

    def _q(q: float):
        if latency is None or latency.total == 0:
            return None
        return latency.quantile(q)

    return {
        "dataset": args.dataset,
        "category": args.category,
        "algorithm": args.algorithm,
        "kernel": args.kernel,
        "workers": args.workers,
        "queries": len(results),
        "elapsed_s": elapsed,
        "queries_per_s": len(results) / elapsed if elapsed else 0.0,
        "latency_ms": {"p50": _q(0.50), "p95": _q(0.95), "p99": _q(0.99)},
        "metrics": reg.report(),
    }


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(f"{'dataset':<8} {'nodes':>9} {'edges':>9} {'paper n':>10} {'paper m':>11}")
    for row in experiments.table1():
        print(
            f"{row['dataset']:<8} {row['nodes']:>9} {row['edges']:>9} "
            f"{row['paper_nodes']:>10} {row['paper_edges']:>11}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import inspect

    run = _FIGURES[args.figure]
    kwargs = {}
    if "queries_per_point" in inspect.signature(run).parameters:
        kwargs["queries_per_point"] = args.queries
    figure = run(**kwargs)
    print(format_figure(figure))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = road_network(args.dataset)
    if args.source < 0 or args.source >= dataset.n:
        print(f"source must be in [0, {dataset.n})", file=sys.stderr)
        return 2
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=args.landmarks)
    header = f"{'algorithm':<22} {'time':>10} {'SP comps':>9} {'settled':>9}"
    print(header)
    print("-" * len(header))
    reference: tuple[float, ...] | None = None
    mismatches = 0
    for algorithm in sorted(ALGORITHMS):
        result = solver.top_k(
            args.source, category=args.category, k=args.k, algorithm=algorithm
        )
        elapsed = result.elapsed_ms
        lengths = tuple(round(x, 9) for x in result.lengths)
        if reference is None:
            reference = lengths
        agree = lengths == reference
        if not agree:
            mismatches += 1
        print(
            f"{algorithm:<22} {elapsed:8.1f}ms "
            f"{result.stats.shortest_path_computations:>9} "
            f"{result.stats.nodes_settled:>9}"
            f"{'' if agree else '  <-- MISMATCH'}"
        )
    if mismatches:
        print(f"{mismatches} algorithms disagree!", file=sys.stderr)
        return 1
    print(f"all algorithms agree on {len(reference or ())} path lengths")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.iter_bound import iter_bound
    from repro.core.spt_incremental import iter_bound_spti
    from repro.core.trace import SearchTrace
    from repro.graph.virtual import build_query_graph
    from repro.landmarks.index import ZERO_BOUNDS
    from repro.pathing.kernels import use_kernel

    dataset = road_network(args.dataset)
    if args.source < 0 or args.source >= dataset.n:
        print(f"source must be in [0, {dataset.n})", file=sys.stderr)
        return 2
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=args.landmarks,
        kernel=args.kernel,
    )
    destinations = dataset.categories.nodes_of(args.category)
    qg = build_query_graph(dataset.graph, (args.source,), destinations)
    lm = solver.landmark_index
    bounds = (
        lm.to_target_bounds(qg.destinations) if lm is not None else ZERO_BOUNDS
    )
    trace = SearchTrace()
    with use_kernel(args.kernel):
        if args.algorithm == "iter-bound-spti":
            source_bounds = (
                lm.lazy_source_bounds(qg.sources) if lm is not None else ZERO_BOUNDS
            )
            paths = iter_bound_spti(qg, args.k, bounds, source_bounds, trace=trace)
        else:
            paths = iter_bound(qg, args.k, bounds, trace=trace)
    print(
        f"{args.algorithm} ({args.kernel} kernel) on {args.dataset}: "
        f"node {args.source} -> category "
        f"{args.category!r} (|V_T|={len(destinations)}), k={args.k}\n"
    )
    print(trace.render(limit=args.limit))
    if args.tree:
        from repro.obs.subspace_report import SubspaceTreeReport

        print()
        print(SubspaceTreeReport.from_search_trace(trace).render())
    print(f"\nfound {len(paths)} paths; lengths: "
          + ", ".join(f"{p.length:.4g}" for p in paths))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.exceptions import QueryError
    from repro.fuzz import replay_file, run_fuzz, self_check

    kernels = tuple(args.kernels) if args.kernels else tuple(KERNELS)
    if args.replay:
        worst = 0
        for path in args.replay:
            try:
                failures = replay_file(path, kernels=kernels)
            except QueryError as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                return 2
            if failures:
                worst = 1
                print(f"{path}: {len(failures)} failure(s)")
                for message in failures:
                    print(f"  - {message}")
            else:
                print(f"{path}: ok")
        return worst
    if args.self_check:
        outcomes = self_check(seed=args.seed, kernels=kernels)
        width = max(len(name) for name in outcomes)
        all_good = True
        for name, good in sorted(outcomes.items()):
            verdict = "detected" if good else "MISSED"
            if name == "clean":
                verdict = "no false positives" if good else "FALSE POSITIVE"
            all_good &= good
            print(f"  {name:<{width}}  {verdict}")
        if not all_good:
            print("self-check FAILED: the harness is blind to a planted bug",
                  file=sys.stderr)
            return 1
        print(f"self-check ok: {len(outcomes) - 1} planted mutations "
              "detected, clean run stayed green")
        return 0
    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        time_budget=args.time_budget,
        kernels=kernels,
        shrink=args.shrink,
        corpus_dir=args.corpus_dir,
        progress=print,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.core.stats import SearchStats
    from repro.obs.metrics import MetricsRegistry

    try:
        with open(args.workload) as fh:
            spec = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read workload {args.workload!r}: {exc}", file=sys.stderr)
        return 2
    name = spec.get("dataset")
    if name not in available_datasets():
        known = ", ".join(available_datasets())
        print(f"workload dataset must be one of: {known}", file=sys.stderr)
        return 2
    queries = spec.get("queries")
    if not queries:
        print("workload has no queries", file=sys.stderr)
        return 2
    dataset = road_network(name)
    reg = MetricsRegistry()
    tracer = None
    if args.trace_out is not None:
        from repro.obs.tracing import SpanTracer

        tracer = SpanTracer()
    solver = KPJSolver(
        dataset.graph,
        dataset.categories,
        landmarks=spec.get("landmarks", 16),
        kernel=spec.get("kernel", "dict"),
        metrics=reg,  # captures landmark_build
    )
    # Detach: run_batch installs a per-batch registry and delivers the
    # aggregate through ``metrics=`` (avoids double-counting).
    solver.metrics = None
    stats = SearchStats()
    results = solver.solve_batch(
        queries,
        workers=int(spec.get("workers", 1)),
        stats=stats,
        metrics=reg,
        tracer=tracer,
    )
    reg.merge_stats(stats)
    if args.trace_out is not None:
        import os

        from repro.obs.tracing import chrome_trace

        try:
            os.makedirs(args.trace_out, exist_ok=True)
            written = 0
            for i, result in enumerate(results):
                if result.trace is None:
                    continue
                path = os.path.join(args.trace_out, f"query-{i:03d}.trace.json")
                with open(path, "w") as fh:
                    json.dump(chrome_trace(result.trace), fh)
                written += 1
        except OSError as exc:
            print(f"cannot write traces to {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"# wrote {written} trace files to {args.trace_out}",
              file=sys.stderr)
    sys.stdout.write(reg.render_prom(prefix=args.prefix))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.bench.trajectory import (
        render_loadtest_report,
        render_trajectory_report,
    )

    path = args.loadtest if args.loadtest is not None else args.trajectory
    kind = "loadtest trajectory" if args.loadtest is not None else "trajectory"
    if not os.path.exists(path):
        # A missing file is a report about nothing, not a crash: one
        # clean line and a non-zero exit the caller can branch on.
        print(f"no {kind} at {path!r} — nothing to report", file=sys.stderr)
        return 2
    try:
        text = open(path).read()
    except OSError as exc:
        print(f"cannot read {kind} {path!r}: {exc}", file=sys.stderr)
        return 2
    if not text.strip():
        print(f"{kind} {path!r} is empty — no entries to report")
        return 0
    try:
        trajectory = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"cannot read {kind} {path!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(trajectory, list):
        print(f"{kind} {path!r} is not a list of entries", file=sys.stderr)
        return 2
    if args.loadtest is not None:
        doc = render_loadtest_report(trajectory)
    else:
        doc = render_trajectory_report(trajectory)
    if args.out:
        try:
            with open(args.out, "w") as fh:
                fh.write(doc)
        except OSError as exc:
            print(f"cannot write {args.out!r}: {exc}", file=sys.stderr)
            return 2
        print(f"report -> {args.out}")
    else:
        print(doc, end="")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from repro.bench.loadtest import (
        baseline_for,
        evaluate_gate,
        load_entries,
        render_entry_summary,
        replay_workload,
    )
    from repro.bench.workload import load_spec
    from repro.exceptions import QueryError

    try:
        spec = load_spec(args.spec)
    except QueryError as exc:
        print(f"bad workload spec: {exc}", file=sys.stderr)
        return 2
    baseline_path = args.baseline if args.baseline is not None else args.out
    baseline = None
    trajectory: list = []
    try:
        if args.out is not None:
            trajectory = load_entries(args.out)
        if baseline_path is not None:
            pool = (
                trajectory
                if baseline_path == args.out
                else load_entries(baseline_path)
            )
            target = "service" if args.url else args.target
            baseline = baseline_for(pool, spec.as_dict(), target=target)
    except QueryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        entry = replay_workload(
            spec, progress=lambda msg: print(f"# {msg}", file=sys.stderr),
            target=args.target, url=args.url,
        )
    except QueryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.out is not None:
        trajectory.append(entry)
        try:
            with open(args.out, "w") as fh:
                json.dump(trajectory, fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write {args.out!r}: {exc}", file=sys.stderr)
            return 2
        print(f"# entry -> {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(entry, indent=2))
    else:
        print(render_entry_summary(entry, baseline))
    if not args.gate:
        return 0
    failures = evaluate_gate(entry, spec, baseline)
    if failures:
        print("SLO GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    against = " vs baseline" if baseline is not None else ""
    print(f"slo gate OK{against}", file=sys.stderr if args.json else sys.stdout)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.kpj import KPJSolver
    from repro.datasets.registry import road_network
    from repro.exceptions import QueryError
    from repro.server.http import run_server
    from repro.server.service import QueryService

    try:
        dataset = road_network(args.dataset)
        solver = KPJSolver(
            dataset.graph,
            dataset.categories,
            landmarks=args.landmarks,
            kernel=args.kernel,
            prepared_cache_size=args.prepared_cache,
        )
        prewarm = (
            tuple(c.strip() for c in args.prewarm.split(",") if c.strip())
            if args.prewarm
            else ()
        )
        service = QueryService(
            solver,
            workers=args.workers,
            max_pending=args.max_pending,
            default_timeout_s=args.timeout_s,
            prewarm=prewarm,
        )
    except QueryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"starting service: dataset {args.dataset}, {args.workers} "
        f"resident worker(s), {args.kernel} kernel, "
        f"{args.landmarks} landmarks",
        flush=True,
    )
    try:
        run_server(
            service,
            host=args.host,
            port=args.port,
            announce=lambda msg: print(msg, flush=True),
        )
    except QueryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print("service stopped (workers retired, shared memory unlinked)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
