"""The paper's contribution: best-first / iteratively bounding KPJ."""

from repro.core.best_first import best_first
from repro.core.gkpj import gkpj
from repro.core.iter_bound import iter_bound, iter_bound_search
from repro.core.kpj import ALGORITHMS, DEFAULT_ALGORITHM, KPJSolver, QueryContext
from repro.core.result import Path, QueryResult
from repro.core.spt_incremental import IncrementalSPT, iter_bound_spti
from repro.core.spt_partial import SPTPHeuristic, iter_bound_sptp
from repro.core.stats import SearchStats
from repro.core.subspace import Subspace, compute_lower_bound, divide

__all__ = [
    "best_first",
    "gkpj",
    "iter_bound",
    "iter_bound_search",
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "KPJSolver",
    "QueryContext",
    "Path",
    "QueryResult",
    "IncrementalSPT",
    "iter_bound_spti",
    "SPTPHeuristic",
    "iter_bound_sptp",
    "SearchStats",
    "Subspace",
    "compute_lower_bound",
    "divide",
]
