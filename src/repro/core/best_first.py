"""The BestFirst algorithm (Section 4, Algs. 2–3).

BestFirst replaces the deviation paradigm's eager candidate-path
computation with a priority queue of *subspaces* keyed by lower
bounds.  A subspace's shortest path is computed only when the
subspace reaches the top of the queue — i.e. only when its lower
bound is smaller than every other pending bound — so subspaces whose
bounds exceed the final ``k``-th length are never searched at all
(Lemma 4.1: the set of shortest-path computations is a subset of
DA's).

Each queue entry is ``<S, lb(S), P>`` where ``P`` is the subspace's
shortest path once computed; a subspace is popped at most twice
(once per state).
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Callable

from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.core.subspace import Subspace, compute_lower_bound, divide
from repro.graph.virtual import QueryGraph
from repro.pathing.astar import astar_path

__all__ = ["best_first"]

INF = float("inf")


def best_first(
    query_graph: QueryGraph,
    k: int,
    heuristic: Callable[[int], float],
    stats: SearchStats | None = None,
) -> list[Path]:
    """Top-``k`` shortest simple paths from source to virtual target.

    Parameters
    ----------
    query_graph:
        The ``G_Q`` transform of the query (see
        :func:`repro.graph.virtual.build_query_graph`).
    k:
        Number of paths to return.
    heuristic:
        Lower bound ``lb(v, V_T)`` used both in ``CompLB`` and as the
        A* heuristic of ``CompSP`` — a
        :class:`~repro.landmarks.index.TargetBounds` instance (Eq. 2)
        or :data:`~repro.landmarks.index.ZERO_BOUNDS`.
    stats:
        Optional instrumentation sink.

    Returns
    -------
    Paths *in ``G_Q`` coordinates* (ending at the virtual target),
    non-decreasing in length; the facade strips virtual nodes.
    """
    graph = query_graph.graph
    adjacency = graph.adjacency
    source, target = query_graph.source, query_graph.target
    stats = stats if stats is not None else SearchStats()

    tie = count()
    # Heap entries: (lower bound, tiebreak, subspace, path-or-None).
    queue: list[tuple[float, int, Subspace, tuple[int, ...] | None]] = []
    root = Subspace.entire(source)
    heappush(queue, (heuristic(source), next(tie), root, None))
    stats.subspaces_created += 1

    results: list[Path] = []
    edge_weight = graph.edge_weight
    while queue and len(results) < k:
        bound, _, subspace, path = heappop(queue)
        if path is not None:
            results.append(Path(length=bound, nodes=path))
            for child in divide(subspace, path, bound, edge_weight):
                stats.subspaces_created += 1
                stats.lower_bound_computations += 1
                child_bound = compute_lower_bound(adjacency, child, heuristic)
                if child_bound == INF:
                    stats.subspaces_pruned += 1
                    continue
                if child_bound < bound:
                    child_bound = bound  # children cannot beat the parent's path
                heappush(queue, (child_bound, next(tie), child, None))
            continue
        stats.shortest_path_computations += 1
        found = astar_path(
            graph,
            subspace.head,
            target,
            heuristic,
            blocked=subspace.blocked_set,
            banned_first_hops=subspace.banned,
            initial_distance=subspace.prefix_weight,
            stats=stats,
        )
        if found is None:
            stats.subspaces_pruned += 1
            continue
        tail, length = found
        full_path = subspace.prefix[:-1] + tail
        heappush(queue, (length, next(tie), subspace, full_path))
    stats.subspaces_pruned += sum(1 for entry in queue if entry[3] is None)
    return results
