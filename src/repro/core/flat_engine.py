"""The flat iterative-bounding engine: Algs. 4–8 on the CSR substrate.

The flat *leaf* kernels (:mod:`repro.pathing.flat`) already run each
individual ``TestLB`` over CSR arrays, but the dict drivers around
them re-resolve the CSR export per call, rebuild ``blocked`` sets from
prefix tuples on every re-test, and pay a Python call per relaxation
for the ``lb(v, goal)`` heuristic.  This module moves the *engine*
onto the flat substrate:

* :class:`FlatQueryContext` — the per-query bundle the fast path runs
  from: the search graph's CSR snapshot resolved **once**, the
  heuristic as a dense float array (``h[v]`` by index, no closure
  call), and a pooled generation-stamped node mask that each
  ``TestLB`` re-stamps from the subspace prefix in ``O(|prefix|)``;
* :class:`FlatIncrementalSPT` — Alg. 7 on pooled dist/parent/stamp
  arrays with a flat-adjacency settle loop; its distance vector *is*
  the reverse search's heuristic array (settled = exact ``ds``,
  unsettled = ``inf`` = "outside the tree, prune"), so growing the
  tree updates the heuristic in place;
* :func:`flat_spti_search` — the complete ``IterBound-SPT_I`` driver
  (Section 5.3) over those pieces, with the Alg. 8 one-hop bound
  vectorised over the settled-destination arrays.

Every path, length, and pruning decision is identical to the dict
engine: the flat structures relax the same edges in the same order
with the same floating-point sums, which the kernel-parity property
tests assert path-for-path.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

import numpy as np

from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.core.subspace import Subspace
from repro.graph.csr import CSRGraph, shared_csr
from repro.graph.virtual import QueryGraph
from repro.landmarks.index import ZeroBounds
from repro.pathing.flat import (
    acquire_inf_array,
    acquire_scratch,
    flat_bounded_astar_path,
    release_inf_array,
    release_scratch,
)
from repro.pathing.native import (
    NativeIncrementalSPT,
    native_batch_compsp,
    native_bounded_astar_path,
    use_array_engine,
)

__all__ = [
    "FlatQueryContext",
    "FlatIncrementalSPT",
    "flat_spti_search",
    "dense_heuristic",
]

INF = float("inf")

_EMPTY: frozenset[int] = frozenset()


def dense_heuristic(
    heuristic, size: int
) -> list[float] | Callable[[int], float] | None:
    """Resolve a heuristic into the cheapest flat-kernel form.

    * :class:`~repro.landmarks.index.ZeroBounds` / ``None`` → ``None``
      (the kernel's zero heuristic, ``estimate = g`` exactly);
    * anything exposing ``dense(size)`` — a
      :class:`~repro.landmarks.index.TargetBounds` or the ``SPT_P``
      overlay heuristic — → that dense list (padded with 0.0 for
      virtual ids) — indexed, never called;
    * anything else → returned unchanged and called per node (the
      fast path still avoids per-call CSR resolution and set
      rebuilds).

    The resolved form is value-identical to calling the original:
    ``dense[v] == heuristic(v)`` bit-for-bit.
    """
    if heuristic is None or isinstance(heuristic, ZeroBounds):
        return None
    densify = getattr(heuristic, "dense", None)
    if densify is not None:
        return densify(size)
    return heuristic


class FlatQueryContext:
    """Per-query flat substrate shared by every ``TestLB`` of a query.

    Construction resolves the CSR snapshot once (``graph`` may be a
    frozen :class:`~repro.graph.digraph.DiGraph`, a
    :class:`~repro.graph.digraph.ReversedView`, or an explicit
    :class:`~repro.graph.csr.CSRGraph` via ``csr=``) and densifies the
    heuristic.  :meth:`make_test_lb` returns the closure the
    iteratively bounding driver calls thousands of times per query;
    each call hands the subspace prefix straight to the kernel, which
    pre-stamps it into its pooled scratch — no per-test set build and
    no per-edge membership check.

    Call :meth:`close` when the query finishes (drivers do this in a
    ``finally``).

    ``kernel`` picks the leaf substrate the closures dispatch to:
    ``"flat"`` (default) or ``"native"`` — the latter routes each
    ``TestLB`` through the compiled kernel and unlocks
    :meth:`make_batch_test_lb`, the batched multi-source ``CompSP``
    hook of the iteratively bounding driver.
    """

    __slots__ = ("csr", "h", "kernel")

    def __init__(
        self,
        graph=None,
        heuristic=None,
        csr: CSRGraph | None = None,
        h: list[float] | Callable[[int], float] | None = None,
        metrics=None,
        kernel: str = "flat",
    ) -> None:
        self.csr = csr if csr is not None else shared_csr(graph)
        self.h = h if h is not None else dense_heuristic(heuristic, self.csr.n)
        self.kernel = kernel
        if (
            kernel == "native"
            and use_array_engine()
            and isinstance(self.h, list)
        ):
            # Densify once for the compiled kernel; float64 round-trip
            # is exact, so every estimate sum stays bit-identical.
            self.h = np.asarray(self.h, dtype=np.float64)
        if metrics is not None:
            metrics.inc("flat_query_contexts")

    def make_test_lb(self, goal: int, stats: SearchStats | None):
        """The ``TestLB`` closure for :func:`iter_bound_search`.

        Runs :func:`~repro.pathing.flat.flat_bounded_astar_path` (or
        its compiled counterpart under ``kernel="native"``) directly
        from the context — no per-call kernel dispatch, CSR lookup, or
        heuristic wrapping.  ``banned`` passes through as the
        subspace's frozenset (it is only consulted on the source row,
        where a C-level set lookup beats stamping).
        """
        csr = self.csr
        h = self.h

        if self.kernel == "native":

            def test_lb(subspace: Subspace, tau: float, info: dict):
                if stats is not None:
                    stats.native_kernel_calls += 1
                prefix = subspace.prefix
                return native_bounded_astar_path(
                    csr,
                    prefix[-1],
                    goal,
                    h,
                    tau,
                    blocked=prefix if len(prefix) > 1 else _EMPTY,
                    banned_first_hops=subspace.banned,
                    initial_distance=subspace.prefix_weight,
                    stats=stats,
                    info=info,
                    collect_dists=True,
                )

            return test_lb

        def test_lb(subspace: Subspace, tau: float, info: dict):
            if stats is not None:
                stats.flat_kernel_calls += 1
            prefix = subspace.prefix
            # The whole prefix (head included) goes in as blocked: the
            # kernel re-opens its source after stamping, so this equals
            # blocking prefix[:-1] while saving a tuple slice per test.
            return flat_bounded_astar_path(
                csr,
                prefix[-1],
                goal,
                h,
                tau,
                blocked=prefix if len(prefix) > 1 else _EMPTY,
                banned_first_hops=subspace.banned,
                initial_distance=subspace.prefix_weight,
                stats=stats,
                info=info,
                collect_dists=True,
            )

        return test_lb

    def make_batch_test_lb(self, goal: int, stats: SearchStats | None, grow=None):
        """The batched multi-source ``CompSP`` hook (``kernel="native"``).

        Returns ``batch_test_lb(pairs, clocked)`` for
        :func:`~repro.core.iter_bound.iter_bound_search`: ``pairs`` is
        one speculative run of ``(subspace, tau)`` requests and the
        result is the list of executed
        :class:`~repro.pathing.native.CompSPOutcome`\\ s (stop-at-first-
        deviation semantics, so executed work equals the sequential
        schedule exactly).  ``grow`` may be an incremental tree (its
        ``grow`` method is invoked per request) or a bare callable.
        Unclocked batches over a :class:`NativeIncrementalSPT` collapse
        into the single compiled mega-kernel call.
        """
        csr = self.csr
        h = self.h
        tree = grow if isinstance(grow, NativeIncrementalSPT) else None
        grow_fn = getattr(grow, "grow", grow)

        def batch_test_lb(pairs, clocked: bool):
            if tree is not None and not clocked:
                return tree.batch_test(csr, goal, pairs, stats)
            return native_batch_compsp(
                csr, goal, pairs, h=h, stats=stats, grow=grow_fn, clocked=clocked
            )

        return batch_test_lb

    def close(self) -> None:
        """Release the context (pooled resources are per-kernel-call)."""


class FlatIncrementalSPT:
    """Alg. 7 on flat arrays: the array-backed incremental tree.

    Mirrors :class:`repro.core.spt_incremental.IncrementalSPT` exactly
    — same settle order, same tentative-distance updates, same
    floating-point sums — but keeps its state in pooled scratch
    buffers (dist/parent/stamp) and exposes the paper's ``ds(·)`` as
    the dense vector :attr:`h`: settled nodes hold their exact
    distance, everything else ``inf``.  That vector *is* the reverse
    search's heuristic array, so Alg. 7 enlargement updates the
    heuristic in place and ``TestLB-SPT_I``'s "prune all nodes outside
    the tree" rule costs one list index per relaxation.

    The persistent queue (the paper's ``Q_T``) survives across
    :meth:`grow` calls; :meth:`close` returns the pooled buffers.
    """

    __slots__ = (
        "h",
        "_csr",
        "_rows",
        "_source",
        "_destinations",
        "_tb_arr",
        "_tb_call",
        "_scratch",
        "_gen",
        "_settled_tag",
        "_dist",
        "_stamp",
        "_parent",
        "_heap",
        "_settled_order",
        "_dest_nodes",
        "_dest_dists",
        "_dest_cache",
        "_stats",
        "_metrics",
        "_heap_peak",
    )

    def __init__(
        self,
        csr: CSRGraph,
        source: int,
        target_bounds,
        destinations: frozenset[int],
        stats: SearchStats | None = None,
        metrics=None,
    ) -> None:
        self._csr = csr
        self._rows = csr.row_lists()
        self._source = source
        self._destinations = destinations
        tb = dense_heuristic(target_bounds, csr.n)
        if tb is None or callable(tb):
            self._tb_arr: list[float] | None = None
            self._tb_call = tb
        else:
            self._tb_arr = tb
            self._tb_call = None
        self._scratch = acquire_scratch(csr)
        self._gen = self._scratch.begin()
        self._settled_tag = -self._gen
        self._dist = self._scratch.dist
        self._stamp = self._scratch.stamp
        self._parent = self._scratch.parent
        #: exact ``ds(v)`` for settled nodes, ``inf`` elsewhere — the
        #: reverse search's dense heuristic.
        self.h = acquire_inf_array(csr)
        self._settled_order: list[int] = []
        self._dest_nodes: list[int] = []
        self._dest_dists: list[float] = []
        self._dest_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._stats = stats
        self._metrics = metrics
        self._heap_peak = 1
        self._dist[source] = 0.0
        self._stamp[source] = self._gen
        self._heap: list[tuple[float, int]] = [(self._key(source, 0.0), source)]
        if stats is not None:
            stats.heap_pushes += 1

    def _key(self, v: int, dv: float) -> float:
        """Alg. 7's queue key ``ds(v) + lb(v, V_T)``."""
        if self._tb_arr is not None:
            return dv + self._tb_arr[v]
        if self._tb_call is not None:
            return dv + self._tb_call(v)
        return dv

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _settle_until(self, target: int, tau: float) -> int | None:
        """The shared settle loop: pop/settle until a stop condition.

        With a ``target`` (phase one) it settles until that node is
        settled and returns it; with ``tau`` (phase two, Alg. 7) it
        settles every node whose queue key is ≤ ``tau`` and returns
        ``None``.  One inlined loop — rather than a per-node
        ``_settle_next`` call — because this is the engine's single
        hottest path: every local is bound exactly once per *phase*,
        not once per settled node.
        """
        heap = self._heap
        stamp = self._stamp
        dist = self._dist
        parent = self._parent
        gen = self._gen
        settled_tag = self._settled_tag
        rows = self._rows
        tb_arr = self._tb_arr
        tb_call = self._tb_call
        stats = self._stats
        h = self.h
        settled_order = self._settled_order
        destinations = self._destinations
        dest_nodes = self._dest_nodes
        dest_dists = self._dest_dists
        before = len(settled_order)
        relaxed = 0
        pops = 0
        found: int | None = None
        while heap:
            key, u = heap[0]
            if key > tau:
                break
            heappop(heap)
            pops += 1
            if stamp[u] == settled_tag:
                continue
            du = dist[u]
            stamp[u] = settled_tag
            h[u] = du
            settled_order.append(u)
            if u in destinations:
                dest_nodes.append(u)
                dest_dists.append(du)
                self._dest_cache = None
            if tb_arr is not None:
                for v, w in rows[u]:
                    st = stamp[v]
                    if st == settled_tag:
                        continue
                    nd = du + w
                    if st != gen or nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        stamp[v] = gen
                        heappush(heap, (nd + tb_arr[v], v))
                        relaxed += 1
            else:
                for v, w in rows[u]:
                    st = stamp[v]
                    if st == settled_tag:
                        continue
                    nd = du + w
                    if st != gen or nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        stamp[v] = gen
                        heappush(heap, (nd + tb_call(v) if tb_call is not None else nd, v))
                        relaxed += 1
            if u == target:
                found = u
                break
        if stats is not None:
            stats.nodes_settled += len(settled_order) - before
            stats.edges_relaxed += relaxed
            # Pushes pair 1:1 with counted relaxations in this loop
            # (the initial source push is counted in ``__init__``).
            stats.heap_pushes += relaxed
            stats.heap_pops += pops
        if self._metrics is not None and len(heap) > self._heap_peak:
            # The queue peak at phase boundaries — one check per grow
            # call, not per settled node.
            self._heap_peak = len(heap)
        return found

    def build_initial(self, target: int) -> tuple[tuple[int, ...], float] | None:
        """Phase one: settle until ``target`` is reached.

        Same contract as the dict tree's ``build_initial`` — returns
        the first shortest path and its length, or ``None``.
        """
        u = self._settle_until(target, INF)
        if u is None:
            return None
        path = [u]
        node = u
        parent = self._parent
        while node != self._source:
            node = parent[node]
            path.append(node)
        path.reverse()
        return tuple(path), self.h[target]

    def grow(self, tau: float) -> None:
        """Phase two (Alg. 7): settle every node with key ≤ ``tau``."""
        heap = self._heap
        if heap and heap[0][0] <= tau:
            self._settle_until(-1, tau)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return self._stamp[v] == self._settled_tag

    def __len__(self) -> int:
        return len(self._settled_order)

    def distance(self, v: int) -> float | None:
        """Exact ``ds(v)`` if settled, else ``None``."""
        d = self.h[v]
        return None if d == INF else d

    def heuristic(self, v: int) -> float:
        """``_SPTIHeuristic`` equivalent: exact ``ds`` or ``inf``."""
        return self.h[v]

    @property
    def num_settled_destinations(self) -> int:
        """``|D|`` — destinations already in the tree."""
        return len(self._dest_nodes)

    def dest_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The settled destinations as ``(nodes, distances)`` arrays.

        Rebuilt lazily only when new destinations settled since the
        last call — Alg. 8's vectorised reduction runs over these.
        """
        cache = self._dest_cache
        if cache is None:
            cache = (
                np.asarray(self._dest_nodes, dtype=np.int64),
                np.asarray(self._dest_dists, dtype=np.float64),
            )
            self._dest_cache = cache
        return cache

    def close(self) -> None:
        """Return the pooled buffers; the tree must not be used after."""
        metrics = self._metrics
        if metrics is not None:
            metrics.set_gauge("spt_heap_peak", self._heap_peak)
            metrics.set_gauge("spt_settled_peak", len(self._settled_order))
            metrics.set_gauge("flat_scratch_stamp_gen", self._gen)
        if self._scratch is not None:
            release_scratch(self._csr, self._scratch)
            self._scratch = None
        if self.h is not None:
            release_inf_array(self._csr, self.h, self._settled_order)
            self.h = None


def _make_flat_comp_lb(
    tree: FlatIncrementalSPT,
    in_adjacency,
    target: int,
    total_destinations: int,
    source_bounds: Callable[[int], float],
) -> Callable[[Subspace], float]:
    """Alg. 8 (``CompLB-SPT_I``) over the flat structures.

    At the virtual target (the reverse root) the bound is a vectorised
    min over the settled-destination arrays; at interior nodes it is a
    loop over the reverse adjacency rows reading the tree's dense
    ``ds`` vector, with the landmark bound as fallback.  Values match
    the dict implementation exactly (a min is order-independent and
    the sums use the same operands).
    """
    h = tree.h

    def comp_lb(subspace: Subspace) -> float:
        prefix = subspace.prefix
        u = prefix[-1]
        banned = subspace.banned
        base = subspace.prefix_weight
        if u == target:
            nodes, dists = tree.dest_arrays()
            best = INF
            if nodes.size:
                if banned or len(prefix) > 1:
                    excluded = list(banned)
                    excluded.extend(prefix)
                    candidates = dists[~np.isin(nodes, excluded)]
                else:
                    candidates = dists
                if candidates.size:
                    best = base + float(candidates.min())
            if best == INF and tree.num_settled_destinations < total_destinations:
                # Unsettled destinations may still open this subspace
                # later; 0 keeps it alive (Alg. 8 line 8).
                return 0.0
            return best
        best = INF
        for v, w in in_adjacency[u]:
            if v in banned or v in prefix:
                continue
            ds = h[v]
            if ds == INF:
                ds = source_bounds(v)
            estimate = base + w + ds
            if estimate < best:
                best = estimate
        return best

    return comp_lb


def _make_flat_comp_lb_children(
    tree: FlatIncrementalSPT,
    in_adjacency,
    comp_lb: Callable[[Subspace], float],
    source_bounds: Callable[[int], float],
):
    """Alg. 8 batched over one ``divide``: bounds for *all* children at once.

    When the driver outputs a path it divides the subspace into one
    child per path position and computes ``CompLB`` for each; the
    scalar bound tests each neighbour against the child's prefix tuple
    — ``O(|prefix|)`` per edge, quadratic over a whole division.  This
    closure produces the identical ``(child, bound)`` sequence — same
    order, same float sums ``(base + w) + ds``, same exclusion
    outcomes — with one position dict per division: since the path is
    simple, "``v`` on ``path[: j + 1]`` or ``v`` the banned hop
    ``path[j + 1]``" is exactly ``pos(v) <= j + 1``, an ``O(1)``
    lookup.  The child-at-head subspace (whose head may be the virtual
    target, and whose banned set may hold off-path nodes) still goes
    through the scalar ``comp_lb``.
    """
    h = tree.h

    def comp_lb_children(
        subspace: Subspace, path: tuple[int, ...], dists
    ) -> list[tuple[Subspace, float]]:
        d = len(subspace.prefix) - 1
        L = len(path)
        pairs: list[tuple[Subspace, float]] = []
        first = subspace.child_at_head(path[d + 1])
        pairs.append((first, comp_lb(first)))
        if L - d - 2 <= 0:
            return pairs
        pos = {node: i for i, node in enumerate(path)}
        append = pairs.append
        for j in range(d + 1, L - 1):
            base = dists[j - d]
            best = INF
            cutoff = j + 1
            for v, w in in_adjacency[path[j]]:
                if v in pos and pos[v] <= cutoff:
                    continue
                ds = h[v]
                if ds == INF:
                    ds = source_bounds(v)
                estimate = base + w + ds
                if estimate < best:
                    best = estimate
            append(
                (
                    Subspace(path[: j + 1], frozenset((path[cutoff],)), base),
                    best,
                )
            )
        return pairs

    return comp_lb_children


def flat_spti_search(
    query_graph: QueryGraph,
    k: int,
    target_bounds: Callable[[int], float],
    source_bounds: Callable[[int], float],
    alpha: float = 1.1,
    stats: SearchStats | None = None,
    trace=None,
    metrics=None,
    tracer=None,
    kernel: str = "flat",
) -> list[Path]:
    """``IterBound-SPT_I`` (Algs. 4, 7, 8) entirely on the flat engine.

    Drop-in replacement for the dict
    :func:`repro.core.spt_incremental.iter_bound_spti` — same
    parameters, identical returned paths — dispatched automatically
    when the ambient kernel is ``"flat"`` or ``"native"``.  Under
    ``kernel="native"`` the incremental tree and every ``TestLB`` run
    on the compiled tier when available
    (:class:`~repro.pathing.native.NativeIncrementalSPT`; callable
    target bounds keep the flat tree), and the driver receives the
    batched multi-source ``CompSP`` hook so consecutive bound-only
    tests of one division round share a single kernel call.  ``trace``
    records the same
    ``output``/``test-hit``/``test-miss``/``retire`` events as the
    dict engine (``kpj explain --kernel flat``); ``metrics`` receives
    the ``comp_sp`` phase plus the tree's size gauges, with the
    driver's ``spt_grow``/``test_lb``/``division`` phases attributed
    by :func:`~repro.core.iter_bound.iter_bound_search`; ``tracer``
    likewise records the identical span taxonomy as the dict engine
    (``bound_kind="spt_i"``), so traced flat and dict queries produce
    the same :class:`~repro.obs.subspace_report.SubspaceTreeReport`.
    """
    from repro.core.iter_bound import iter_bound_search

    stats = stats if stats is not None else SearchStats()
    csr = shared_csr(query_graph.graph)
    rcsr = csr.reverse()
    destinations = frozenset(query_graph.destinations)
    tree = None
    if kernel == "native" and use_array_engine():
        tb = dense_heuristic(target_bounds, csr.n)
        if not callable(tb):
            tree = NativeIncrementalSPT(
                csr,
                query_graph.source,
                None if tb is None else np.asarray(tb, dtype=np.float64),
                destinations,
                stats=stats,
                metrics=metrics,
            )
    if tree is None:
        tree = FlatIncrementalSPT(
            csr, query_graph.source, target_bounds, destinations, stats=stats,
            metrics=metrics,
        )
    ctx = FlatQueryContext(csr=rcsr, h=tree.h, metrics=metrics, kernel=kernel)
    try:
        stats.shortest_path_computations += 1
        if metrics is not None or tracer is not None:
            from time import perf_counter

            t0 = perf_counter()
            initial = tree.build_initial(query_graph.target)
            t1 = perf_counter()
            if metrics is not None:
                metrics.observe_phase("comp_sp", t1 - t0)
            if tracer is not None:
                tracer.add("comp_sp", t0, t1, cat="phase")
        else:
            initial = tree.build_initial(query_graph.target)
        if initial is None:
            return []
        first_path, first_length = initial
        target = query_graph.target
        reversed_graph = query_graph.reversed_graph()
        # Prefix weights of the reversed first path, accumulated hop by
        # hop exactly as the driver's divide() would (reverse edge
        # a->b = forward edge b->a, first matching row entry), so the
        # first division reuses them bit-for-bit.
        rev_first = tuple(reversed(first_path))
        indptr_l, heads_l, wts_l = csr.adjacency_lists()
        acc = 0.0
        init_dists = [0.0]
        for i in range(1, len(rev_first)):
            a = rev_first[i - 1]
            b = rev_first[i]
            for e in range(indptr_l[b], indptr_l[b + 1]):
                if heads_l[e] == a:
                    acc = acc + wts_l[e]
                    break
            init_dists.append(acc)
        comp_lb = _make_flat_comp_lb(
            tree,
            reversed_graph.adjacency,
            target,
            len(destinations),
            source_bounds,
        )
        reverse_paths = iter_bound_search(
            reversed_graph,
            target,
            query_graph.source,
            k,
            tree.heuristic,
            alpha=alpha,
            stats=stats,
            initial=(rev_first, first_length),
            comp_lb=comp_lb,
            before_test=tree.grow,
            test_lb=ctx.make_test_lb(query_graph.source, stats),
            batch_test_lb=(
                ctx.make_batch_test_lb(query_graph.source, stats, grow=tree)
                if kernel == "native"
                else None
            ),
            comp_lb_children=_make_flat_comp_lb_children(
                tree, reversed_graph.adjacency, comp_lb, source_bounds
            ),
            initial_dists=init_dists,
            trace=trace,
            metrics=metrics,
            tracer=tracer,
            bound_kind="spt_i",
        )
        stats.spt_nodes = len(tree)
        return [
            Path(length=p.length, nodes=tuple(reversed(p.nodes)))
            for p in reverse_paths
        ]
    finally:
        ctx.close()
        tree.close()
