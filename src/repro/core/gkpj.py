"""GKPJ — the general KPJ with a set-valued source (Section 6).

The paper reduces ``Q = {S, T, k}`` to a KPJ query by adding a virtual
source connected to every node of ``V_S`` with zero-weight edges; the
reduction is already wired into
:func:`repro.graph.virtual.build_query_graph` and
:meth:`repro.core.kpj.KPJSolver.join`.  This module provides the
function-style entry point for callers who do not hold a solver.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.kpj import DEFAULT_ALGORITHM, KPJSolver
from repro.core.result import QueryResult
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.landmarks.index import LandmarkIndex

__all__ = ["gkpj"]


def gkpj(
    graph: DiGraph,
    sources: Sequence[int],
    destinations: Sequence[int],
    k: int,
    landmarks: LandmarkIndex | int | None = 16,
    algorithm: str = DEFAULT_ALGORITHM,
    alpha: float = 1.1,
    categories: CategoryIndex | None = None,
) -> QueryResult:
    """One-shot GKPJ: top-``k`` simple paths from any source to any
    destination.

    Convenience wrapper that builds a throwaway
    :class:`~repro.core.kpj.KPJSolver`; prefer holding a solver when
    issuing many queries (landmark construction is the expensive
    offline step).
    """
    solver = KPJSolver(graph, categories=categories, landmarks=landmarks)
    return solver.join(
        sources=tuple(sources),
        destinations=tuple(destinations),
        k=k,
        algorithm=algorithm,
        alpha=alpha,
    )
