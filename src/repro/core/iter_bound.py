"""The iteratively bounding driver (Section 5.1, Algs. 4–5).

``IterBound`` keeps the best-first queue of subspaces but replaces the
unconditional ``CompSP`` with ``TestLB``: a *bounded* A* that either
finds the subspace's shortest path (when its length is at most the
threshold ``τ``) or proves the lower bound ``τ`` and stops early.
``τ`` starts at the length of the 1st shortest path and is enlarged by
a factor ``α`` (default 1.1, the paper's choice from Fig. 6(b)) each
time a subspace is re-examined, so the tested bound approaches
``ω(P_k)`` geometrically while cheap tests prune most subspaces.

The driver is orientation-agnostic: the plain/``SPT_P`` variants run
it forward on ``G_Q`` (root = source, goal = virtual target) and the
``SPT_I`` variant runs it *backward* on the reversed ``G_Q``
(root = virtual target, goal = source), supplying its own ``CompLB``
(Alg. 8) and a pre-test hook that grows the incremental tree.  A
``τ``-cap equal to the total edge weight of the graph retires
subspaces that are provably empty (a dead-end prefix can otherwise
bounce forever — the paper implicitly assumes enough paths exist).
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from time import perf_counter
from typing import Callable

from repro.core.flat_engine import FlatQueryContext
from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.core.subspace import Subspace, compute_lower_bound, divide
from repro.graph.digraph import DiGraph
from repro.graph.virtual import QueryGraph
from repro.obs.log import current_query_id
from repro.pathing.astar import astar_path, bounded_astar_path
from repro.pathing.kernels import active_kernel

__all__ = ["iter_bound_search", "iter_bound"]

INF = float("inf")

#: Maximum requests collected into one speculative batched-CompSP run.
BATCH_TESTS = 8


def iter_bound_search(
    graph: DiGraph,
    root: int,
    goal: int,
    k: int,
    heuristic: Callable[[int], float],
    alpha: float = 1.1,
    stats: SearchStats | None = None,
    initial: tuple[tuple[int, ...], float] | None = None,
    comp_lb: Callable[[Subspace], float] | None = None,
    before_test: Callable[[float], None] | None = None,
    trace=None,
    test_lb: Callable[[Subspace, float, dict], tuple[tuple[int, ...], float] | None]
    | None = None,
    use_flat_engine: bool | None = None,
    batch_test_lb: Callable | None = None,
    comp_lb_children: Callable | None = None,
    initial_dists: list[float] | None = None,
    metrics=None,
    tracer=None,
    bound_kind: str | None = None,
) -> list[Path]:
    """Generic Alg. 4 driver; returns paths in ``graph`` coordinates.

    Parameters
    ----------
    graph, root, goal:
        The search graph and endpoints (already virtual-transformed;
        possibly reversed).
    heuristic:
        ``lb(v, goal)`` used by ``TestLB``'s priority/pruning and by
        the default ``CompLB``.
    alpha:
        Threshold growth factor (> 1).
    initial:
        The query's first shortest path ``(path, length)``, if a
        by-product of index construction already produced it (Algs. 6
        and 7 do); computed here otherwise.
    comp_lb:
        Override for the one-hop subspace bound (Alg. 8 for the
        ``SPT_I`` variant).  Defaults to Alg. 3 over ``graph``.
    before_test:
        Hook invoked with ``τ`` right before each ``TestLB`` — the
        ``SPT_I`` variant grows its tree here (Alg. 7's placement:
        after line 9, before line 10 of Alg. 4).
    trace:
        Optional :class:`repro.core.trace.SearchTrace` recording the
        loop's events (outputs, test hits/misses, retirements).
    test_lb:
        Override for the bounded test itself: called as
        ``test_lb(subspace, tau, info)`` and expected to honour the
        same contract as :func:`~repro.pathing.astar.bounded_astar_path`
        (``(tail, length)`` within ``tau`` or ``None`` with
        ``info["pruned"]`` set).  The ``SPT_I`` flat driver supplies a
        closure over its query context here.
    use_flat_engine:
        Tri-state fast-path switch used when ``test_lb`` is not given:
        ``True`` builds a :class:`~repro.core.flat_engine.FlatQueryContext`
        over ``graph`` and runs every test on the flat kernel;
        ``False`` forces the dict closure; ``None`` (default) follows
        the ambient kernel selection (``"flat"`` and ``"native"`` both
        take the flat-engine fast path, the latter with native leaves
        and the batched hook below).
    batch_test_lb:
        Optional batched multi-source ``CompSP`` entry point (the
        ``native`` kernel's Alg. 8 vectorisation): called as
        ``batch_test_lb(pairs, clocked)`` with one speculative run of
        ``(subspace, tau)`` requests in exact sequential schedule
        order, returning one outcome per *executed* request
        (:class:`~repro.pathing.native.CompSPOutcome`) and stopping
        right after the first result that deviates from the predicted
        bound-holds miss.  The driver collects up to
        :data:`BATCH_TESTS` consecutive bound-only iterations by
        pushing each request's predicted re-entry speculatively, then
        replays the executed outcomes — committing exactly the
        sequential trace, stats, and queue operations and restoring
        any unexecuted requests untouched.  Ignored while a ``tracer``
        is attached (span nesting requires the sequential loop).
    comp_lb_children:
        Optional batched division: called as
        ``comp_lb_children(subspace, path, tail_dists)`` and expected
        to return the exact ``[(child, comp_lb(child)), ...]`` sequence
        that ``divide`` + ``comp_lb`` would produce, in the same order.
        Used only for paths whose ``TestLB`` reported tail distances
        (the flat ``SPT_I`` engine vectorises Alg. 8 here).
    initial_dists:
        Prefix weights of ``initial``'s path, entry ``i`` being the
        weight of ``path[: i + 1]`` accumulated left-to-right exactly
        as ``divide`` would.  Lets the first (largest) division skip
        the per-hop ``edge_weight`` walk.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the driver's phase attribution — ``comp_sp`` (the initial
        shortest-path computation, when run here), ``spt_grow`` (time
        inside ``before_test``), ``test_lb``, ``division`` — plus the
        subspace-queue peak gauge.  Times accumulate in locals and
        flush once; disabled cost is one ``None`` check per site.
    tracer:
        Optional :class:`~repro.obs.tracing.SpanTracer`.  The driver
        opens one ``iter_bound`` span over the whole loop (attributes:
        ``bound_kind``, end-of-search queue ``leftover``, ``results``),
        one ``iterate`` span per outer τ-iteration, and child
        ``test_lb`` / ``division`` / ``spt_grow`` spans carrying the
        prefix depth, lower bound, τ, and verdict — enough for
        :class:`~repro.obs.subspace_report.SubspaceTreeReport` to
        rebuild the explored subspace tree.  Shares the metrics
        discipline: timestamps are taken once, disabled cost is one
        ``None`` check per site.
    bound_kind:
        Which bound family backs ``heuristic``/``comp_lb``
        (``"landmark"``, ``"global"``, ``"spt_p"``, ``"spt_i"``) —
        recorded on the ``iter_bound`` span for pruning attribution.
    """
    if not alpha > 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    stats = stats if stats is not None else SearchStats()
    adjacency = graph.adjacency
    if comp_lb is None:
        def comp_lb(subspace: Subspace) -> float:
            return compute_lower_bound(adjacency, subspace, heuristic)

    own_ctx: FlatQueryContext | None = None
    if test_lb is None:
        if use_flat_engine is None:
            ctx_kernel = active_kernel()
            use_flat_engine = ctx_kernel != "dict"
        else:
            ctx_kernel = "flat"
        if use_flat_engine:
            # Flat-core fast path: resolve the CSR snapshot, densify
            # the heuristic, and pool the blocked mask once per query
            # instead of once per TestLB.
            own_ctx = FlatQueryContext(graph, heuristic, kernel=ctx_kernel)
            test_lb = own_ctx.make_test_lb(goal, stats)
            if ctx_kernel == "native" and batch_test_lb is None:
                batch_test_lb = own_ctx.make_batch_test_lb(goal, stats)
        else:
            def test_lb(subspace: Subspace, tau: float, info: dict):
                return bounded_astar_path(
                    graph,
                    subspace.head,
                    goal,
                    heuristic,
                    bound=tau,
                    blocked=subspace.blocked_set,
                    banned_first_hops=subspace.banned,
                    initial_distance=subspace.prefix_weight,
                    stats=stats,
                    info=info,
                )

    timed = metrics is not None
    traced = tracer is not None
    clocked = timed or traced
    # Batched CompSP runs replay the sequential loop's bookkeeping but
    # not its span nesting, so tracing keeps the sequential path.
    batching = batch_test_lb is not None and not traced
    # Tie ids of speculative re-entries whose prediction failed; the
    # heap can't remove mid-structure, so they are discarded lazily at
    # every pop/peek.  Empty (and never consulted) unless batching.
    cancelled: set[int] = set()
    search_span = None
    if traced:
        search_span = tracer.begin("iter_bound", cat="search", bound_kind=bound_kind)
        # Join key to the structured query log: the solver stamps its
        # id in a contextvar so the driver tags its span without a
        # signature change (see repro.obs.log).
        query_id = current_query_id.get()
        if query_id is not None:
            search_span["attrs"]["query_id"] = query_id
    if initial is None:
        stats.shortest_path_computations += 1
        if clocked:
            t0 = perf_counter()
        initial = astar_path(graph, root, goal, heuristic, stats=stats)
        if clocked:
            t1 = perf_counter()
            if timed:
                metrics.observe_phase("comp_sp", t1 - t0)
            if traced:
                tracer.add("comp_sp", t0, t1, cat="phase")
    if initial is None:
        if traced:
            tracer.end(search_span, results=0, leftover=0)
        return []
    first_path, first_length = initial

    # No simple path can be longer than n * max edge weight; testing a
    # subspace at this bound without success proves it empty.
    tau_limit = graph.n * graph.max_edge_weight + 1.0

    tie = count()  # FIFO tie-break among equal bounds, exactly as before
    # Queue entries carry (bound, tie, subspace, found) where found is
    # None (bound-only entry) or (path, tail_dists) — the flat TestLB
    # kernel reports the settled distances of its tail so divide() can
    # reuse them instead of re-reading edge weights.
    queue: list[
        tuple[float, int, Subspace, tuple[tuple[int, ...], list[float] | None] | None]
    ] = []
    heappush(
        queue,
        (first_length, next(tie), Subspace.entire(root), (first_path, initial_dists)),
    )

    results: list[Path] = []
    edge_weight = graph.edge_weight
    test_info: dict = {}
    # Hot-loop stats (and phase timings, when enabled) are batched in
    # locals and flushed once at the end.
    n_created = 1
    n_lb_computations = 0
    n_pruned = 0
    n_tests = 0
    n_test_failures = 0
    # Verdict tallies — one per tested subspace, identical under the
    # sequential and the batched schedule (the batch stops at the first
    # deviation, so executed verdicts match the sequential order).
    n_test_hits = 0
    n_test_misses = 0
    n_test_retires = 0
    n_batch_rounds = 0
    n_batch_slots = 0
    t_test = t_div = t_grow = 0.0
    n_div = n_grow = 0
    queue_peak = 1
    try:
        while queue and len(results) < k:
            if batching:
                while queue and queue[0][1] in cancelled:
                    cancelled.discard(queue[0][1])
                    heappop(queue)
                if not queue:
                    break
            if timed and len(queue) > queue_peak:
                queue_peak = len(queue)
            bound, _, subspace, found = heappop(queue)
            if traced:
                it_span = tracer.begin(
                    "iterate", cat="search",
                    depth=len(subspace.prefix) - 1, lb=bound,
                )
            if found is not None:
                path, dists = found
                results.append(Path(length=bound, nodes=path))
                if trace is not None:
                    trace.record("output", subspace.prefix, bound, length=bound)
                if clocked:
                    t0 = perf_counter()
                if comp_lb_children is not None and dists is not None:
                    pairs = comp_lb_children(subspace, path, dists)
                else:
                    pairs = [
                        (child, comp_lb(child))
                        for child in divide(subspace, path, bound, edge_weight, dists)
                    ]
                born_pruned = 0
                for child, child_bound in pairs:
                    n_created += 1
                    n_lb_computations += 1
                    if child_bound == INF:
                        born_pruned += 1
                        continue
                    if child_bound < bound:
                        child_bound = bound
                    heappush(queue, (child_bound, next(tie), child, None))
                n_pruned += born_pruned
                if clocked:
                    t1 = perf_counter()
                    if timed:
                        t_div += t1 - t0
                        n_div += 1
                    if traced:
                        tracer.add(
                            "division", t0, t1, cat="phase",
                            attrs={
                                "depth": len(subspace.prefix) - 1,
                                "children": len(pairs),
                                "pruned": born_pruned,
                            },
                        )
                        tracer.end(it_span, verdict="output", length=bound)
                continue
            if batching:
                # ---- Speculative batched CompSP (one division round) ----
                # Collect consecutive bound-only iterations under the
                # predicted bound-holds miss.  Each request's τ follows
                # the exact sequential schedule because its predicted
                # re-entry is pushed *before* the next peek; the batch
                # executes in order and stops at the first deviation, so
                # no executed work is ever discarded.
                requests = []  # (subspace, tau, bound, terminal)
                spec = []  # predicted re-entry per request (None = not pushed)
                popped = []  # entries consumed as requests 1..n-1
                cur_sub, cur_bound = subspace, bound
                while True:
                    while queue and queue[0][1] in cancelled:
                        cancelled.discard(queue[0][1])
                        heappop(queue)
                    next_bound = queue[0][0] if queue else INF
                    tau = alpha * max(cur_bound, next_bound, first_length)
                    if tau <= 0.0:
                        tau = graph.max_edge_weight or 1.0
                    terminal = tau >= tau_limit
                    if terminal:
                        tau = tau_limit
                    requests.append((cur_sub, tau, cur_bound, terminal))
                    if terminal or len(requests) == BATCH_TESTS:
                        spec.append(None)
                        break
                    entry = (tau, next(tie), cur_sub, None)
                    spec.append(entry)
                    heappush(queue, entry)
                    while queue[0][1] in cancelled:
                        cancelled.discard(queue[0][1])
                        heappop(queue)
                    if queue[0][3] is not None:
                        break
                    nxt = heappop(queue)
                    popped.append(nxt)
                    cur_bound, _, cur_sub, _ = nxt
                outcomes = batch_test_lb(
                    [(s, t) for s, t, _b, _tm in requests], clocked
                )
                executed = len(outcomes)
                n_batch_rounds += 1
                n_batch_slots += executed
                # Unexecuted requests go back exactly as popped; their
                # speculative re-entries are cancelled.
                for j in range(executed, len(requests)):
                    heappush(queue, popped[j - 1])
                    r = spec[j]
                    if r is not None:
                        cancelled.add(r[1])
                for i in range(executed):
                    sub_i, tau_i, bound_i, term_i = requests[i]
                    out = outcomes[i]
                    n_tests += 1
                    if timed:
                        if out.g0 is not None:
                            t_grow += out.g1 - out.g0
                            n_grow += 1
                        if out.t0 is not None:
                            t_test += out.t1 - out.t0
                    if out.path is not None:
                        n_test_hits += 1
                        r = spec[i]
                        if r is not None:
                            cancelled.add(r[1])
                        if trace is not None:
                            trace.record(
                                "test-hit", sub_i.prefix, bound_i,
                                tau=tau_i, length=out.length,
                            )
                        heappush(
                            queue,
                            (
                                out.length,
                                next(tie),
                                sub_i,
                                (sub_i.prefix[:-1] + out.path, out.tail_dists),
                            ),
                        )
                        continue
                    n_test_failures += 1
                    if not out.pruned or term_i:
                        n_test_retires += 1
                        r = spec[i]
                        if r is not None:
                            cancelled.add(r[1])
                        if trace is not None:
                            trace.record(
                                "retire", sub_i.prefix, bound_i, tau=tau_i
                            )
                        n_pruned += 1
                        continue
                    n_test_misses += 1
                    if trace is not None:
                        trace.record("test-miss", sub_i.prefix, bound_i, tau=tau_i)
                    if spec[i] is None:
                        heappush(queue, (tau_i, next(tie), sub_i, None))
                continue
            # Enlarge tau: alpha * max(lb(S), next pending bound) — Alg. 4
            # line 9, with the queue top defined as +inf when empty.
            next_bound = queue[0][0] if queue else INF
            tau = alpha * max(bound, next_bound, first_length)
            if tau <= 0.0:
                # All pending bounds are zero (possible only when the source
                # is itself a destination and Alg. 8 floored a bound at 0);
                # any positive value restores geometric growth.
                tau = graph.max_edge_weight or 1.0
            if tau >= tau_limit:
                tau = tau_limit
            if before_test is not None:
                if clocked:
                    t0 = perf_counter()
                    before_test(tau)
                    t1 = perf_counter()
                    if timed:
                        t_grow += t1 - t0
                        n_grow += 1
                    if traced:
                        tracer.add(
                            "spt_grow", t0, t1, cat="phase", attrs={"tau": tau}
                        )
                else:
                    before_test(tau)
            n_tests += 1
            if clocked:
                t0 = perf_counter()
            hit = test_lb(subspace, tau, test_info)
            if clocked:
                t1 = perf_counter()
                if timed:
                    t_test += t1 - t0
            if hit is not None:
                n_test_hits += 1
                tail, length = hit
                if trace is not None:
                    trace.record(
                        "test-hit", subspace.prefix, bound, tau=tau, length=length
                    )
                if traced:
                    tracer.add(
                        "test_lb", t0, t1, cat="phase",
                        attrs={
                            "depth": len(subspace.prefix) - 1,
                            "lb": bound, "tau": tau, "verdict": "hit",
                        },
                    )
                    tracer.end(it_span, verdict="test-hit")
                heappush(
                    queue,
                    (
                        length,
                        next(tie),
                        subspace,
                        (subspace.prefix[:-1] + tail, test_info.get("tail_dists")),
                    ),
                )
                continue
            n_test_failures += 1
            if not test_info["pruned"] or tau >= tau_limit:
                n_test_retires += 1
                if trace is not None:
                    trace.record("retire", subspace.prefix, bound, tau=tau)
                if traced:
                    tracer.add(
                        "test_lb", t0, t1, cat="phase",
                        attrs={
                            "depth": len(subspace.prefix) - 1,
                            "lb": bound, "tau": tau, "verdict": "retire",
                        },
                    )
                    tracer.end(it_span, verdict="retire")
                n_pruned += 1  # provably empty — retire it
                continue
            n_test_misses += 1
            if trace is not None:
                trace.record("test-miss", subspace.prefix, bound, tau=tau)
            if traced:
                tracer.add(
                    "test_lb", t0, t1, cat="phase",
                    attrs={
                        "depth": len(subspace.prefix) - 1,
                        "lb": bound, "tau": tau, "verdict": "miss",
                    },
                )
                tracer.end(it_span, verdict="test-miss")
            heappush(queue, (tau, next(tie), subspace, None))
    finally:
        if own_ctx is not None:
            own_ctx.close()
        stats.subspaces_created += n_created
        stats.lower_bound_computations += n_lb_computations
        stats.subspaces_pruned += n_pruned
        stats.lb_tests += n_tests
        stats.lb_test_failures += n_test_failures
        stats.lb_test_hits += n_test_hits
        stats.lb_test_misses += n_test_misses
        stats.lb_test_retires += n_test_retires
        stats.batch_rounds += n_batch_rounds
        stats.batch_slots_filled += n_batch_slots
        if timed:
            if n_tests:
                metrics.observe_phase("test_lb", t_test, n_tests)
            if n_div:
                metrics.observe_phase("division", t_div, n_div)
            if n_grow:
                metrics.observe_phase("spt_grow", t_grow, n_grow)
            metrics.set_gauge("iterbound_queue_peak", queue_peak)
    leftover = sum(
        1 for entry in queue if entry[3] is None and entry[1] not in cancelled
    )
    stats.subspaces_pruned += leftover
    if traced:
        tracer.end(search_span, leftover=leftover, results=len(results))
    return results


def iter_bound(
    query_graph: QueryGraph,
    k: int,
    heuristic: Callable[[int], float],
    alpha: float = 1.1,
    stats: SearchStats | None = None,
    trace=None,
    metrics=None,
    tracer=None,
) -> list[Path]:
    """The plain (index-free) ``IterBound`` on a query transform.

    Forward orientation: root = source, goal = virtual target; the
    landmark bound doubles as ``TestLB``'s heuristic.
    """
    from repro.landmarks.index import ZeroBounds

    return iter_bound_search(
        query_graph.graph,
        query_graph.source,
        query_graph.target,
        k,
        heuristic,
        alpha=alpha,
        stats=stats,
        trace=trace,
        metrics=metrics,
        tracer=tracer,
        bound_kind="global" if isinstance(heuristic, ZeroBounds) else "landmark",
    )
