"""Unified KPJ/KSP solver facade and the algorithm registry.

:class:`KPJSolver` is the public entry point of the library: construct
it once per graph (landmark selection and the per-landmark Dijkstra
runs happen here — the offline ``O(|L| (m + n log n))`` step of the
paper), then issue any number of queries.  Each query builds the
``G_Q`` overlay, derives the per-query landmark bound vectors, runs
the selected algorithm, and strips virtual nodes from the results.

Algorithm registry names (paper names in parentheses):

========================  =======================================
``da``                    DA (Alg. 1, deviation baseline)
``da-spt``                DA-SPT (full-SPT deviation, Gao et al.)
``best-first``            BestFirst (Alg. 2)
``iter-bound``            IterBound (Alg. 4)
``iter-bound-sptp``       IterBound-SPT_P (Section 5.2)
``iter-bound-spti``       IterBound-SPT_I (Section 5.3, default)
``iter-bound-spti-nl``    IterBound-SPT_I without landmarks (§6)
========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.deviation import deviation_algorithm
from repro.baselines.deviation_spt import deviation_spt
from repro.core.best_first import best_first
from repro.core.iter_bound import iter_bound
from repro.core.result import Path, QueryResult
from repro.core.spt_incremental import iter_bound_spti
from repro.core.spt_partial import iter_bound_sptp
from repro.core.stats import SearchStats
from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.graph.virtual import QueryGraph, build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex

__all__ = [
    "KPJSolver",
    "PreparedCategory",
    "QueryContext",
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
]

DEFAULT_ALGORITHM = "iter-bound-spti"


@dataclass
class QueryContext:
    """Per-query inputs shared by every algorithm implementation.

    ``target_bounds``/``source_bounds`` are the Eq. (2)-style landmark
    bound vectors (or the zero bound); ``alpha`` is the iteratively
    bounding growth factor; ``stats`` collects instrumentation.
    """

    target_bounds: Callable[[int], float]
    source_bounds: Callable[[int], float]
    alpha: float
    stats: SearchStats


def _run_da(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return deviation_algorithm(qg, k, stats=ctx.stats)


def _run_da_spt(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return deviation_spt(qg, k, stats=ctx.stats)


def _run_best_first(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return best_first(qg, k, ctx.target_bounds, stats=ctx.stats)


def _run_iter_bound(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound(qg, k, ctx.target_bounds, alpha=ctx.alpha, stats=ctx.stats)


def _run_iter_bound_sptp(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound_sptp(
        qg, k, ctx.target_bounds, ctx.source_bounds, alpha=ctx.alpha, stats=ctx.stats
    )


def _run_iter_bound_spti(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound_spti(
        qg, k, ctx.target_bounds, ctx.source_bounds, alpha=ctx.alpha, stats=ctx.stats
    )


def _run_iter_bound_spti_nl(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound_spti(
        qg, k, ZERO_BOUNDS, ZERO_BOUNDS, alpha=ctx.alpha, stats=ctx.stats
    )


ALGORITHMS: dict[str, Callable[[QueryGraph, int, QueryContext], list[Path]]] = {
    "da": _run_da,
    "da-spt": _run_da_spt,
    "best-first": _run_best_first,
    "iter-bound": _run_iter_bound,
    "iter-bound-sptp": _run_iter_bound_sptp,
    "iter-bound-spti": _run_iter_bound_spti,
    "iter-bound-spti-nl": _run_iter_bound_spti_nl,
}


class KPJSolver:
    """Answers KPJ, KSP, and GKPJ queries over one graph.

    Parameters
    ----------
    graph:
        The frozen input graph ``G``.
    categories:
        POI inverted index; required for category queries, optional if
        every query passes explicit destination nodes.
    landmarks:
        ``int`` — build a landmark index of that size here (the
        paper's default is 16); an existing :class:`LandmarkIndex` —
        use it; ``None`` — run without landmarks (all Eq. (2) bounds
        become 0).
    landmark_strategy, seed:
        Forwarded to :meth:`LandmarkIndex.build` when ``landmarks``
        is an ``int``.

    Example
    -------
    >>> solver = KPJSolver(graph, categories, landmarks=16)
    >>> result = solver.top_k(source=5, category="Hotel", k=3)
    >>> [p.length for p in result.paths]        # doctest: +SKIP
    [5.0, 6.0, 7.0]
    """

    def __init__(
        self,
        graph: DiGraph,
        categories: CategoryIndex | None = None,
        landmarks: LandmarkIndex | int | None = 16,
        landmark_strategy: str = "farthest",
        seed: int = 0,
    ) -> None:
        if not graph.frozen:
            graph.freeze()
        self.graph = graph
        self.categories = categories
        if isinstance(landmarks, int):
            self.landmark_index: LandmarkIndex | None = LandmarkIndex.build(
                graph, landmarks, strategy=landmark_strategy, seed=seed
            )
        else:
            self.landmark_index = landmarks

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def top_k(
        self,
        source: int,
        category: str | None = None,
        destinations: Sequence[int] | None = None,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """KPJ query ``{s, T, k}``: top-``k`` simple paths from
        ``source`` to a category (or an explicit destination set).
        """
        return self._solve((source,), category, destinations, k, algorithm, alpha)

    def ksp(
        self,
        source: int,
        target: int,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """KSP query: the degenerate KPJ with a single destination."""
        return self._solve((source,), None, (target,), k, algorithm, alpha)

    def join(
        self,
        source_category: str | None = None,
        category: str | None = None,
        sources: Sequence[int] | None = None,
        destinations: Sequence[int] | None = None,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """GKPJ query ``{S, T, k}``: both endpoints are node sets.

        Endpoint sets are given either as category names or as
        explicit node sequences (Section 6's virtual-source reduction
        is applied automatically).
        """
        source_nodes = self._resolve(source_category, sources, "source")
        return self._solve(source_nodes, category, destinations, k, algorithm, alpha)

    def prepare(
        self,
        category: str | None = None,
        destinations: Sequence[int] | None = None,
    ) -> "PreparedCategory":
        """Pre-resolve a destination set for a batch of queries.

        The Eq. (2) target-bound vector depends only on the
        destination set; preparing it once and issuing many
        ``top_k`` calls against the handle skips the ``O(|L| n)``
        per-query initialisation (the paper's "computed once for each
        query" step, hoisted across a workload).
        """
        dest = self._resolve(category, destinations, "destination")
        if self.landmark_index is not None:
            target_bounds = self.landmark_index.to_target_bounds(dest)
        else:
            target_bounds = ZERO_BOUNDS
        return PreparedCategory(self, dest, target_bounds)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(
        self,
        category: str | None,
        nodes: Sequence[int] | None,
        role: str,
    ) -> tuple[int, ...]:
        if nodes is not None:
            if category is not None:
                raise QueryError(f"give either a {role} category or nodes, not both")
            return tuple(nodes)
        if category is None:
            raise QueryError(f"query needs a {role} category or explicit nodes")
        if self.categories is None:
            raise QueryError(
                "solver was built without a CategoryIndex; pass explicit nodes"
            )
        return self.categories.nodes_of(category)

    def _solve(
        self,
        sources: tuple[int, ...],
        category: str | None,
        destinations: Sequence[int] | None,
        k: int,
        algorithm: str,
        alpha: float,
        prepared_bounds: Callable[[int], float] | None = None,
    ) -> QueryResult:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        try:
            run = ALGORITHMS[algorithm]
        except KeyError:
            known = ", ".join(sorted(ALGORITHMS))
            raise QueryError(
                f"unknown algorithm {algorithm!r}; choose one of: {known}"
            ) from None
        dest = self._resolve(category, destinations, "destination")
        qg = build_query_graph(self.graph, sources, dest)
        stats = SearchStats()
        if self.landmark_index is not None:
            target_bounds = (
                prepared_bounds
                if prepared_bounds is not None
                else self.landmark_index.to_target_bounds(qg.destinations)
            )
            source_bounds = self.landmark_index.from_source_bounds(qg.sources)
        else:
            target_bounds = ZERO_BOUNDS
            source_bounds = ZERO_BOUNDS
        ctx = QueryContext(
            target_bounds=target_bounds,
            source_bounds=source_bounds,
            alpha=alpha,
            stats=stats,
        )
        raw = run(qg, k, ctx)
        paths = [Path(length=p.length, nodes=qg.strip(p.nodes)) for p in raw]
        return QueryResult(paths=paths, algorithm=algorithm, stats=stats)


class PreparedCategory:
    """A destination set with its target-bound vector precomputed.

    Produced by :meth:`KPJSolver.prepare`; issue any number of
    ``top_k`` / ``join`` calls without re-deriving the Eq. (2) bounds.
    """

    def __init__(
        self,
        solver: KPJSolver,
        destinations: tuple[int, ...],
        target_bounds: Callable[[int], float],
    ) -> None:
        self._solver = solver
        self.destinations = destinations
        self._target_bounds = target_bounds

    def top_k(
        self,
        source: int,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """KPJ query against the prepared destination set."""
        return self._solver._solve(
            (source,),
            None,
            self.destinations,
            k,
            algorithm,
            alpha,
            prepared_bounds=self._target_bounds,
        )

    def join(
        self,
        sources: Sequence[int],
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """GKPJ query against the prepared destination set."""
        return self._solver._solve(
            tuple(sources),
            None,
            self.destinations,
            k,
            algorithm,
            alpha,
            prepared_bounds=self._target_bounds,
        )
