"""Unified KPJ/KSP solver facade and the algorithm registry.

:class:`KPJSolver` is the public entry point of the library: construct
it once per graph (landmark selection and the per-landmark Dijkstra
runs happen here — the offline ``O(|L| (m + n log n))`` step of the
paper), then issue any number of queries.  Each query builds the
``G_Q`` overlay, derives the per-query landmark bound vectors, runs
the selected algorithm, and strips virtual nodes from the results.

Two serving-oriented layers sit on top of the per-query path:

* a bounded **prepared-category cache** — the destination-set
  artefacts that do not depend on the query source (the ``G_Q``
  overlay, its CSR export, the Eq. (2) target-bound vector, and the
  backward SPT seed) are memoised per ``(destination set,
  landmark configuration)`` and reused across queries, with hit/miss
  counters surfaced in :class:`~repro.core.stats.SearchStats`;
* a **batch API** — :meth:`KPJSolver.solve_batch` answers a list of
  queries, optionally sharded across a process pool
  (:mod:`repro.server.pool`), returning results in submission order.

The ``kernel`` knob selects the search substrate for every algorithm:
``"dict"`` (pure-CPython dicts and tuple adjacency, the default) or
``"flat"`` (CSR flat-array kernels, scipy-accelerated where
available); see :mod:`repro.pathing.kernels`.

Algorithm registry names (paper names in parentheses):

========================  =======================================
``da``                    DA (Alg. 1, deviation baseline)
``da-spt``                DA-SPT (full-SPT deviation, Gao et al.)
``best-first``            BestFirst (Alg. 2)
``iter-bound``            IterBound (Alg. 4)
``iter-bound-sptp``       IterBound-SPT_P (Section 5.2)
``iter-bound-spti``       IterBound-SPT_I (Section 5.3, default)
``iter-bound-spti-nl``    IterBound-SPT_I without landmarks (§6)
========================  =======================================
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

from repro.baselines.deviation import deviation_algorithm
from repro.baselines.deviation_spt import deviation_spt
from repro.core.best_first import best_first
from repro.core.iter_bound import iter_bound
from repro.core.result import Path, QueryResult
from repro.core.spt_incremental import iter_bound_spti
from repro.core.spt_partial import iter_bound_sptp
from repro.core.stats import SearchStats
from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.graph.virtual import QueryGraph, build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex, TargetBounds
from repro.obs.log import QueryLogger, current_query_id, new_query_id
from repro.obs.memory import MemoryTelemetry, graph_pool_bytes
from repro.obs.metrics import SEARCH_PHASES, MetricsRegistry, maybe_phase
from repro.obs.tracing import SpanTracer, maybe_span
from repro.pathing.kernels import KERNELS, use_kernel

__all__ = [
    "KPJSolver",
    "PreparedCategory",
    "QueryContext",
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
]

DEFAULT_ALGORITHM = "iter-bound-spti"


@dataclass
class QueryContext:
    """Per-query inputs shared by every algorithm implementation.

    ``target_bounds``/``source_bounds`` are the Eq. (2)-style landmark
    bound vectors (or the zero bound); ``alpha`` is the iteratively
    bounding growth factor; ``stats`` collects instrumentation;
    ``metrics`` is the per-query registry and ``tracer`` the per-query
    span tracer (``None`` when observability is off — implementations
    must guard on that, never allocate).
    """

    target_bounds: Callable[[int], float]
    source_bounds: Callable[[int], float]
    alpha: float
    stats: SearchStats
    metrics: MetricsRegistry | None = None
    tracer: SpanTracer | None = None


def _run_da(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return deviation_algorithm(qg, k, stats=ctx.stats)


def _run_da_spt(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return deviation_spt(qg, k, stats=ctx.stats)


def _run_best_first(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return best_first(qg, k, ctx.target_bounds, stats=ctx.stats)


def _run_iter_bound(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound(
        qg, k, ctx.target_bounds, alpha=ctx.alpha, stats=ctx.stats,
        metrics=ctx.metrics, tracer=ctx.tracer,
    )


def _run_iter_bound_sptp(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    source_bounds = ctx.source_bounds
    eager = getattr(source_bounds, "eager", None)
    if eager is not None:
        # The backward A* reads the bound once per relaxed node — a
        # dense region — so the materialised vector beats the lazy
        # per-column reduction here.
        source_bounds = eager()
    return iter_bound_sptp(
        qg, k, ctx.target_bounds, source_bounds, alpha=ctx.alpha, stats=ctx.stats,
        metrics=ctx.metrics, tracer=ctx.tracer,
    )


def _run_iter_bound_spti(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound_spti(
        qg, k, ctx.target_bounds, ctx.source_bounds, alpha=ctx.alpha, stats=ctx.stats,
        metrics=ctx.metrics, tracer=ctx.tracer,
    )


def _run_iter_bound_spti_nl(qg: QueryGraph, k: int, ctx: QueryContext) -> list[Path]:
    return iter_bound_spti(
        qg, k, ZERO_BOUNDS, ZERO_BOUNDS, alpha=ctx.alpha, stats=ctx.stats,
        metrics=ctx.metrics, tracer=ctx.tracer,
    )


ALGORITHMS: dict[str, Callable[[QueryGraph, int, QueryContext], list[Path]]] = {
    "da": _run_da,
    "da-spt": _run_da_spt,
    "best-first": _run_best_first,
    "iter-bound": _run_iter_bound,
    "iter-bound-sptp": _run_iter_bound_sptp,
    "iter-bound-spti": _run_iter_bound_spti,
    "iter-bound-spti-nl": _run_iter_bound_spti_nl,
}


class KPJSolver:
    """Answers KPJ, KSP, and GKPJ queries over one graph.

    Parameters
    ----------
    graph:
        The frozen input graph ``G``.
    categories:
        POI inverted index; required for category queries, optional if
        every query passes explicit destination nodes.
    landmarks:
        ``int`` — build a landmark index of that size here (the
        paper's default is 16); an existing :class:`LandmarkIndex` —
        use it; ``None`` — run without landmarks (all Eq. (2) bounds
        become 0).
    landmark_strategy, seed:
        Forwarded to :meth:`LandmarkIndex.build` when ``landmarks``
        is an ``int``.
    kernel:
        Search substrate every query runs on: ``"dict"`` (default),
        ``"flat"`` (CSR flat-array kernels), or ``"native"`` (the
        compiled numba tier of :mod:`repro.pathing.native`, with
        batched multi-source ``CompSP``; falls back to the flat
        kernels when numba is absent).  Results are identical; only
        the speed profile changes.  A ``native`` solver triggers JIT
        compilation at construction (the ``warmup`` phase) so no
        query pays it.
    prepared_cache_size:
        Number of prepared destination sets kept in the LRU
        cross-query cache (``0`` disables caching).  Each entry holds
        the Eq. (2) bound vector (``O(n)`` floats) and, lazily, the
        ``G_Q`` overlay and its CSR export.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
        set, every query records phase wall times, counters, and
        gauges into it (each query runs against a fresh per-query
        registry whose snapshot rides back on
        ``QueryResult.metrics``, then merges here).  When ``None``
        (default) the entire layer stays off — one ``is None`` check
        per site, no allocation.
    tracer:
        Optional :class:`~repro.obs.tracing.SpanTracer`.  When set,
        sampled queries (the tracer's ``sample_every`` stride) record
        a span tree — ``query`` → ``prepare``/``search`` →
        ``iter_bound`` → per-iteration ``iterate`` with ``test_lb`` /
        ``division`` / ``spt_grow`` leaves — into a fresh per-query
        tracer whose snapshot rides back on ``QueryResult.trace`` and
        is absorbed here.  Same discipline as ``metrics``: ``None``
        keeps every hot site at a single ``is None`` check.
    query_log:
        Optional :class:`~repro.obs.log.QueryLogger`.  When set, every
        query emits one JSON event (query id, algorithm/kernel,
        latency, non-zero work counters), and queries over the
        logger's ``slow_ms`` threshold additionally dump their full
        trace + metrics snapshots to a file — see DESIGN.md §3g.
    memory:
        Optional :class:`~repro.obs.memory.MemoryTelemetry`.  When set
        (and started), the ``prepare`` and ``search`` phases record
        tracemalloc attribution into the per-query registry, and each
        query stamps the process/pool byte gauges
        (``process_peak_rss_bytes``, ``flat_scratch_pool_bytes``,
        ``native_scratch_pool_bytes``).  Requires ``metrics`` to be
        set for the numbers to land anywhere.

    Example
    -------
    >>> solver = KPJSolver(graph, categories, landmarks=16)
    >>> result = solver.top_k(source=5, category="Hotel", k=3)
    >>> [p.length for p in result.paths]        # doctest: +SKIP
    [5.0, 6.0, 7.0]
    """

    def __init__(
        self,
        graph: DiGraph,
        categories: CategoryIndex | None = None,
        landmarks: LandmarkIndex | int | None = 16,
        landmark_strategy: str = "farthest",
        seed: int = 0,
        kernel: str = "dict",
        prepared_cache_size: int = 32,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        query_log: QueryLogger | None = None,
        memory: MemoryTelemetry | None = None,
    ) -> None:
        if not graph.frozen:
            graph.freeze()
        if kernel not in KERNELS:
            raise QueryError(
                f"unknown kernel {kernel!r}; choose one of: {', '.join(KERNELS)}"
            )
        if prepared_cache_size < 0:
            raise QueryError(
                f"prepared_cache_size must be >= 0, got {prepared_cache_size}"
            )
        self.graph = graph
        self.categories = categories
        self.kernel = kernel
        self.prepared_cache_size = prepared_cache_size
        self.metrics = metrics
        self.tracer = tracer
        self.query_log = query_log
        self.memory = memory
        self._prepared_cache: OrderedDict[tuple, PreparedCategory] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        if kernel == "native":
            # Compile the JIT kernels now (idempotent; an immediate
            # no-op without numba) so the one-time compilation cost
            # lands in the warmup phase, never in a query's comp_sp.
            from repro.pathing import native

            t0 = perf_counter()
            native.warmup_jit()
            t1 = perf_counter()
            if metrics is not None:
                metrics.observe_phase("warmup", t1 - t0)
            if tracer is not None:
                tracer.add("warmup", t0, t1, cat="phase")
        if isinstance(landmarks, int):
            self.landmark_index: LandmarkIndex | None = LandmarkIndex.build(
                graph, landmarks, strategy=landmark_strategy, seed=seed, kernel=kernel,
                metrics=metrics,
            )
        else:
            self.landmark_index = landmarks

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def top_k(
        self,
        source: int,
        category: str | None = None,
        destinations: Sequence[int] | None = None,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """KPJ query ``{s, T, k}``: top-``k`` simple paths from
        ``source`` to a category (or an explicit destination set).
        """
        return self._solve((source,), category, destinations, k, algorithm, alpha)

    def ksp(
        self,
        source: int,
        target: int,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """KSP query: the degenerate KPJ with a single destination."""
        return self._solve((source,), None, (target,), k, algorithm, alpha)

    def join(
        self,
        source_category: str | None = None,
        category: str | None = None,
        sources: Sequence[int] | None = None,
        destinations: Sequence[int] | None = None,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """GKPJ query ``{S, T, k}``: both endpoints are node sets.

        Endpoint sets are given either as category names or as
        explicit node sequences (Section 6's virtual-source reduction
        is applied automatically).
        """
        source_nodes = self._resolve(source_category, sources, "source")
        return self._solve(source_nodes, category, destinations, k, algorithm, alpha)

    def solve_batch(
        self,
        queries: Sequence,
        workers: int = 1,
        stats: SearchStats | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        engine: str = "pool",
    ) -> list[QueryResult]:
        """Answer a list of queries, optionally across a process pool.

        Each query is a :class:`~repro.server.pool.BatchQuery` or a
        mapping with the same fields (``source`` required;
        ``category``/``destinations``, ``k``, ``algorithm``, ``alpha``
        optional).  With ``workers > 1`` the list is sharded across a
        ``multiprocessing`` pool — the graph, landmark index, and
        warmed prepared-category cache are shipped once per worker via
        fork — and results stream back **in submission order**,
        identical to what sequential solving returns.  See
        :mod:`repro.server.pool` for the sharding details and the
        platforms where the pool falls back to sequential execution.

        Pass a :class:`~repro.core.stats.SearchStats` as ``stats`` to
        collect the batch's aggregate counters: the merge of every
        result's per-query stats (across all workers) plus the
        parent-side prepared-cache warm-up that precedes a fork.

        Pass a :class:`~repro.obs.metrics.MetricsRegistry` as
        ``metrics`` to likewise collect the batch's aggregate phase
        timers/counters/gauges — per-query snapshots cross the fork
        boundary on each result and are merged on return, with the
        parent-side warm-up attributed to the ``warmup`` phase.

        Pass a :class:`~repro.obs.tracing.SpanTracer` as ``tracer`` to
        collect one batch-wide span tree: the whole call becomes a
        ``batch`` span, and each sampled query's span snapshot (local
        or shipped back from a worker process, keeping the worker's
        pid) is re-rooted under it.

        ``engine="service"`` routes the batch through the
        resident-worker tier (:mod:`repro.server.service`) instead of
        the fork-per-batch pool: workers are spawned once over
        shared-memory CSR state and answer with a warm prepared cache.
        """
        from repro.server.pool import run_batch

        return run_batch(
            self, queries, workers=workers, stats=stats, metrics=metrics,
            tracer=tracer, engine=engine,
        )

    def prepare(
        self,
        category: str | None = None,
        destinations: Sequence[int] | None = None,
    ) -> "PreparedCategory":
        """Pre-resolve a destination set for a batch of queries.

        The returned handle shares the solver's prepared-category
        cache: the Eq. (2) target-bound vector, the ``G_Q`` overlay
        (and its CSR export under the flat kernel), and the backward
        SPT seed are computed once per ``(destination set, landmark
        configuration)`` and reused by every ``top_k`` / ``join``
        issued against the handle *or* directly against the solver —
        the paper's "computed once for each query" step, hoisted
        across the workload.
        """
        with maybe_phase(self.metrics, "prepare"):
            dest = self._resolve(category, destinations, "destination")
            return self._prepared(
                self._canonical_destinations(dest), None, self.metrics
            )

    def cache_info(self) -> dict[str, int]:
        """Prepared-category cache occupancy, bound, and lifetime counters."""
        return {
            "entries": len(self._prepared_cache),
            "size_bound": self.prepared_cache_size,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(
        self,
        category: str | None,
        nodes: Sequence[int] | None,
        role: str,
    ) -> tuple[int, ...]:
        if nodes is not None:
            if category is not None:
                raise QueryError(f"give either a {role} category or nodes, not both")
            return tuple(nodes)
        if category is None:
            raise QueryError(f"query needs a {role} category or explicit nodes")
        if self.categories is None:
            raise QueryError(
                "solver was built without a CategoryIndex; pass explicit nodes"
            )
        return self.categories.nodes_of(category)

    def _canonical_destinations(self, destinations: Sequence[int]) -> tuple[int, ...]:
        """Deduplicated, sorted, range-checked destination tuple."""
        if not destinations:
            raise QueryError("query needs at least one destination node")
        n = self.graph.n
        for node in destinations:
            if not 0 <= node < n:
                raise QueryError(f"query node {node} out of range [0, {n})")
        return tuple(sorted(set(destinations)))

    def _prepared(
        self,
        dest: tuple[int, ...],
        stats: SearchStats | None,
        metrics: MetricsRegistry | None = None,
    ) -> "PreparedCategory":
        """Fetch or build the prepared artefacts for ``dest`` (LRU).

        The cache key is the canonical destination tuple plus the
        landmark configuration — a different landmark set implies
        different bound vectors, so the two must never alias.  Hit and
        miss counters are recorded on ``stats`` when given; occupancy
        gauges on ``metrics`` when given.
        """
        lm = self.landmark_index
        key = (dest, lm.landmarks if lm is not None else None)
        cache = self._prepared_cache
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            self._cache_hits += 1
            if stats is not None:
                stats.prepared_cache_hits += 1
            if metrics is not None:
                metrics.inc("prepared_cache_hits")
            return hit
        self._cache_misses += 1
        if stats is not None:
            stats.prepared_cache_misses += 1
        bounds = lm.to_target_bounds(dest) if lm is not None else ZERO_BOUNDS
        prepared = PreparedCategory(self, dest, bounds)
        if self.prepared_cache_size > 0:
            cache[key] = prepared
            while len(cache) > self.prepared_cache_size:
                cache.popitem(last=False)
        if metrics is not None:
            metrics.inc("prepared_cache_misses")
            metrics.set_gauge("prepared_cache_entries", len(cache))
            # Dominant cost per entry: the Eq. (2) bound vector, one
            # float per node (the overlay/CSR are lazy and shared).
            metrics.set_gauge("prepared_cache_bytes", len(cache) * self.graph.n * 8)
        return prepared

    def _solve(
        self,
        sources: tuple[int, ...],
        category: str | None,
        destinations: Sequence[int] | None,
        k: int,
        algorithm: str,
        alpha: float,
        prepared: "PreparedCategory | None" = None,
        target_bounds: Callable[[int], float] | None = None,
    ) -> QueryResult:
        t_start = perf_counter()
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        try:
            run = ALGORITHMS[algorithm]
        except KeyError:
            known = ", ".join(sorted(ALGORITHMS))
            raise QueryError(
                f"unknown algorithm {algorithm!r}; choose one of: {known}"
            ) from None
        stats = SearchStats()
        # Stable query id: stamped on the result, the root span, and
        # every log event; readable below the solver via the
        # current_query_id contextvar (fork-safe — see repro.obs.log).
        query_id = new_query_id()
        qid_token = current_query_id.set(query_id)
        # Fresh per-query registry: its snapshot rides back on the
        # result (picklable across the pool's fork boundary) and is
        # merged into the solver-lifetime registry afterwards.
        qreg = MetricsRegistry() if self.metrics is not None else None
        # Same pattern for the tracer, plus the sampling decision —
        # the per-query tracer always records (stride 1); the solver
        # tracer decides *whether* this query is traced at all.
        qtr = None
        if self.tracer is not None and self.tracer.sample():
            qtr = SpanTracer(capacity=self.tracer.capacity)
        root_span = (
            qtr.begin("query", cat="query", algorithm=algorithm,
                      kernel=self.kernel, k=k, query_id=query_id)
            if qtr is not None
            else None
        )
        try:
            return self._solve_inner(
                sources, category, destinations, k, algorithm, alpha, prepared,
                target_bounds, t_start, stats, query_id, qreg, qtr, root_span,
            )
        finally:
            current_query_id.reset(qid_token)

    def _mem_phase(self, name: str, qreg: MetricsRegistry | None):
        if self.memory is None:
            return nullcontext()
        return self.memory.phase(name, qreg)

    def _solve_inner(
        self,
        sources: tuple[int, ...],
        category: str | None,
        destinations: Sequence[int] | None,
        k: int,
        algorithm: str,
        alpha: float,
        prepared: "PreparedCategory | None",
        target_bounds: Callable[[int], float] | None,
        t_start: float,
        stats: SearchStats,
        query_id: str,
        qreg: MetricsRegistry | None,
        qtr: SpanTracer | None,
        root_span: dict | None,
    ) -> QueryResult:
        run = ALGORITHMS[algorithm]
        with maybe_phase(qreg, "prepare"), \
                self._mem_phase("prepare", qreg), \
                maybe_span(qtr, "prepare", cat="phase") as prep_span:
            cache_hits_before = stats.prepared_cache_hits
            if prepared is None:
                dest = self._canonical_destinations(
                    self._resolve(category, destinations, "destination")
                )
                prepared = self._prepared(dest, stats, qreg)
            else:
                self._cache_hits += 1
                stats.prepared_cache_hits += 1
                if qreg is not None:
                    qreg.inc("prepared_cache_hits")
            if len(set(sources)) == 1:
                qg = prepared.query_graph_for(sources[0])
            else:
                qg = build_query_graph(self.graph, sources, prepared.destinations)
            if target_bounds is None:
                target_bounds = prepared.target_bounds
            if self.landmark_index is not None:
                # Lazy: columns of the landmark matrix are reduced on first
                # use per node.  Algorithms that never consult the source
                # bound (DA, BestFirst, plain IterBound) now skip the
                # O(|L| n) vector build entirely; SPT_I touches a handful
                # of columns; SPT_P converts to the eager vector itself.
                source_bounds = self.landmark_index.lazy_source_bounds(qg.sources)
            else:
                source_bounds = ZERO_BOUNDS
            if prep_span is not None:
                prep_span["attrs"]["cache"] = (
                    "hit" if stats.prepared_cache_hits > cache_hits_before else "miss"
                )
        ctx = QueryContext(
            target_bounds=target_bounds,
            source_bounds=source_bounds,
            alpha=alpha,
            stats=stats,
            metrics=qreg,
            tracer=qtr,
        )
        t_search = perf_counter()
        with use_kernel(self.kernel), self._mem_phase("search", qreg), \
                maybe_span(qtr, "search", cat="search"):
            raw = run(qg, k, ctx)
        search_s = perf_counter() - t_search
        paths = [Path(length=p.length, nodes=qg.strip(p.nodes)) for p in raw]
        elapsed_ms = (perf_counter() - t_start) * 1000.0
        snapshot = None
        if qreg is not None:
            # Residue of the search interval not attributed to a named
            # phase (baseline algorithms, driver bookkeeping) — keeps
            # the phase taxonomy tiling elapsed_ms.
            qreg.observe_phase(
                "search_other", max(0.0, search_s - qreg.phase_seconds(SEARCH_PHASES))
            )
            qreg.inc("queries")
            qreg.observe("query_latency_ms", elapsed_ms)
            # Per-kernel dispatch counts (``kpj query --metrics``):
            # which substrate the query's searches actually ran on.
            for kern in KERNELS:
                calls = getattr(stats, f"{kern}_kernel_calls")
                if calls:
                    qreg.inc(f"kernel_dispatch_{kern}", calls)
            if self.memory is not None:
                # Byte gauges: idle scratch buffers pooled on the base
                # graph's CSR snapshot and on the G_Q overlay's.
                overlay = prepared._gq_graph if prepared is not None else None
                for key, value in graph_pool_bytes(self.graph, overlay).items():
                    qreg.set_gauge(key, value)
                self.memory.record_gauges(qreg)
            snapshot = qreg.as_dict()
            self.metrics.merge(qreg)
        trace_snapshot = None
        if qtr is not None:
            qtr.end(root_span, paths=len(paths))
            trace_snapshot = qtr.as_dict()
            self.tracer.absorb(trace_snapshot)
        result = QueryResult(
            paths=paths,
            algorithm=algorithm,
            stats=stats,
            elapsed_ms=elapsed_ms,
            metrics=snapshot,
            trace=trace_snapshot,
            query_id=query_id,
        )
        if self.query_log is not None:
            self.query_log.log_query(
                result,
                query_id=query_id,
                kernel=self.kernel,
                sources=sources,
                category=category,
                destinations=len(prepared.destinations),
                k=k,
            )
        return result


class PreparedCategory:
    """One destination set's source-independent query artefacts.

    Produced by :meth:`KPJSolver.prepare` (or internally by the
    solver's LRU cache); issue any number of ``top_k`` / ``join``
    calls without re-deriving the Eq. (2) bounds, the ``G_Q`` overlay,
    or the backward SPT.  Everything beyond the bound vector is built
    lazily on first use, so an entry costs ``O(n)`` floats until a
    query actually needs more.
    """

    def __init__(
        self,
        solver: KPJSolver,
        destinations: tuple[int, ...],
        target_bounds: Callable[[int], float],
    ) -> None:
        self._solver = solver
        self.destinations = destinations
        self.target_bounds = target_bounds
        self._gq_graph: DiGraph | None = None
        self._backward_spt = None

    # -- cached artefacts ------------------------------------------------
    def query_graph_for(self, source: int) -> QueryGraph:
        """The single-source :class:`QueryGraph` for ``source``.

        The underlying ``G_Q`` overlay (base graph plus virtual
        target) does not depend on the source, so it is built once and
        shared by every KPJ/KSP query against this destination set;
        only the tiny :class:`QueryGraph` wrapper is per-query.
        """
        base = self._solver.graph
        if not 0 <= source < base.n:
            raise QueryError(f"query node {source} out of range [0, {base.n})")
        if self._gq_graph is None:
            self._gq_graph = build_query_graph(
                base, (source,), self.destinations
            ).graph
        return QueryGraph(
            base=base,
            graph=self._gq_graph,
            source=source,
            target=base.n,
            destinations=self.destinations,
            sources=(source,),
        )

    def csr_overlay(self):
        """CSR export of the ``G_Q`` overlay, cached on the overlay.

        This is what the flat kernels run on; materialising it here
        (rather than per query) is the cross-query saving.
        """
        from repro.graph.csr import shared_csr

        if self._gq_graph is None:
            # Any in-range source materialises the source-independent rows.
            self._gq_graph = build_query_graph(
                self._solver.graph, (self.destinations[0],), self.destinations
            ).graph
        return shared_csr(self._gq_graph)

    def backward_spt(self):
        """Full backward SPT toward the virtual target, cached.

        ``dist[v]`` is the *exact* distance from ``v`` to the nearest
        destination — the tightest possible target bound (it dominates
        the Eq. (2) landmark estimate, Prop. 5.1) and the seed from
        which partial-SPT variants can be answered without a fresh
        backward search.
        """
        from repro.pathing.spt import build_spt_to_target

        if self._backward_spt is None:
            overlay = self.csr_overlay()  # ensures the overlay graph exists
            del overlay
            self._backward_spt = build_spt_to_target(
                self._gq_graph, self._solver.graph.n, kernel=self._solver.kernel
            )
        return self._backward_spt

    def exact_target_bounds(self) -> TargetBounds:
        """A :class:`TargetBounds` built from :meth:`backward_spt`.

        Exact distances are valid, consistent A* heuristics on
        ``G_Q``, so they can replace the landmark vector wherever it
        is accepted — results are identical, exploration is minimal.
        """
        import numpy as np

        spt = self.backward_spt()
        return TargetBounds(np.asarray(spt.dist[: self._solver.graph.n]))

    # -- queries ---------------------------------------------------------
    def top_k(
        self,
        source: int,
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
        exact_bounds: bool = False,
    ) -> QueryResult:
        """KPJ query against the prepared destination set.

        ``exact_bounds=True`` swaps the Eq. (2) landmark vector for
        the cached backward-SPT distances (see
        :meth:`exact_target_bounds`).
        """
        bounds = self.exact_target_bounds() if exact_bounds else None
        return self._solver._solve(
            (source,),
            None,
            self.destinations,
            k,
            algorithm,
            alpha,
            prepared=self,
            target_bounds=bounds,
        )

    def join(
        self,
        sources: Sequence[int],
        k: int = 10,
        algorithm: str = DEFAULT_ALGORITHM,
        alpha: float = 1.1,
    ) -> QueryResult:
        """GKPJ query against the prepared destination set."""
        return self._solver._solve(
            tuple(sources),
            None,
            self.destinations,
            k,
            algorithm,
            alpha,
            prepared=self,
        )
