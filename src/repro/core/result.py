"""Result types returned by every solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.stats import SearchStats

__all__ = ["Path", "QueryResult"]


@dataclass(frozen=True, order=True)
class Path:
    """A simple path and its length.

    Ordered by ``(length, nodes)`` so result lists sort the way the
    paper ranks paths (non-decreasing length, ties broken
    deterministically).
    """

    length: float
    nodes: tuple[int, ...]

    def to_dict(self) -> dict:
        """JSON-ready representation (``{"length": ..., "nodes": [...]}``)."""
        return {"length": self.length, "nodes": list(self.nodes)}

    @property
    def source(self) -> int:
        """First node of the path."""
        return self.nodes[0]

    @property
    def destination(self) -> int:
        """Last node of the path."""
        return self.nodes[-1]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)


@dataclass
class QueryResult:
    """The answer to one KPJ / KSP / GKPJ query.

    Attributes
    ----------
    paths:
        At most ``k`` paths, non-decreasing in length.  Fewer than
        ``k`` means the graph contains fewer simple paths to the
        destination set.
    algorithm:
        Registry name of the algorithm that produced the answer.
    stats:
        Instrumentation counters (shortest-path computations, settled
        nodes, ...) — the quantities Lemma 4.1 reasons about.
    elapsed_ms:
        End-to-end wall clock of the query, measured once inside the
        solver — every surface (CLI, bench harness, batch reports)
        reads this one number instead of re-timing the call.
    metrics:
        Per-query :meth:`~repro.obs.metrics.MetricsRegistry.as_dict`
        snapshot (phase timers, gauges) when the solver has metrics
        enabled; ``None`` otherwise.  A plain dict so it crosses the
        batch pool's fork boundary like the stats counters do.
    trace:
        Per-query :meth:`~repro.obs.tracing.SpanTracer.as_dict` span
        snapshot when the solver has a tracer attached and this query
        was sampled; ``None`` otherwise.  Also a plain dict — pool
        workers ship it back with the result and
        :func:`~repro.server.pool.run_batch` re-roots it under the
        batch span.
    query_id:
        Stable id minted by the solver for this query
        (:func:`~repro.obs.log.new_query_id`), the join key between
        log events, slow-query dumps, trace trees, and batch reports.
        A plain string, so it too survives the fork boundary.
    timing:
        Serving-side timestamps stamped by
        :func:`~repro.server.pool.run_batch`, the resident
        :class:`~repro.server.service.QueryService`, and the load-test
        replay engine: ``enqueued_at_s``/``started_at_s`` monotonic
        offsets from the process-wide
        :func:`~repro.server.epoch.service_epoch` plus the derived
        ``queue_wait_s``, so queue wait is attributable separately
        from the service time in :attr:`elapsed_ms` and offsets from
        different batches/targets share one timeline.  ``None``
        outside batch/service/load-test serving.  A plain dict —
        workers stamp their half (``started_at_s``) and the parent
        merges the enqueue side after results cross the fork boundary.
    """

    paths: list[Path]
    algorithm: str
    stats: SearchStats = field(default_factory=SearchStats)
    elapsed_ms: float = 0.0
    metrics: dict | None = None
    trace: dict | None = None
    query_id: str | None = None
    timing: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation including stats counters."""
        out = {
            "algorithm": self.algorithm,
            "elapsed_ms": self.elapsed_ms,
            "paths": [p.to_dict() for p in self.paths],
            "stats": self.stats.as_dict(),
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.trace is not None:
            out["trace"] = self.trace
        if self.query_id is not None:
            out["query_id"] = self.query_id
        if self.timing is not None:
            out["timing"] = self.timing
        return out

    @property
    def lengths(self) -> tuple[float, ...]:
        """The path lengths, in order."""
        return tuple(p.length for p in self.paths)

    @property
    def k_found(self) -> int:
        """Number of paths actually found."""
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def __len__(self) -> int:
        return len(self.paths)
