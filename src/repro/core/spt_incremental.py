"""``IterBound-SPT_I`` (Section 5.3, Algs. 7–8) — the paper's best method.

``SPT_P`` starts from *all* destinations, which is wasteful when the
category is large.  The incremental tree ``SPT_I`` instead grows
*forward* from the source: the first phase is the query's initial
shortest-path computation (an A* from ``s`` prioritised by
``ds(w) + lb(w, V_T)``), whose live priority queue is kept around;
each time the iteratively bounding driver is about to test a subspace
at threshold ``τ``, the tree is enlarged by popping every queue entry
with key ≤ ``τ`` (Alg. 7).  Prop. 5.2 then guarantees the tree
contains *every* node of *every* source-to-destination path of length
≤ ``τ``, which licenses two accelerations:

* lower-bound testing (``TestLB-SPT_I``) prunes all nodes outside the
  tree and reads ``lb(s, w)`` as the exact tree distance ``ds(w)``;
* the one-hop bound (``CompLB-SPT_I``, Alg. 8) restricts the virtual
  target's in-neighbours to ``D`` — the destinations settled so far —
  instead of the whole of ``V_T``.

The subspace search runs in *reverse* orientation (root = virtual
target, goal = source, on the reversed ``G_Q``): prefixes are the
paper's ``P_{t,u}`` suffixes, and the remaining-distance heuristic of
a reverse search is precisely "distance from ``s``", which is what
the tree knows exactly.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.core.flat_engine import flat_spti_search
from repro.core.iter_bound import iter_bound_search
from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.core.subspace import Subspace
from repro.graph.virtual import QueryGraph
from repro.pathing.kernels import active_kernel

__all__ = ["IncrementalSPT", "iter_bound_spti"]

INF = float("inf")


class IncrementalSPT:
    """Alg. 7: a forward shortest-path tree grown on demand.

    The queue (the paper's ``Q_T``) persists across enlargements; a
    node's distance from the source is exact once it is settled.
    """

    __slots__ = (
        "_adjacency",
        "_source",
        "_target_bounds",
        "_destinations",
        "settled",
        "parent",
        "settled_destinations",
        "_dist",
        "_heap",
        "_stats",
    )

    def __init__(
        self,
        query_graph: QueryGraph,
        target_bounds: Callable[[int], float],
        stats: SearchStats | None = None,
    ) -> None:
        self._adjacency = query_graph.graph.adjacency
        self._source = query_graph.source
        self._target_bounds = target_bounds
        self._destinations = frozenset(query_graph.destinations)
        #: exact distance from the source for every settled node.
        self.settled: dict[int, float] = {}
        self.parent: dict[int, int] = {}
        #: the paper's ``D`` — destination nodes already in the tree.
        self.settled_destinations: set[int] = set()
        self._dist: dict[int, float] = {self._source: 0.0}
        self._heap: list[tuple[float, int]] = [
            (target_bounds(self._source), self._source)
        ]
        self._stats = stats
        if stats is not None:
            stats.heap_pushes += 1

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _settle_next(self) -> int | None:
        """Pop and settle one node; returns it (or None if exhausted)."""
        heap = self._heap
        settled = self.settled
        while heap:
            _, u = heappop(heap)
            if self._stats is not None:
                self._stats.heap_pops += 1
            if u in settled:
                continue
            du = self._dist[u]
            settled[u] = du
            if u in self._destinations:
                self.settled_destinations.add(u)
            if self._stats is not None:
                self._stats.nodes_settled += 1
            bounds = self._target_bounds
            dist = self._dist
            for v, w in self._adjacency[u]:
                if v in settled:
                    continue
                nd = du + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    self.parent[v] = u
                    heappush(heap, (nd + bounds(v), v))
                    if self._stats is not None:
                        self._stats.edges_relaxed += 1
                        self._stats.heap_pushes += 1
            return u
        return None

    def build_initial(self, target: int) -> tuple[tuple[int, ...], float] | None:
        """Phase one: settle until ``target`` is reached.

        Returns the first shortest path (source → … → target) and its
        length, or ``None`` if the target is unreachable.  This is the
        by-product construction invoked at line 1 of Alg. 4.
        """
        while True:
            u = self._settle_next()
            if u is None:
                return None
            if u == target:
                path = [u]
                node = u
                while node != self._source:
                    node = self.parent[node]
                    path.append(node)
                path.reverse()
                return tuple(path), self.settled[u]

    def grow(self, tau: float) -> None:
        """Phase two (Alg. 7): settle every node with key ≤ ``tau``."""
        heap = self._heap
        while heap:
            key, u = heap[0]
            if key > tau:
                return
            if u in self.settled:
                heappop(heap)
                if self._stats is not None:
                    self._stats.heap_pops += 1
                continue
            self._settle_next()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self.settled

    def __len__(self) -> int:
        return len(self.settled)

    def distance(self, v: int) -> float | None:
        """Exact ``ds(v)`` if settled, else ``None``."""
        return self.settled.get(v)


class _SPTIHeuristic:
    """Remaining-distance bound for the reverse search.

    Settled nodes answer with the exact ``ds``; everything else is
    ``inf``, which the bounded A* treats as "prune" — implementing the
    paper's "prune all nodes that are not in SPT_I".  (Prop. 5.2 makes
    this safe: after ``grow(τ)`` every node of every ≤ τ path is
    settled.)
    """

    __slots__ = ("_settled",)

    def __init__(self, tree: IncrementalSPT) -> None:
        self._settled = tree.settled

    def __call__(self, v: int) -> float:
        return self._settled.get(v, INF)


def iter_bound_spti(
    query_graph: QueryGraph,
    k: int,
    target_bounds: Callable[[int], float],
    source_bounds: Callable[[int], float],
    alpha: float = 1.1,
    stats: SearchStats | None = None,
    flat_core: bool | None = None,
    trace=None,
    metrics=None,
    tracer=None,
) -> list[Path]:
    """Top-``k`` paths via the incremental-SPT iteratively bounding search.

    Parameters
    ----------
    target_bounds:
        ``lb(w, V_T)`` — Alg. 7's queue key term.  Pass
        :data:`~repro.landmarks.index.ZERO_BOUNDS` for the paper's
        no-landmark (``IterBound_I``-NL) variant, which turns the tree
        growth into plain Dijkstra but leaves everything else intact
        (Section 6).
    source_bounds:
        ``lb(s, v)`` — Alg. 8's fallback for nodes outside the tree.
    flat_core:
        Tri-state engine switch.  ``None`` (default) follows the
        ambient kernel: under ``"flat"`` or ``"native"`` the whole
        query runs on :func:`~repro.core.flat_engine.flat_spti_search`
        (with native leaves, the compiled incremental tree, and the
        batched CompSP hook under ``"native"``).  ``False`` forces the
        dict tree/driver with per-call kernel dispatch in the leaves —
        the pre-flat-core configuration, kept addressable so
        benchmarks can measure the engine against it.  ``True`` forces
        the flat engine regardless of the ambient kernel.
    trace:
        Optional :class:`~repro.core.trace.SearchTrace`; both engines
        record the identical ``output``/``test-hit``/``test-miss``/
        ``retire`` event sequence (the flat-vs-dict trace-equivalence
        test asserts it), so ``kpj explain`` narrates either kernel.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        phase attribution: ``comp_sp`` for the initial tree build,
        then the driver's ``spt_grow``/``test_lb``/``division``.
    tracer:
        Optional :class:`~repro.obs.tracing.SpanTracer`; the initial
        tree build becomes a ``comp_sp`` span and the driver records
        its span taxonomy with ``bound_kind="spt_i"`` (pruning is by
        exact tree distances; Prop. 5.2).

    Returns paths in ``G_Q`` coordinates (source → … → virtual target).
    """
    engine_kernel = "flat"
    if flat_core is None:
        kern = active_kernel()
        flat_core = kern != "dict"
        if flat_core:
            engine_kernel = kern
    if flat_core:
        return flat_spti_search(
            query_graph, k, target_bounds, source_bounds, alpha=alpha, stats=stats,
            trace=trace, metrics=metrics, tracer=tracer, kernel=engine_kernel,
        )
    stats = stats if stats is not None else SearchStats()
    tree = IncrementalSPT(query_graph, target_bounds, stats=stats)
    stats.shortest_path_computations += 1
    if metrics is not None or tracer is not None:
        from time import perf_counter

        t0 = perf_counter()
        initial = tree.build_initial(query_graph.target)
        t1 = perf_counter()
        if metrics is not None:
            metrics.observe_phase("comp_sp", t1 - t0)
        if tracer is not None:
            tracer.add("comp_sp", t0, t1, cat="phase")
    else:
        initial = tree.build_initial(query_graph.target)
    if initial is None:
        return []
    first_path, first_length = initial

    reversed_graph = query_graph.reversed_graph()
    in_adjacency = reversed_graph.adjacency  # in-edges of G_Q
    target = query_graph.target
    destinations = frozenset(query_graph.destinations)
    settled = tree.settled
    heuristic = _SPTIHeuristic(tree)

    def comp_lb(subspace: Subspace) -> float:
        """Alg. 8 (CompLB-SPT_I), in reverse-orientation terms."""
        u = subspace.head
        prefix = subspace.prefix
        banned = subspace.banned
        base = subspace.prefix_weight
        best = INF
        if u == target:
            for v in tree.settled_destinations:
                if v in banned or v in prefix:
                    continue
                estimate = base + settled[v]
                if estimate < best:
                    best = estimate
            if best == INF and len(tree.settled_destinations) < len(destinations):
                # Unsettled destinations may still open this subspace
                # later; 0 keeps it alive (Alg. 8 line 8).
                return 0.0
            return best
        for v, w in in_adjacency[u]:
            if v in banned or v in prefix:
                continue
            ds = settled.get(v)
            if ds is None:
                ds = source_bounds(v)
            estimate = base + w + ds
            if estimate < best:
                best = estimate
        return best

    reverse_paths = iter_bound_search(
        reversed_graph,
        target,
        query_graph.source,
        k,
        heuristic,
        alpha=alpha,
        stats=stats,
        initial=(tuple(reversed(first_path)), first_length),
        comp_lb=comp_lb,
        before_test=tree.grow,
        use_flat_engine=False,
        trace=trace,
        metrics=metrics,
        tracer=tracer,
        bound_kind="spt_i",
    )
    stats.spt_nodes = len(tree)
    return [
        Path(length=p.length, nodes=tuple(reversed(p.nodes))) for p in reverse_paths
    ]
