"""``IterBound-SPT_P`` (Section 5.2).

DA-SPT pays for a *full* shortest-path tree before answering anything;
this variant instead keeps the **partial** tree that falls out of the
query's very first shortest-path computation (Alg. 6): the backward
A* from the destination set settles a set of nodes before reaching
the source, and for exactly those nodes the distance to the
destination set is already exact (Prop. 5.1).  ``lb(v, V_T)`` is then
answered from the tree when possible — an exact value always
dominates the landmark estimate, and for lower bounds larger is
better — and from Eq. (2) otherwise.
"""

from __future__ import annotations

from typing import Callable

from repro.core.iter_bound import iter_bound_search
from repro.core.result import Path
from repro.core.stats import SearchStats
from repro.graph.virtual import QueryGraph
from repro.pathing.spt import PartialSPT, build_partial_spt

__all__ = ["SPTPHeuristic", "iter_bound_sptp"]


class SPTPHeuristic:
    """``lb(v, V_T)`` backed by ``SPT_P`` with a landmark fallback.

    Tree hits return the exact distance to the destination set;
    misses fall back to the supplied bound (Eq. (2) or zero).
    Virtual nodes resolve through the fallback, which already maps
    them to 0.
    """

    __slots__ = ("_tree_dist", "_fallback")

    def __init__(self, tree: PartialSPT, fallback: Callable[[int], float]) -> None:
        self._tree_dist = tree.dist_to_targets
        self._fallback = fallback

    def __call__(self, v: int) -> float:
        exact = self._tree_dist.get(v)
        if exact is not None:
            return exact
        return self._fallback(v)

    def dense(self, size: int) -> list[float]:
        """Flat-engine mirror: fallback vector with the tree overlaid.

        Entry ``v`` equals ``self(v)`` bit-for-bit, so the flat-core
        driver can index instead of calling.  Not cached — the tree is
        per-query and the copy is one ``O(n)`` pass.
        """
        base = getattr(self._fallback, "dense", None)
        if base is not None:
            mirror = list(base(size))
        else:
            fallback = self._fallback
            mirror = [fallback(v) for v in range(size)]
        for v, exact in self._tree_dist.items():
            if v < size:
                mirror[v] = exact
        return mirror


def iter_bound_sptp(
    query_graph: QueryGraph,
    k: int,
    target_bounds: Callable[[int], float],
    source_bounds: Callable[[int], float],
    alpha: float = 1.1,
    stats: SearchStats | None = None,
    metrics=None,
    tracer=None,
) -> list[Path]:
    """Top-``k`` paths via the iteratively bounding search over ``SPT_P``.

    Parameters
    ----------
    target_bounds:
        Landmark Eq. (2) bound ``lb(v, V_T)`` — the fallback for
        nodes outside the tree.
    source_bounds:
        Landmark bound ``lb(s, v)`` — Alg. 6's backward-A* priority
        term.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the
        Alg. 6 backward build (the query's one unconditional
        shortest-path computation *and* its partial-tree growth) is
        attributed to ``comp_sp``, the driver's phases follow.
    tracer:
        Optional :class:`~repro.obs.tracing.SpanTracer`; the Alg. 6
        build becomes a ``comp_sp`` span (tree size as attribute) and
        the driver records its span taxonomy with
        ``bound_kind="spt_p"``.

    Returns paths in ``G_Q`` coordinates.
    """
    from time import perf_counter

    stats = stats if stats is not None else SearchStats()
    graph = query_graph.graph
    # Seeding the backward A* at the virtual target is equivalent to
    # seeding every destination at distance zero (the reverse adjacency
    # of t is exactly V_T with zero weights).
    stats.shortest_path_computations += 1
    if metrics is not None or tracer is not None:
        t0 = perf_counter()
        tree = build_partial_spt(
            graph,
            query_graph.source,
            (query_graph.target,),
            source_bounds,
            stats=stats,
        )
        t1 = perf_counter()
        if metrics is not None:
            metrics.observe_phase("comp_sp", t1 - t0)
            metrics.set_gauge("sptp_tree_nodes", len(tree))
        if tracer is not None:
            tracer.add(
                "comp_sp", t0, t1, cat="phase",
                attrs={"tree_nodes": len(tree)},
            )
    else:
        tree = build_partial_spt(
            graph,
            query_graph.source,
            (query_graph.target,),
            source_bounds,
            stats=stats,
        )
    stats.spt_nodes = len(tree)
    if tree.source_path is None:
        return []
    first_length = tree.dist_to_targets[query_graph.source]
    heuristic = SPTPHeuristic(tree, target_bounds)
    return iter_bound_search(
        graph,
        query_graph.source,
        query_graph.target,
        k,
        heuristic,
        alpha=alpha,
        stats=stats,
        initial=(tree.source_path, first_length),
        metrics=metrics,
        tracer=tracer,
        bound_kind="spt_p",
    )
