"""Instrumentation counters shared by all algorithms.

The paper's central efficiency claims are about *how much work* each
paradigm does — the number of shortest-path computations (Lemma 4.1),
the exploration area of lower-bound tests (Section 5), the cost of
building shortest-path trees.  :class:`SearchStats` records exactly
those quantities so tests can assert the lemmas and benchmarks can
report them next to wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["SearchStats", "WORK_PARITY_FIELDS"]

#: Counters expected to agree **exactly** across the dict, flat, and
#: native kernels for any one query (the fuzz harness asserts this on
#: the pinned corpus).  Excluded by design: the per-substrate
#: ``*_kernel_calls`` dispatch counters (they record *which* kernel
#: ran), and ``batch_rounds`` / ``batch_slots_filled`` (the batched
#: multi-source CompSP exists only on the native tier — the dict and
#: flat engines always run the sequential schedule, so their occupancy
#: is zero by construction).  ``nodes_settled`` is additionally
#: excluded for ``da-spt`` only: its full-SPT build counts settles on
#: the dict substrate but not on the scipy/compiled array paths (see
#: :func:`repro.pathing.spt.build_spt_to_target`).
WORK_PARITY_FIELDS: tuple[str, ...] = (
    "shortest_path_computations",
    "lower_bound_computations",
    "lb_tests",
    "lb_test_failures",
    "lb_test_hits",
    "lb_test_misses",
    "lb_test_retires",
    "nodes_settled",
    "edges_relaxed",
    "heap_pushes",
    "heap_pops",
    "spt_nodes",
    "subspaces_created",
    "subspaces_pruned",
    "prepared_cache_hits",
    "prepared_cache_misses",
)


@dataclass
class SearchStats:
    """Mutable counters threaded through the search kernels.

    Attributes
    ----------
    shortest_path_computations:
        Full constrained shortest-path searches (``CompSP`` calls, or
        candidate-path computations in the deviation paradigm).
    lower_bound_computations:
        ``CompLB`` evaluations (cheap, neighbour-only).
    lb_tests / lb_test_failures:
        ``TestLB`` invocations and how many returned "bound holds"
        (i.e. pruned without producing a path).
    lb_test_hits / lb_test_misses / lb_test_retires:
        Verdict tallies from the iteratively bounding driver: a *hit*
        found the subspace's shortest path within the current bound, a
        *retire* proved the subspace exhausted (or past the length
        limit), and a *miss* merely re-queued it at a larger ``τ``.
        Counted once per tested subspace regardless of whether the
        sequential or the batched schedule executed the test, so they
        are kernel-parity counters.
    nodes_settled / edges_relaxed:
        Priority-queue pops with exact distances / successful edge
        relaxations, across every kernel of the query.
    heap_pushes / heap_pops:
        Priority-queue traffic of the *query-scoped* search kernels:
        the constrained bounded-A*/Dijkstra bodies (dict, flat, and
        native alike) and the incremental ``SPT_I`` trees.  Includes
        lazy-deletion pops of stale entries.  Whole-graph
        preprocessing sweeps (landmark selection, full backward SPTs,
        scipy/compiled SSSP) and driver-level queues (the subspace
        priority queue, deviation candidate heaps) are *not* counted —
        they are either kernel-asymmetric by construction or not heap
        kernels at all.
    batch_rounds / batch_slots_filled:
        Occupancy of the batched multi-source ``CompSP`` tier: rounds
        dispatched and request slots actually executed (the batch stops
        at the first result that deviates from the sequential
        schedule, so filled ≤ ``BATCH_TESTS`` × rounds).  Native-only;
        zero on the dict and flat engines.
    spt_nodes:
        Final size of the SPT index built for the query (full SPT for
        DA-SPT, ``SPT_P`` or ``SPT_I`` for the indexed variants).
    subspaces_created / subspaces_pruned:
        Subspaces produced by division / subspaces discarded without a
        shortest-path computation (empty or still unresolved when the
        k-th path was confirmed).
    dict_kernel_calls / flat_kernel_calls / native_kernel_calls:
        Kernel dispatches per substrate — how many constrained
        searches / SPT builds ran on the dict arrangement, the flat
        CSR arrays, or the compiled native tier (see
        :mod:`repro.pathing.kernels`).  A ``native`` query that falls
        back to a flat leaf (callable heuristic, numba absent for an
        unconstrained kernel) still counts as a native dispatch — the
        counter records what the caller asked for.
    prepared_cache_hits / prepared_cache_misses:
        Whether this query's destination set was served from the
        solver's prepared-category cache (bounds + ``G_Q`` overlay
        reused) or had to be derived from scratch.
    """

    shortest_path_computations: int = 0
    lower_bound_computations: int = 0
    lb_tests: int = 0
    lb_test_failures: int = 0
    lb_test_hits: int = 0
    lb_test_misses: int = 0
    lb_test_retires: int = 0
    nodes_settled: int = 0
    edges_relaxed: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    batch_rounds: int = 0
    batch_slots_filled: int = 0
    spt_nodes: int = 0
    subspaces_created: int = 0
    subspaces_pruned: int = 0
    dict_kernel_calls: int = 0
    flat_kernel_calls: int = 0
    native_kernel_calls: int = 0
    prepared_cache_hits: int = 0
    prepared_cache_misses: int = 0

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Add another stats object into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot, for reporting."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def nonzero(self) -> dict[str, int]:
        """Only the counters that recorded anything, field order kept.

        Reporting surfaces (``kpj ... --stats``) print this instead of
        the full snapshot so a dict-kernel query does not list
        ``flat_kernel_calls 0`` and vice versa.
        """
        return {name: value for name, value in self.as_dict().items() if value}

    def to_json(self) -> str:
        """Stable JSON encoding (sorted keys) of :meth:`as_dict`.

        Bench and regression artifacts persist stats with this instead
        of hand-rolling dict conversions; :meth:`from_json` inverts it.
        """
        import json

        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchStats":
        """Inverse of :meth:`to_json`.

        Unknown keys raise :class:`TypeError` (a stats artifact from a
        different schema version should fail loudly, not drop fields).
        """
        import json

        return cls(**{name: int(value) for name, value in json.loads(text).items()})
