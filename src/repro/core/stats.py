"""Instrumentation counters shared by all algorithms.

The paper's central efficiency claims are about *how much work* each
paradigm does — the number of shortest-path computations (Lemma 4.1),
the exploration area of lower-bound tests (Section 5), the cost of
building shortest-path trees.  :class:`SearchStats` records exactly
those quantities so tests can assert the lemmas and benchmarks can
report them next to wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Mutable counters threaded through the search kernels.

    Attributes
    ----------
    shortest_path_computations:
        Full constrained shortest-path searches (``CompSP`` calls, or
        candidate-path computations in the deviation paradigm).
    lower_bound_computations:
        ``CompLB`` evaluations (cheap, neighbour-only).
    lb_tests / lb_test_failures:
        ``TestLB`` invocations and how many returned "bound holds"
        (i.e. pruned without producing a path).
    nodes_settled / edges_relaxed:
        Priority-queue pops with exact distances / successful edge
        relaxations, across every kernel of the query.
    spt_nodes:
        Final size of the SPT index built for the query (full SPT for
        DA-SPT, ``SPT_P`` or ``SPT_I`` for the indexed variants).
    subspaces_created / subspaces_pruned:
        Subspaces produced by division / subspaces discarded without a
        shortest-path computation (empty or still unresolved when the
        k-th path was confirmed).
    dict_kernel_calls / flat_kernel_calls / native_kernel_calls:
        Kernel dispatches per substrate — how many constrained
        searches / SPT builds ran on the dict arrangement, the flat
        CSR arrays, or the compiled native tier (see
        :mod:`repro.pathing.kernels`).  A ``native`` query that falls
        back to a flat leaf (callable heuristic, numba absent for an
        unconstrained kernel) still counts as a native dispatch — the
        counter records what the caller asked for.
    prepared_cache_hits / prepared_cache_misses:
        Whether this query's destination set was served from the
        solver's prepared-category cache (bounds + ``G_Q`` overlay
        reused) or had to be derived from scratch.
    """

    shortest_path_computations: int = 0
    lower_bound_computations: int = 0
    lb_tests: int = 0
    lb_test_failures: int = 0
    nodes_settled: int = 0
    edges_relaxed: int = 0
    spt_nodes: int = 0
    subspaces_created: int = 0
    subspaces_pruned: int = 0
    dict_kernel_calls: int = 0
    flat_kernel_calls: int = 0
    native_kernel_calls: int = 0
    prepared_cache_hits: int = 0
    prepared_cache_misses: int = 0

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Add another stats object into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot, for reporting."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def nonzero(self) -> dict[str, int]:
        """Only the counters that recorded anything, field order kept.

        Reporting surfaces (``kpj ... --stats``) print this instead of
        the full snapshot so a dict-kernel query does not list
        ``flat_kernel_calls 0`` and vice versa.
        """
        return {name: value for name, value in self.as_dict().items() if value}

    def to_json(self) -> str:
        """Stable JSON encoding (sorted keys) of :meth:`as_dict`.

        Bench and regression artifacts persist stats with this instead
        of hand-rolling dict conversions; :meth:`from_json` inverts it.
        """
        import json

        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchStats":
        """Inverse of :meth:`to_json`.

        Unknown keys raise :class:`TypeError` (a stats artifact from a
        different schema version should fail loudly, not drop fields).
        """
        import json

        return cls(**{name: int(value) for name, value in json.loads(text).items()})
