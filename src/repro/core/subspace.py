"""Search-space subspaces and their division (Section 4.1).

A subspace ``S = <P_{root,u}, X_u>`` is the set of all simple
root-to-goal paths that take ``P_{root,u}`` as a prefix and use none
of the excluded first hops ``X_u`` out of ``u``.  The entire search
space is ``<(root), {}>``.

When the shortest path ``P`` of a subspace is chosen as the next
result, :func:`divide` splits the subspace into disjoint children
(Definition 4.1 and the discussion around Fig. 3):

* one child per node ``v`` of ``P`` strictly between ``u`` and the
  goal — ``<P[:v], {next edge of P at v}>``;
* one child at ``u`` itself with the excluded set grown by ``P``'s
  first hop;
* the singleton ``{P}`` and the goal node produce no children (the
  goal has no outgoing edges in the transformed graph ``G_Q``).

The same machinery serves both orientations: the forward algorithms
search ``G_Q`` from ``s`` to the virtual target, the reverse-indexed
``IterBound-SPT_I`` searches the reversed ``G_Q`` from the virtual
target to ``s`` (its prefixes are the paper's ``P_{t,u}`` suffixes).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

__all__ = ["Subspace", "divide", "compute_lower_bound"]

INF = float("inf")


class Subspace:
    """An immutable subspace ``<prefix, banned>`` with cached prefix weight."""

    __slots__ = ("prefix", "banned", "prefix_weight", "_blocked_set")

    def __init__(
        self, prefix: tuple[int, ...], banned: frozenset[int], prefix_weight: float
    ) -> None:
        self.prefix = prefix
        self.banned = banned
        self.prefix_weight = prefix_weight
        self._blocked_set: frozenset[int] | None = None

    @property
    def head(self) -> int:
        """The deviation node ``u`` (last node of the prefix)."""
        return self.prefix[-1]

    @property
    def blocked(self) -> tuple[int, ...]:
        """Nodes a path of this subspace may not revisit (prefix minus ``u``)."""
        return self.prefix[:-1]

    @property
    def blocked_set(self) -> frozenset[int]:
        """:attr:`blocked` as a frozenset, materialised once.

        A subspace is re-tested every time the iteratively bounding
        driver enlarges ``τ``; caching the set form means the search
        kernels stop rebuilding ``set(prefix[:-1])`` on every re-test.
        """
        cached = self._blocked_set
        if cached is None:
            cached = frozenset(self.prefix[:-1])
            self._blocked_set = cached
        return cached

    @classmethod
    def entire(cls, root: int) -> "Subspace":
        """The whole search space ``S_0 = <(root), {}>``."""
        return cls((root,), frozenset(), 0.0)

    def child_at_head(self, banned_hop: int) -> "Subspace":
        """The child that keeps this prefix and bans one more first hop."""
        return Subspace(self.prefix, self.banned | {banned_hop}, self.prefix_weight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subspace(prefix={self.prefix}, banned={sorted(self.banned)}, "
            f"w={self.prefix_weight:g})"
        )


def divide(
    subspace: Subspace,
    path: tuple[int, ...],
    path_length: float,
    edge_weight: Callable[[int, int], float],
    tail_dists: Sequence[float] | None = None,
) -> Iterator[Subspace]:
    """Split ``subspace`` around its shortest path ``path``.

    ``path`` must extend ``subspace.prefix`` all the way to the goal;
    ``path_length`` is its total weight.  Yields the child subspaces
    (the singleton ``{path}`` is implicitly dropped).  ``edge_weight``
    supplies hop weights so child prefix weights accumulate without
    re-scanning adjacency.

    ``tail_dists``, when available, short-circuits even the per-hop
    weight lookups: entry ``i`` must be the prefix weight of
    ``path[: deviation + i + 1]`` (the flat ``TestLB`` kernel reports
    exactly this for the tail it settled — the same left-to-right
    float accumulation the loop below would redo, so child prefix
    weights are bit-identical either way).
    """
    deviation = len(subspace.prefix) - 1
    assert path[: deviation + 1] == subspace.prefix, "path must extend the prefix"
    yield subspace.child_at_head(path[deviation + 1])
    if tail_dists is not None:
        for j in range(deviation + 1, len(path) - 1):
            yield Subspace(
                path[: j + 1], frozenset((path[j + 1],)), tail_dists[j - deviation]
            )
        return
    weight = subspace.prefix_weight
    for j in range(deviation + 1, len(path) - 1):
        weight += edge_weight(path[j - 1], path[j])
        yield Subspace(path[: j + 1], frozenset((path[j + 1],)), weight)


def compute_lower_bound(
    adjacency: Sequence[Sequence[tuple[int, float]]],
    subspace: Subspace,
    heuristic: Callable[[int], float],
) -> float:
    """``CompLB`` (Alg. 3): one-hop lower bound of a subspace.

    Considers every valid outgoing edge ``(u, v)`` — ``v`` not on the
    prefix and not excluded — and returns the best
    ``w(prefix) + w(u, v) + lb(v, goal)``.  ``inf`` means the subspace
    is provably empty (no valid edge leaves ``u``).
    """
    u = subspace.head
    prefix = subspace.prefix
    banned = subspace.banned
    best = INF
    base = subspace.prefix_weight
    for v, w in adjacency[u]:
        if v in banned or v in prefix:
            continue
        estimate = base + w + heuristic(v)
        if estimate < best:
            best = estimate
    return best
