"""Search tracing — the iteratively bounding loop, narrated.

Understanding *why* a query was fast (or was not) requires seeing the
τ schedule: which subspaces were popped, what threshold each test
used, which tests failed cheaply and which produced paths.  A
:class:`SearchTrace` passed into the driver records exactly that, and
renders either a per-event narrative (the ``kpj explain`` command) or
an aggregate summary.

Tracing is strictly opt-in and costs nothing when absent — the driver
guards every recording site on ``trace is not None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "SearchTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One step of the search loop.

    ``kind`` is one of:

    * ``"output"`` — a subspace's path became the next result;
    * ``"test-hit"`` — ``TestLB`` found the subspace's shortest path;
    * ``"test-miss"`` — ``TestLB`` proved the bound instead;
    * ``"retire"`` — a subspace was proven empty and dropped.
    """

    kind: str
    prefix: tuple[int, ...]
    bound: float
    tau: float | None = None
    length: float | None = None

    def render(self) -> str:
        """One human-readable line."""
        head = f"[{self.kind:9s}] prefix={self.prefix}"
        parts = [head, f"lb={self.bound:.4g}"]
        if self.tau is not None:
            parts.append(f"tau={self.tau:.4g}")
        if self.length is not None:
            parts.append(f"length={self.length:.4g}")
        return "  ".join(parts)


@dataclass
class SearchTrace:
    """Event sink for one query's iteratively bounding search."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        prefix: tuple[int, ...],
        bound: float,
        tau: float | None = None,
        length: float | None = None,
    ) -> None:
        """Append one event."""
        self.events.append(
            TraceEvent(kind=kind, prefix=prefix, bound=bound, tau=tau, length=length)
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Events per kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def tau_schedule(self) -> list[float]:
        """The thresholds tested, in order."""
        return [e.tau for e in self.events if e.tau is not None]

    def render(self, limit: int | None = None) -> str:
        """The narrative, one line per event (optionally truncated)."""
        events = self.events if limit is None else self.events[:limit]
        lines = [event.render() for event in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        lines.append(f"totals: {counts}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
