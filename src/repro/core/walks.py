"""Top-k *general* shortest paths (walks — cycles allowed).

The paper's related-work section separates top-k **simple** shortest
paths (its subject) from top-k **general** shortest paths [Eppstein
'98; Bellman–Kalaba; Hoffman–Pavley], where paths may revisit nodes.
The general problem is fundamentally easier — no simplicity constraint
to enforce — and its answers lower-bound the simple ones, which makes
an implementation valuable twice over: as the related-work baseline,
and as a cross-check oracle (`walk lengths <= simple path lengths`,
with equality on DAGs).

The implementation is the classic lazy best-first expansion (the
textbook reduction behind Hoffman–Pavley): pop partial walks from a
priority queue ordered by ``g + h`` where ``h`` is the *exact*
distance-to-target (one backward Dijkstra); the i-th time the target
is popped yields the i-th shortest walk.  Expanding at most ``k``
pops per node bounds the queue at ``O(k * m)`` — not Eppstein's
``O(m + n log n + k)``, but with the same outputs, and fast in
practice at the ``k`` this package targets.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count

from repro.core.result import Path
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import multi_source_distances

__all__ = ["top_k_walks"]

INF = float("inf")


def top_k_walks(
    graph: DiGraph,
    source: int,
    target: int,
    k: int,
    max_pops_per_node: int | None = None,
) -> list[Path]:
    """The ``k`` shortest source→target walks (cycles allowed).

    Parameters
    ----------
    max_pops_per_node:
        Expansion budget per node; defaults to ``k``, which is always
        sufficient (a node appears at most ``k`` times as a prefix
        endpoint among the top-k walks).

    Returns
    -------
    Up to ``k`` :class:`Path` objects with non-decreasing lengths;
    fewer only if fewer walks exist (i.e. the target is unreachable —
    with a reachable cycle upstream there are infinitely many walks).

    Notes
    -----
    Walk nodes are reconstructed through a parent-linked spine, so
    memory is ``O(pops)`` not ``O(pops * walk length)``.
    """
    if k <= 0:
        return []
    budget = k if max_pops_per_node is None else max_pops_per_node
    # Exact distance-to-target heuristic: backward Dijkstra, once.
    h = multi_source_distances(_reverse_view(graph), (target,))
    if h[source] == INF:
        return []

    adjacency = graph.adjacency
    tie = count()
    # Entries: (g + h, tiebreak, node, g, parent entry or None).
    # Parent links form the walk spine for reconstruction.
    start = (h[source], next(tie), source, 0.0, None)
    heap: list = [start]
    pops = [0] * graph.n
    results: list[Path] = []
    while heap and len(results) < k:
        entry = heappop(heap)
        _, _, u, g, _ = entry
        if pops[u] >= budget:
            continue
        pops[u] += 1
        if u == target:
            results.append(Path(length=g, nodes=_spine(entry)))
            if len(results) == k:
                break
            # Do not stop expanding: a longer walk may pass through the
            # target and return to it (e.g. via a cycle).
        for v, w in adjacency[u]:
            hv = h[v]
            if hv == INF:
                continue
            ng = g + w
            heappush(heap, (ng + hv, next(tie), v, ng, entry))
    return results


def _spine(entry) -> tuple[int, ...]:
    nodes = []
    while entry is not None:
        nodes.append(entry[2])
        entry = entry[4]
    nodes.reverse()
    return tuple(nodes)


def _reverse_view(graph: DiGraph):
    from repro.graph.digraph import ReversedView

    return ReversedView(graph)
