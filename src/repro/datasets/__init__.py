"""Datasets: synthetic road networks, POIs, the registry, workloads."""

from repro.datasets.poi import cal_style_categories, nested_categories
from repro.datasets.queries import (
    QueryWorkload,
    distances_to_targets,
    stratified_sources,
)
from repro.datasets.registry import (
    DATASET_GRIDS,
    RoadNetwork,
    available_datasets,
    road_network,
)
from repro.datasets.synthetic import (
    grid_road_network,
    largest_connected_component,
    radial_road_network,
)

__all__ = [
    "cal_style_categories",
    "nested_categories",
    "QueryWorkload",
    "distances_to_targets",
    "stratified_sources",
    "DATASET_GRIDS",
    "RoadNetwork",
    "available_datasets",
    "road_network",
    "grid_road_network",
    "largest_connected_component",
    "radial_road_network",
]
