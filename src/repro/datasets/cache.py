"""Disk caching of generated datasets.

The synthetic generators are deterministic but not free (the USA-scale
network takes seconds to generate and connect); pipelines that restart
frequently — notebooks, CI shards, the benchmark suite across
processes — can snapshot a :class:`RoadNetwork` to one ``.npz`` file
and reload it in milliseconds.  The snapshot embeds graph, categories,
and coordinates via :mod:`repro.graph.io`.
"""

from __future__ import annotations

from pathlib import Path

from repro.datasets.registry import RoadNetwork, road_network
from repro.exceptions import DatasetError
from repro.graph.io import load_npz, save_npz

__all__ = ["save_dataset", "load_dataset", "cached_road_network"]


def save_dataset(network: RoadNetwork, path: str | Path) -> None:
    """Snapshot a dataset (graph + categories + coordinates)."""
    save_npz(
        path,
        network.graph,
        categories=network.categories,
        coordinates=network.coordinates,
    )


def load_dataset(path: str | Path, name: str = "") -> RoadNetwork:
    """Load a dataset snapshot written by :func:`save_dataset`.

    Raises
    ------
    DatasetError
        If the snapshot lacks categories or coordinates (i.e. was not
        written by :func:`save_dataset`).
    """
    graph, categories, coordinates = load_npz(path)
    if categories is None or coordinates is None:
        raise DatasetError(
            f"{path} is not a dataset snapshot (missing categories/coordinates)"
        )
    return RoadNetwork(
        name=name or Path(path).stem,
        graph=graph,
        categories=categories,
        coordinates=coordinates,
    )


def cached_road_network(
    name: str, cache_dir: str | Path, seed: int = 0
) -> RoadNetwork:
    """Registry dataset backed by an on-disk cache.

    First call generates and snapshots; later calls (including from
    other processes) load the snapshot.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{name.upper()}-seed{seed}.npz"
    if path.exists():
        return load_dataset(path, name=name.upper())
    network = road_network(name, seed=seed)
    save_dataset(network, path)
    return network
