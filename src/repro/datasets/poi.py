"""POI / category generation.

Two schemes mirror the paper's Section 7 setup:

* :func:`cal_style_categories` — the CAL road network ships with real
  POIs in 62 categories; the evaluation singles out "Glacier" (1
  node), "Lake" (8), "Crater" (14) and "Harbor" (94).  We reproduce
  those four cardinalities and names exactly (capped by graph size)
  plus 58 filler categories with a skewed size distribution.
* :func:`nested_categories` — the synthetic ``T1 ⊂ T2 ⊂ T3 ⊂ T4``
  sets for the other datasets, generated so each is a superset of the
  previous (the paper generates POIs "in such a way that
  T1 ⊂ T2 ⊂ T3 ⊂ T4").  The paper uses densities of
  {1, 5, 10, 15} × 10⁻⁴; our graphs are ~25–40× smaller, so we scale
  densities by 10× to keep the destination-set *sizes* in the same
  regime (documented as a substitution in DESIGN.md).
"""

from __future__ import annotations

import random

from repro.exceptions import DatasetError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph

__all__ = [
    "cal_style_categories",
    "nested_categories",
    "CAL_FEATURED_CATEGORIES",
    "NESTED_DENSITIES",
]

#: The four CAL categories the paper's Figures 6–8 use, with the
#: paper's exact member counts.
CAL_FEATURED_CATEGORIES: dict[str, int] = {
    "Glacier": 1,
    "Lake": 8,
    "Crater": 14,
    "Harbor": 94,
}

#: Densities of the nested T1..T4 category sets (fraction of n).
NESTED_DENSITIES: dict[str, float] = {
    "T1": 0.001,
    "T2": 0.005,
    "T3": 0.010,
    "T4": 0.015,
}


def cal_style_categories(
    graph: DiGraph, seed: int = 0, filler_categories: int = 58
) -> CategoryIndex:
    """62 categories in the style of the real CAL POI file.

    The four featured categories get exactly the paper's
    cardinalities (capped at ``n``); the remaining categories get
    sizes drawn from a skewed distribution between 1 and ~2% of
    ``n``.  POIs are placed uniformly at random; a node may host
    several POIs, as on the real network.
    """
    rng = random.Random(seed)
    members: dict[str, list[int]] = {}
    for name, size in CAL_FEATURED_CATEGORIES.items():
        size = min(size, graph.n)
        members[name] = rng.sample(range(graph.n), size)
    max_size = max(1, graph.n // 50)
    for i in range(filler_categories):
        size = min(max_size, max(1, int(rng.lognormvariate(1.5, 1.2))))
        members[f"POI{i:02d}"] = rng.sample(range(graph.n), size)
    return CategoryIndex(members)


def nested_categories(
    graph: DiGraph,
    seed: int = 0,
    densities: dict[str, float] | None = None,
) -> CategoryIndex:
    """Nested destination sets ``T1 ⊂ T2 ⊂ ... ⊂ Tm``.

    ``densities`` maps category name to the fraction of nodes it
    covers and must be non-decreasing in iteration order; each
    category contains all previous ones plus fresh random nodes.
    """
    densities = densities if densities is not None else NESTED_DENSITIES
    rng = random.Random(seed)
    sizes = []
    previous = 0
    for name, density in densities.items():
        size = max(previous + 1, int(round(graph.n * density)))
        if size > graph.n:
            raise DatasetError(
                f"category {name!r} needs {size} nodes but the graph has {graph.n}"
            )
        if size < previous:
            raise DatasetError("densities must be non-decreasing for nesting")
        sizes.append((name, size))
        previous = size
    order = rng.sample(range(graph.n), sizes[-1][1])
    members = {name: order[:size] for name, size in sizes}
    return CategoryIndex(members)
