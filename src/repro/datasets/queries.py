"""Query-workload generation (Section 7, "Queries").

The paper stratifies sources by their distance to the destination
category: sort all nodes by shortest-path length to ``V_T``,
partition into five equal groups, and sample 100 sources per group —
``Q1`` holds the closest sources, ``Q5`` the farthest.  ``Q3`` is the
default workload.  The distance of every node *to* a node set is one
multi-source Dijkstra on the reverse graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph, ReversedView
from repro.pathing.dijkstra import multi_source_distances

__all__ = ["QueryWorkload", "stratified_sources", "distances_to_targets"]

INF = float("inf")


@dataclass(frozen=True)
class QueryWorkload:
    """Distance-stratified source groups for one destination set.

    ``groups[i]`` is the paper's ``Q_{i+1}``; each is a tuple of
    source node ids.
    """

    category: str
    destinations: tuple[int, ...]
    groups: tuple[tuple[int, ...], ...]

    def group(self, label: str | int) -> tuple[int, ...]:
        """Fetch a group by paper label (``"Q3"``) or 1-based index."""
        if isinstance(label, str):
            if not label.upper().startswith("Q"):
                raise QueryError(f"bad query-group label {label!r}")
            index = int(label[1:])
        else:
            index = label
        if not 1 <= index <= len(self.groups):
            raise QueryError(f"query group {label!r} out of range")
        return self.groups[index - 1]


def distances_to_targets(graph: DiGraph, targets: Sequence[int]) -> list[float]:
    """Shortest distance from every node *to* the nearest target."""
    return multi_source_distances(ReversedView(graph), targets)


def stratified_sources(
    graph: DiGraph,
    categories: CategoryIndex,
    category: str,
    num_groups: int = 5,
    per_group: int = 100,
    seed: int = 0,
) -> QueryWorkload:
    """Build the paper's ``Q1..Q5`` source groups for a category.

    Nodes unreachable from the category (on the reverse graph) are
    excluded; the rest are sorted by distance, split into
    ``num_groups`` equal slices, and ``per_group`` sources are sampled
    uniformly from each slice (all of a slice when it is smaller).
    """
    destinations = categories.nodes_of(category)
    dist = distances_to_targets(graph, destinations)
    reachable = sorted(
        (node for node in range(graph.n) if dist[node] < INF),
        key=lambda node: (dist[node], node),
    )
    if len(reachable) < num_groups:
        raise QueryError(
            f"only {len(reachable)} nodes can reach category {category!r}; "
            f"cannot form {num_groups} groups"
        )
    rng = random.Random(seed)
    size = len(reachable) // num_groups
    groups: list[tuple[int, ...]] = []
    for i in range(num_groups):
        lo = i * size
        hi = len(reachable) if i == num_groups - 1 else (i + 1) * size
        slice_nodes = reachable[lo:hi]
        if len(slice_nodes) <= per_group:
            sample = list(slice_nodes)
        else:
            sample = rng.sample(slice_nodes, per_group)
        groups.append(tuple(sample))
    return QueryWorkload(
        category=category, destinations=destinations, groups=tuple(groups)
    )
