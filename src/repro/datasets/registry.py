"""Named datasets — scaled analogues of the paper's Table 1.

The paper's six real road networks are replaced by synthetic
road-like graphs (see :mod:`repro.datasets.synthetic` for what is
preserved) at ~25–40× reduced size, keeping the relative ordering
``SJ < CAL < SF < COL < FLA < USA``:

=======  ============  ===========  =================
name     paper n       paper m      this package (grid)
=======  ============  ===========  =================
SJ       18,263        47,594       32 × 28
CAL      106,337       213,964*     72 × 60
SF       174,956       443,604      92 × 76
COL      435,666       1,042,400    140 × 110
FLA      1,070,376     2,687,902    210 × 170
USA      6,262,104     15,119,284   400 × 300
=======  ============  ===========  =================

(*CAL's Table-1 row lists nodes/edges swapped relative to the others;
we scale from the node count.)

Every dataset carries the nested ``T1..T4`` categories; CAL
additionally carries the 62 CAL-style categories ("Glacier", "Lake",
"Crater", "Harbor", …) that Figures 6–8 query.  Datasets are cached
per (name, seed) — they are deterministic in both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.datasets.poi import cal_style_categories, nested_categories
from repro.datasets.synthetic import grid_road_network
from repro.exceptions import DatasetError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph

__all__ = ["RoadNetwork", "road_network", "available_datasets", "DATASET_GRIDS"]

#: Grid dimensions per dataset name (rows, cols).
DATASET_GRIDS: dict[str, tuple[int, int]] = {
    "SJ": (32, 28),
    "CAL": (72, 60),
    "SF": (92, 76),
    "COL": (140, 110),
    "FLA": (210, 170),
    "USA": (400, 300),
}

#: Paper sizes, for Table-1 style reporting.
PAPER_SIZES: dict[str, tuple[int, int]] = {
    "SJ": (18_263, 47_594),
    "CAL": (106_337, 213_964),
    "SF": (174_956, 443_604),
    "COL": (435_666, 1_042_400),
    "FLA": (1_070_376, 2_687_902),
    "USA": (6_262_104, 15_119_284),
}


@dataclass(frozen=True)
class RoadNetwork:
    """A named dataset: graph + POI categories + node coordinates."""

    name: str
    graph: DiGraph
    categories: CategoryIndex
    coordinates: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return self.graph.m


def available_datasets() -> tuple[str, ...]:
    """The dataset names accepted by :func:`road_network`."""
    return tuple(DATASET_GRIDS)


def road_network(name: str, seed: int = 0) -> RoadNetwork:
    """Build (or fetch from cache) a named dataset.

    Names are case-insensitive; the cache is keyed on the canonical
    upper-case name so ``road_network("sj") is road_network("SJ")``.

    Raises
    ------
    DatasetError
        For unknown names.
    """
    key = name.upper()
    if key not in DATASET_GRIDS:
        known = ", ".join(DATASET_GRIDS)
        raise DatasetError(f"unknown dataset {name!r}; choose one of: {known}")
    return _build_road_network(key, seed)


@lru_cache(maxsize=None)
def _build_road_network(key: str, seed: int) -> RoadNetwork:
    rows, cols = DATASET_GRIDS[key]
    graph, coords = grid_road_network(rows, cols, seed=seed)
    categories = nested_categories(graph, seed=seed + 1)
    if key == "CAL":
        categories = categories.merged_with(cal_style_categories(graph, seed=seed + 2))
    return RoadNetwork(name=key, graph=graph, categories=categories, coordinates=coords)
