"""Synthetic road-network generators.

The paper evaluates on six real road networks (CAL … Western USA,
Table 1) that are not redistributable here and — at up to 6.2M nodes
— not traversable at paper speeds in pure Python.  These generators
produce scaled-down *road-like* graphs preserving the structural
properties the algorithms are sensitive to:

* **planarity/locality** — edges connect geometrically nearby nodes,
  so search frontiers stay small and landmark bounds are informative;
* **long diameter and near-uniform low degree** (≈ 2–4 out-edges,
  like real road junctions);
* **distance-metric weights** — each edge weight is the Euclidean
  length of the (jittered) segment, so the triangle inequality holds
  the way it does for real road lengths;
* **bidirectional edges**, matching the paper's setup.

Two families are provided: a perturbed grid (the workhorse — degree
distribution and diameter closest to real road networks) and a
radial ring-and-spoke network (used for variety in tests).
Generated graphs are restricted to their largest strongly connected
component so every query is satisfiable.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["grid_road_network", "radial_road_network", "largest_connected_component"]


def grid_road_network(
    rows: int,
    cols: int,
    seed: int = 0,
    removal_prob: float = 0.08,
    diagonal_prob: float = 0.05,
    jitter: float = 0.25,
) -> tuple[DiGraph, np.ndarray]:
    """A jittered grid with random street removals and a few diagonals.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the result has at most ``rows * cols`` nodes
        (restricted to the largest connected component).
    removal_prob:
        Fraction of grid edges deleted (dead ends, rivers, parks).
    diagonal_prob:
        Fraction of grid cells that gain one diagonal shortcut.
    jitter:
        Uniform positional noise (± ``jitter``) applied per node
        before measuring edge lengths.

    Returns
    -------
    ``(graph, coordinates)`` — the frozen graph (bidirectional,
    Euclidean weights) and an ``(n, 2)`` coordinate array.
    """
    if rows < 2 or cols < 2:
        raise DatasetError(f"grid must be at least 2x2, got {rows}x{cols}")
    rng = random.Random(seed)
    n = rows * cols
    coords = np.empty((n, 2), dtype=np.float64)
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            coords[base + c, 0] = c + rng.uniform(-jitter, jitter)
            coords[base + c, 1] = r + rng.uniform(-jitter, jitter)

    def length(u: int, v: int) -> float:
        dx = coords[u, 0] - coords[v, 0]
        dy = coords[u, 1] - coords[v, 1]
        return math.hypot(dx, dy)

    edges: list[tuple[int, int, float]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols and rng.random() >= removal_prob:
                v = u + 1
                edges.append((u, v, length(u, v)))
            if r + 1 < rows and rng.random() >= removal_prob:
                v = u + cols
                edges.append((u, v, length(u, v)))
            if c + 1 < cols and r + 1 < rows and rng.random() < diagonal_prob:
                v = u + cols + 1 if rng.random() < 0.5 else u + cols
                if v == u + cols:  # anti-diagonal: (r, c+1) -> (r+1, c)
                    u2, v2 = u + 1, u + cols
                    edges.append((u2, v2, length(u2, v2)))
                else:
                    edges.append((u, v, length(u, v)))

    graph = DiGraph.from_edges(n, edges, bidirectional=True)
    return largest_connected_component(graph, coords)


def radial_road_network(
    rings: int,
    spokes: int,
    seed: int = 0,
    removal_prob: float = 0.05,
) -> tuple[DiGraph, np.ndarray]:
    """A ring-and-spoke city: concentric rings joined by radial roads.

    Node 0 is the centre; ring ``i`` (1-based) holds ``spokes`` nodes
    at radius ``i``.  Produces graphs with a clear core/periphery
    structure, useful for exercising landmark quality away from grid
    symmetry.
    """
    if rings < 1 or spokes < 3:
        raise DatasetError(f"need rings >= 1 and spokes >= 3, got {rings}/{spokes}")
    rng = random.Random(seed)
    n = 1 + rings * spokes
    coords = np.empty((n, 2), dtype=np.float64)
    coords[0] = (0.0, 0.0)
    for i in range(1, rings + 1):
        for j in range(spokes):
            angle = 2 * math.pi * (j + rng.uniform(-0.1, 0.1)) / spokes
            radius = i + rng.uniform(-0.15, 0.15)
            coords[1 + (i - 1) * spokes + j] = (
                radius * math.cos(angle),
                radius * math.sin(angle),
            )

    def node(ring: int, j: int) -> int:
        return 1 + (ring - 1) * spokes + (j % spokes)

    def length(u: int, v: int) -> float:
        return math.hypot(coords[u, 0] - coords[v, 0], coords[u, 1] - coords[v, 1])

    edges: list[tuple[int, int, float]] = []
    for j in range(spokes):  # centre to first ring
        v = node(1, j)
        edges.append((0, v, length(0, v)))
    for i in range(1, rings + 1):
        for j in range(spokes):
            u = node(i, j)
            v = node(i, j + 1)  # around the ring
            if rng.random() >= removal_prob:
                edges.append((u, v, length(u, v)))
            if i < rings and rng.random() >= removal_prob:  # outward spoke
                w = node(i + 1, j)
                edges.append((u, w, length(u, w)))

    graph = DiGraph.from_edges(n, edges, bidirectional=True)
    return largest_connected_component(graph, coords)


def largest_connected_component(
    graph: DiGraph, coords: np.ndarray
) -> tuple[DiGraph, np.ndarray]:
    """Restrict a bidirectional graph to its largest component.

    Node ids are relabelled densely; coordinates are filtered to
    match.  (For bidirectional graphs weak and strong connectivity
    coincide, so a forward BFS suffices.)
    """
    n = graph.n
    component = [-1] * n
    sizes: list[int] = []
    adjacency = graph.adjacency
    for start in range(n):
        if component[start] >= 0:
            continue
        label = len(sizes)
        stack = [start]
        component[start] = label
        size = 0
        while stack:
            u = stack.pop()
            size += 1
            for v, _ in adjacency[u]:
                if component[v] < 0:
                    component[v] = label
                    stack.append(v)
        sizes.append(size)
    best = max(range(len(sizes)), key=sizes.__getitem__)
    keep = [u for u in range(n) if component[u] == best]
    relabel = {old: new for new, old in enumerate(keep)}
    out = DiGraph(len(keep))
    for old in keep:
        u = relabel[old]
        for v_old, w in adjacency[old]:
            if component[v_old] == best:
                out.add_edge(u, relabel[v_old], w)
    return out.freeze(), coords[keep]
