"""Edge-weight variants.

Section 7: an edge weight "can be any measure of the road segment,
such as distance, travel time, travel cost"; the paper's experiments
take distance.  These transforms re-derive the other measures from a
distance-weighted network so the weight-agnosticism of the algorithms
can be exercised (the landmark machinery assumes nothing but
non-negativity and the triangle inequality over the *chosen* weights).

All transforms preserve topology and return a new frozen graph.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.graph.digraph import DiGraph

__all__ = ["reweighted", "travel_time_weights", "unit_weights", "tolled_weights"]


def reweighted(
    graph: DiGraph, weight_of: Callable[[int, int, float], float]
) -> DiGraph:
    """Generic transform: ``weight_of(u, v, old_weight)`` per edge."""
    out = DiGraph(graph.n)
    for u, v, w in graph.edges():
        out.add_edge(u, v, weight_of(u, v, w))
    return out.freeze()


def travel_time_weights(
    graph: DiGraph,
    seed: int = 0,
    speed_classes: Sequence[float] = (0.5, 1.0, 2.0),
) -> DiGraph:
    """Distance → travel time: each road gets a speed class.

    The class is drawn per *undirected* road (both directions share
    it, as both lanes of a street share a speed limit), deterministic
    in ``seed``.  ``time = distance / speed``.
    """
    classes = tuple(speed_classes)

    def weight_of(u: int, v: int, distance: float) -> float:
        key = _road_key(u, v, seed)
        speed = classes[random.Random(key).randrange(len(classes))]
        return distance / speed

    return reweighted(graph, weight_of)


def _road_key(u: int, v: int, seed: int) -> int:
    """Deterministic per-undirected-road integer seed."""
    a, b = (u, v) if u <= v else (v, u)
    return (a * 1_000_003 + b) * 1_000_003 + seed


def unit_weights(graph: DiGraph) -> DiGraph:
    """Every edge costs 1 — hop-count shortest paths."""
    return reweighted(graph, lambda u, v, w: 1.0)


def tolled_weights(
    graph: DiGraph, toll: float, tolled_fraction: float = 0.1, seed: int = 0
) -> DiGraph:
    """Travel *cost*: distance plus a toll on a random road subset.

    Tolls are per undirected road, deterministic in ``seed`` — the
    "travel cost" measure the paper mentions.
    """
    if toll < 0:
        raise ValueError(f"toll must be non-negative, got {toll}")

    def weight_of(u: int, v: int, distance: float) -> float:
        key = _road_key(u, v, seed) ^ 0x70_11  # distinct stream from speeds
        if random.Random(key).random() < tolled_fraction:
            return distance + toll
        return distance

    return reweighted(graph, weight_of)
