"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The subclasses
distinguish the three things that commonly go wrong: malformed graph
construction, invalid queries, and dataset/IO problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is constructed or mutated inconsistently.

    Examples: negative edge weight, out-of-range node id, or adding an
    edge to a frozen graph.
    """


class QueryError(ReproError):
    """Raised when a KPJ/KSP/GKPJ query is invalid for the given graph.

    Examples: unknown category, ``k <= 0``, or a source node that does
    not exist in the graph.
    """


class DatasetError(ReproError):
    """Raised by dataset loaders and generators on malformed input.

    Examples: an unparsable DIMACS line, an unknown dataset name in the
    registry, or inconsistent POI specifications.
    """


class LandmarkError(ReproError):
    """Raised when a landmark index is misused.

    Examples: requesting bounds from an index built for another graph or
    asking for more landmarks than there are nodes.
    """
