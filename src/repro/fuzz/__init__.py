"""Differential fuzzing: generators, oracle stack, invariants, shrinker.

The perf substrate of PRs 1–4 (flat CSR kernels, prepared-category
cache, batch pool) multiplied the number of code paths that must all
compute the paper's exact answers.  This package is the correctness
backstop: a seeded, deterministic fuzzing harness that

* **generates** random weighted digraphs with category labelings plus
  targeted shapes (DAGs, near-cliques, zero-weight edges, parallel
  edges, disconnected components) and random KPJ/KSP/GKPJ queries
  (:mod:`repro.fuzz.generators`);
* **cross-checks** every registry algorithm × both kernels ×
  cached/uncached × sequential/batch against the brute-force and Yen
  oracles on small instances (:mod:`repro.fuzz.oracles`);
* **checks metamorphic invariants** that need no oracle on larger
  instances — top-k prefix property, τ/α schedule invariance, the
  ``G_Q``-transform equivalence of KPJ to KSP, node-relabeling
  permutation invariance, weight-scaling invariance
  (:mod:`repro.fuzz.invariants`);
* **shrinks** any failing ``(graph, query, config)`` to a small
  replayable repro file (:mod:`repro.fuzz.shrink`);
* **drives** it all from one entry point with a planted-mutation
  self-check mode (:mod:`repro.fuzz.harness`), surfaced as the
  ``kpj fuzz`` CLI subcommand.

Everything is derived from one integer seed — the same seed always
generates, checks, and shrinks the same cases.
"""

from repro.fuzz.corpus import seed_corpus_cases, write_seed_corpus
from repro.fuzz.generators import CASE_SHAPES, FuzzCase, generate_case
from repro.fuzz.harness import (
    MUTATIONS,
    FuzzFailure,
    FuzzReport,
    check_case,
    replay_file,
    run_fuzz,
    self_check,
)
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CASE_SHAPES",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "MUTATIONS",
    "check_case",
    "generate_case",
    "replay_file",
    "run_fuzz",
    "seed_corpus_cases",
    "self_check",
    "shrink_case",
    "write_seed_corpus",
]
