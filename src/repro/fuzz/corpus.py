"""The committed seed corpus: named edge-case instances.

``fuzz/corpus/`` holds one JSON file per instance; CI replays every
file against all registry algorithms on both kernels on every run
(``tests/fuzz/test_corpus.py``).  The corpus is the distilled history
of shapes that are easy to get wrong — each entry is the kind of
minimal instance the shrinker would produce for its bug class, kept
permanently so a regression is caught by a 1-second test instead of a
fuzzing campaign.

The files are generated *from this module* (:func:`write_seed_corpus`)
so the corpus can never drift from the code that documents it; a test
asserts the committed files match regeneration byte-for-byte.
"""

from __future__ import annotations

import os

from repro.fuzz.generators import FuzzCase

__all__ = ["seed_corpus_cases", "write_seed_corpus"]


def _case(name: str, **kwargs) -> tuple[str, FuzzCase]:
    return name, FuzzCase(**kwargs)


def seed_corpus_cases() -> list[tuple[str, FuzzCase]]:
    """The named corpus instances, in committed order.

    Each tuple is ``(name, case)``; the name becomes the corpus file
    name and should say what the instance stresses.
    """
    cases = [
        # -- degenerate sizes -------------------------------------------
        _case(
            "two-nodes-one-edge",
            n=2, edges=((0, 1, 1.0),), kind="ksp",
            sources=(0,), destinations=(1,), k=3,
        ),
        _case(
            "single-path-k-overshoot",
            n=4, edges=((0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)), kind="kpj",
            sources=(0,), destinations=(3,), k=6,
        ),
        _case(
            "no-path-at-all",
            n=3, edges=((1, 0, 1.0), (2, 1, 2.0)), kind="ksp",
            sources=(0,), destinations=(2,), k=2,
        ),
        _case(
            "edgeless-graph",
            n=3, edges=(), kind="kpj",
            sources=(0,), destinations=(1, 2), k=2,
        ),
        # -- source/destination overlap ---------------------------------
        _case(
            "source-is-destination",
            n=3, edges=((0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)), kind="kpj",
            sources=(0,), destinations=(0, 2), k=3,
        ),
        _case(
            "gkpj-sources-overlap-destinations",
            n=4,
            edges=((0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)),
            kind="gkpj", sources=(0, 2), destinations=(1, 2), k=4,
        ),
        _case(
            "path-through-destination",
            # The best path to one destination passes through another:
            # banning termination must not ban traversal.
            n=4, edges=((0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)), kind="kpj",
            sources=(0,), destinations=(1, 3), k=4,
        ),
        # -- ties and zero weights --------------------------------------
        _case(
            "all-weights-equal",
            n=5,
            edges=(
                (0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0),
                (1, 2, 1.0), (2, 1, 1.0), (3, 4, 1.0),
            ),
            kind="kpj", sources=(0,), destinations=(4,), k=5,
        ),
        _case(
            "zero-weight-detour",
            n=4,
            edges=((0, 1, 0.0), (1, 2, 0.0), (0, 2, 0.0), (2, 3, 1.0)),
            kind="ksp", sources=(0,), destinations=(3,), k=3,
        ),
        _case(
            "zero-weight-everything",
            n=4,
            edges=(
                (0, 1, 0.0), (1, 2, 0.0), (2, 3, 0.0), (0, 2, 0.0),
                (1, 3, 0.0),
            ),
            kind="kpj", sources=(0,), destinations=(3,), k=4,
        ),
        _case(
            "tie-at-rank-k",
            # Exactly k paths share the k-th length; the inclusive τ
            # cutoff must keep one of them (any of them).
            n=5,
            edges=(
                (0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0),
                (1, 4, 1.0), (2, 4, 1.0), (3, 4, 1.0),
            ),
            kind="ksp", sources=(0,), destinations=(4,), k=2,
        ),
        # -- parallel edges ----------------------------------------------
        _case(
            "parallel-edges-min-collapse",
            n=3,
            edges=((0, 1, 5.0), (0, 1, 2.0), (0, 1, 9.0), (1, 2, 1.0)),
            kind="ksp", sources=(0,), destinations=(2,), k=2,
        ),
        _case(
            "parallel-zero-vs-positive",
            n=3,
            edges=((0, 1, 3.0), (0, 1, 0.0), (1, 2, 0.0), (1, 2, 4.0)),
            kind="kpj", sources=(0,), destinations=(2,), k=2,
        ),
        # -- disconnection ------------------------------------------------
        _case(
            "destination-unreachable",
            n=5,
            edges=((0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 4, 1.0)),
            kind="kpj", sources=(0,), destinations=(4,), k=3,
        ),
        _case(
            "one-dest-reachable-one-not",
            n=5,
            edges=((0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)),
            kind="kpj", sources=(0,), destinations=(2, 4), k=3,
        ),
        _case(
            "gkpj-one-source-stranded",
            n=5,
            edges=((0, 1, 1.0), (1, 2, 2.0), (4, 3, 1.0)),
            kind="gkpj", sources=(0, 4), destinations=(2,), k=3,
        ),
        # -- structure the deviation machinery trips over ----------------
        _case(
            "diamond-with-return-edges",
            n=4,
            edges=(
                (0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.0), (2, 3, 1.0),
                (1, 2, 1.0), (2, 1, 2.0), (3, 1, 1.0), (3, 2, 1.0),
            ),
            kind="kpj", sources=(0,), destinations=(3,), k=6,
        ),
        _case(
            "near-clique-5",
            n=5,
            edges=tuple(
                (u, v, float(1 + (u * 5 + v) % 4))
                for u in range(5)
                for v in range(5)
                if u != v
            ),
            kind="kpj", sources=(0,), destinations=(3, 4), k=6,
        ),
        _case(
            "dag-longest-chain",
            n=6,
            edges=(
                (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0),
                (4, 5, 1.0), (0, 2, 3.0), (1, 3, 3.0), (2, 4, 3.0),
                (3, 5, 3.0), (0, 3, 9.0),
            ),
            kind="kpj", sources=(0,), destinations=(5,), k=6,
        ),
        _case(
            "two-cycle-pump",
            # A 2-cycle adjacent to the source: simple-path constraint
            # must prune the infinite walk family.
            n=4,
            edges=(
                (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0),
                (2, 3, 1.0), (0, 3, 9.0),
            ),
            kind="ksp", sources=(0,), destinations=(3,), k=4,
        ),
        _case(
            "gkpj-virtual-both-ends",
            n=6,
            edges=(
                (0, 2, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 4, 1.0),
                (3, 5, 2.0), (2, 4, 4.0),
            ),
            kind="gkpj", sources=(0, 1), destinations=(4, 5), k=5,
        ),
        _case(
            "category-query-with-decoys",
            n=5,
            edges=(
                (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (1, 4, 2.0),
                (4, 3, 1.0),
            ),
            kind="kpj", sources=(0,), destinations=(3, 4), k=3,
            categories={
                "T": (3, 4), "singleton": (2,), "empty": (), "blob": (0, 1, 3)
            },
            category="T",
        ),
    ]
    return cases


def write_seed_corpus(directory: str) -> list[str]:
    """Write every corpus case to ``directory`` as canonical JSON.

    Returns the file paths written.  File contents are deterministic
    (sorted keys, fixed indent), so regeneration is byte-stable and
    the corpus-sync test can compare against the committed files.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, case in seed_corpus_cases():
        path = os.path.join(directory, f"{name}.json")
        with open(path, "w") as fh:
            fh.write(case.to_json())
        paths.append(path)
    return paths
