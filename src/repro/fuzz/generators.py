"""Seeded instance generators for the differential fuzzer.

A fuzz *case* bundles everything one differential check needs: a graph
specification (node count + edge list, kept as data so it can be
serialised, shrunk, and replayed), a category labeling, and one
KPJ/KSP/GKPJ query.  Cases are produced from a ``random.Random`` —
the same seed always yields the same case.

Beyond the uniform random digraph, the generator rotates through
*targeted shapes* chosen to hit historically bug-prone structure:

``dag``
    acyclic graphs (deviation search never revisits a subspace);
``near_clique``
    dense graphs where the number of simple paths explodes and the
    inclusive τ cutoff sees many ties;
``zero_weight``
    a fraction of zero-weight edges (ties everywhere, zero-length
    detours, τ growth with no progress);
``parallel``
    duplicate ``(u, v)`` edges with different weights (collapsed to
    the minimum on :meth:`~repro.graph.digraph.DiGraph.freeze` —
    the answer must only ever use the lightest copy);
``disconnected``
    two components with the query possibly straddling them (empty or
    truncated answers);
``grid``
    a small road-like grid (the shape the paper's datasets have).

Category labelings always include decoy categories — among them a
singleton and an empty one — so index construction and resolution see
the degenerate sizes, not just the queried set.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.validation import validate_instance

__all__ = ["FuzzCase", "generate_case", "CASE_SHAPES"]


@dataclass(frozen=True)
class FuzzCase:
    """One serialisable fuzz instance: graph spec + labeling + query.

    The graph is kept as ``(n, edges)`` data rather than a built
    :class:`DiGraph` so the case can be written to a repro file,
    mutated by the shrinker, and rebuilt identically on replay.
    """

    n: int
    edges: tuple[tuple[int, int, float], ...]
    kind: str  # "kpj" | "ksp" | "gkpj"
    sources: tuple[int, ...]
    destinations: tuple[int, ...]
    k: int
    alpha: float = 1.1
    shape: str = "random"
    categories: Mapping[str, tuple[int, ...]] = field(default_factory=dict)
    category: str | None = None  # query by name instead of explicit nodes
    seed: int | None = None  # generator seed, for provenance only

    def __post_init__(self) -> None:
        validate_instance(
            self.n, self.edges, self.sources, self.destinations, self.k,
            allow_parallel_edges=True,
        )
        if self.kind not in ("kpj", "ksp", "gkpj"):
            raise QueryError(f"unknown query kind {self.kind!r}")
        if self.kind in ("kpj", "ksp") and len(self.sources) != 1:
            raise QueryError(f"{self.kind} query needs exactly one source")
        if self.kind == "ksp" and len(self.destinations) != 1:
            raise QueryError("ksp query needs exactly one destination")
        if self.category is not None and (
            self.category not in self.categories
            or tuple(self.categories[self.category]) != self.destinations
        ):
            raise QueryError(
                f"category {self.category!r} does not label the destinations"
            )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def graph(self) -> DiGraph:
        """Build the frozen :class:`DiGraph` this case describes."""
        return DiGraph.from_edges(self.n, self.edges)

    def category_index(self) -> CategoryIndex:
        """The case's labeling as a :class:`CategoryIndex`.

        The queried destination set always appears under the name
        ``"T"`` (or :attr:`category` when set), alongside any decoy
        categories the generator added.
        """
        members = {name: nodes for name, nodes in self.categories.items()}
        members.setdefault(self.category or "T", self.destinations)
        return CategoryIndex(members)

    # ------------------------------------------------------------------
    # Serialisation (repro files, corpus)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation; :meth:`from_dict` inverts it."""
        out = {
            "n": self.n,
            "edges": [[u, v, w] for u, v, w in self.edges],
            "kind": self.kind,
            "sources": list(self.sources),
            "destinations": list(self.destinations),
            "k": self.k,
            "alpha": self.alpha,
            "shape": self.shape,
        }
        if self.categories:
            out["categories"] = {
                name: list(nodes) for name, nodes in sorted(self.categories.items())
            }
        if self.category is not None:
            out["category"] = self.category
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output (validates it)."""
        try:
            return cls(
                n=int(data["n"]),
                edges=tuple(
                    (int(u), int(v), float(w)) for u, v, w in data["edges"]
                ),
                kind=str(data["kind"]),
                sources=tuple(int(s) for s in data["sources"]),
                destinations=tuple(int(t) for t in data["destinations"]),
                k=int(data["k"]),
                alpha=float(data.get("alpha", 1.1)),
                shape=str(data.get("shape", "random")),
                categories={
                    str(name): tuple(int(v) for v in nodes)
                    for name, nodes in dict(data.get("categories", {})).items()
                },
                category=data.get("category"),
                seed=data.get("seed"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed fuzz case: {exc}") from None

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, stable across runs)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        """Parse :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryError(f"malformed fuzz case JSON: {exc}") from None
        return cls.from_dict(data)

    def describe(self) -> str:
        """One-line summary used in failure messages and CLI output."""
        return (
            f"{self.kind} n={self.n} m={len(self.edges)} shape={self.shape} "
            f"S={list(self.sources)} T={list(self.destinations)} k={self.k}"
        )


# ----------------------------------------------------------------------
# Edge-set shapes
# ----------------------------------------------------------------------
def _dedup(edges: list[tuple[int, int, float]]) -> list[tuple[int, int, float]]:
    """Keep the first copy of each (u, v) pair (order-preserving)."""
    seen: set[tuple[int, int]] = set()
    out = []
    for u, v, w in edges:
        if (u, v) in seen:
            continue
        seen.add((u, v))
        out.append((u, v, w))
    return out


def _weight(rng: random.Random, zero_prob: float = 0.1) -> float:
    """A small non-negative integer weight (ties are common on purpose)."""
    if rng.random() < zero_prob:
        return 0.0
    return float(rng.randint(1, 9))


def _random_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """Uniform random digraph with ~1x–3x n edges."""
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    m = rng.randint(min(n, len(possible)), min(3 * n, len(possible)))
    pairs = rng.sample(possible, m)
    return [(u, v, _weight(rng)) for u, v in pairs]


def _dag_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """Random DAG: edges only go from lower to higher rank."""
    order = list(range(n))
    rng.shuffle(order)
    rank = {node: i for i, node in enumerate(order)}
    possible = [(u, v) for u in range(n) for v in range(n) if rank[u] < rank[v]]
    m = rng.randint(min(n, len(possible)), min(3 * n, len(possible)))
    pairs = rng.sample(possible, m)
    return [(u, v, _weight(rng)) for u, v in pairs]


def _near_clique_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """Almost-complete digraph (each possible edge kept with prob 0.8)."""
    return [
        (u, v, _weight(rng))
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < 0.8
    ]


def _zero_weight_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """Random digraph where roughly half the edges weigh zero."""
    return [
        (u, v, 0.0 if rng.random() < 0.5 else w)
        for u, v, w in _random_edges(rng, n)
    ]


def _parallel_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """Random digraph plus duplicate (u, v) copies with other weights."""
    edges = _random_edges(rng, n)
    for u, v, _ in rng.sample(edges, min(len(edges), max(1, n // 2))):
        edges.append((u, v, _weight(rng)))
    return edges


def _disconnected_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """Two islands with no edges between them."""
    cut = rng.randint(1, n - 1)
    left = list(range(cut))
    right = list(range(cut, n))
    edges: list[tuple[int, int, float]] = []
    for block in (left, right):
        if len(block) < 2:
            continue
        possible = [(u, v) for u in block for v in block if u != v]
        m = rng.randint(min(len(block), len(possible)), min(3 * len(block), len(possible)))
        edges.extend((u, v, _weight(rng)) for u, v in rng.sample(possible, m))
    return edges


def _grid_edges(rng: random.Random, n: int) -> list[tuple[int, int, float]]:
    """A bidirectional rows×cols grid over the first rows*cols nodes."""
    cols = max(2, int(n**0.5))
    rows = max(2, n // cols)
    edges: list[tuple[int, int, float]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            for v in ((u + 1) if c + 1 < cols else None,
                      (u + cols) if r + 1 < rows else None):
                if v is None:
                    continue
                w = _weight(rng, zero_prob=0.0)
                edges.append((u, v, w))
                edges.append((v, u, w))
    return edges


#: Shape name → edge generator; the fuzzer rotates through these.
CASE_SHAPES: dict[str, Callable[[random.Random, int], list[tuple[int, int, float]]]] = {
    "random": _random_edges,
    "dag": _dag_edges,
    "near_clique": _near_clique_edges,
    "zero_weight": _zero_weight_edges,
    "parallel": _parallel_edges,
    "disconnected": _disconnected_edges,
    "grid": _grid_edges,
}


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
def _pick_categories(
    rng: random.Random, n: int, destinations: tuple[int, ...]
) -> tuple[dict[str, tuple[int, ...]], str | None]:
    """A labeling containing the destination set plus degenerate decoys."""
    categories: dict[str, tuple[int, ...]] = {}
    use_name = rng.random() < 0.5
    name = "T" if use_name else None
    if use_name:
        categories["T"] = destinations
    # Decoys: one singleton, one empty, one random blob.
    categories["singleton"] = (rng.randrange(n),)
    categories["empty"] = ()
    blob = rng.sample(range(n), rng.randint(1, n))
    categories["blob"] = tuple(sorted(blob))
    return categories, name


def generate_case(
    seed: int,
    min_nodes: int = 4,
    max_nodes: int = 9,
    shape: str | None = None,
) -> FuzzCase:
    """Generate one deterministic fuzz case from an integer seed.

    ``shape=None`` rotates through :data:`CASE_SHAPES` by seed;
    ``min_nodes``/``max_nodes`` bound the graph size (keep the default
    for oracle-checked cases; raise it for invariant-only cases).
    """
    rng = random.Random(seed)
    names = sorted(CASE_SHAPES)
    chosen = shape if shape is not None else names[seed % len(names)]
    try:
        make_edges = CASE_SHAPES[chosen]
    except KeyError:
        raise QueryError(
            f"unknown case shape {chosen!r}; choose one of: {', '.join(names)}"
        ) from None
    n = rng.randint(min_nodes, max_nodes)
    edges = make_edges(rng, n)
    kind = rng.choices(("kpj", "ksp", "gkpj"), weights=(5, 2, 2))[0]
    if kind == "ksp":
        destinations: tuple[int, ...] = (rng.randrange(n),)
    else:
        count = rng.randint(1, max(1, min(3, n - 1)))
        destinations = tuple(sorted(rng.sample(range(n), count)))
    if kind == "gkpj":
        count = rng.randint(2, max(2, min(3, n)))
        sources = tuple(sorted(rng.sample(range(n), count)))
    else:
        sources = (rng.randrange(n),)
    k = rng.randint(1, 6)
    alpha = rng.choice((1.05, 1.1, 1.5, 2.0))
    categories: dict[str, tuple[int, ...]] = {}
    category = None
    if kind == "kpj":
        categories, category = _pick_categories(rng, n, destinations)
    return FuzzCase(
        n=n,
        edges=tuple(edges),
        kind=kind,
        sources=sources,
        destinations=destinations,
        k=k,
        alpha=alpha,
        shape=chosen,
        categories=categories,
        category=category,
        seed=seed,
    )


def simplified(case: FuzzCase, **changes) -> FuzzCase:
    """A copy of ``case`` with fields replaced (shrinker helper).

    Any category-name indirection is dropped — shrunk cases always
    query by explicit destinations, so the labeling never constrains a
    shrinking step.
    """
    base = replace(case, categories={}, category=None, seed=case.seed)
    return replace(base, **changes)


def sequence_hash(paths: Sequence) -> tuple:
    """Hashable fingerprint of an answer (lengths + node tuples)."""
    return tuple((round(p.length, 9), tuple(p.nodes)) for p in paths)
