"""The fuzzing driver: case loop, planted mutations, repro files.

:func:`run_fuzz` is the single entry point (the ``kpj fuzz`` CLI
subcommand is a thin wrapper): generate seeded cases, dispatch small
ones to the oracle stack and large ones to the metamorphic
invariants, shrink any failure, and write a replayable repro file.

:func:`self_check` is the harness testing itself: it plants each of
the :data:`MUTATIONS` — result corruptions modeled on real KSP bug
classes (a dropped deviation path, an off-by-one on the inclusive τ
cutoff, a mispriced path, a duplicated path, an unsorted answer) —
into the system-under-test side of the comparison and asserts the
harness flags every one of them while a mutation-free run stays
clean.  A fuzzer that cannot catch planted bugs is not evidence of
correctness; this mode is what makes the green run meaningful.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.result import Path
from repro.exceptions import QueryError
from repro.fuzz.generators import FuzzCase, generate_case
from repro.fuzz.invariants import check_invariants
from repro.fuzz.oracles import check_against_oracles
from repro.fuzz.shrink import shrink_case
from repro.pathing.kernels import KERNELS

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "MUTATIONS",
    "check_case",
    "replay_file",
    "run_fuzz",
    "self_check",
]

#: Cases at or below this node count get the exhaustive oracle stack;
#: larger ones get the metamorphic invariants.
ORACLE_MAX_NODES = 10

#: Every 4th case is a larger invariant-mode case.
_INVARIANT_STRIDE = 4
_INVARIANT_MIN, _INVARIANT_MAX = 20, 40

_REGISTRY_ROTATION = (
    "iter-bound-spti", "iter-bound", "da-spt", "best-first", "iter-bound-sptp",
)


# ----------------------------------------------------------------------
# Planted mutations (self-check mode)
# ----------------------------------------------------------------------
def _mut_drop_deviation(paths: list[Path], case: FuzzCase) -> list[Path]:
    """Lose the second-best path — a dropped deviation edge."""
    if len(paths) >= 2:
        return [paths[0]] + paths[2:]
    return paths


def _mut_cutoff_off_by_one(paths: list[Path], case: FuzzCase) -> list[Path]:
    """Drop the k-th path — an exclusive instead of inclusive τ cutoff."""
    if len(paths) == case.k:
        return paths[:-1]
    return paths


def _mut_length_drift(paths: list[Path], case: FuzzCase) -> list[Path]:
    """Misprice the best path by 1e-3 — a stale distance label."""
    if paths:
        first = paths[0]
        return [Path(length=first.length + 1e-3, nodes=first.nodes)] + paths[1:]
    return paths


def _mut_duplicate_path(paths: list[Path], case: FuzzCase) -> list[Path]:
    """Report the best path twice — broken pseudo-tree dedup."""
    if len(paths) >= 2:
        return paths[:-1] + [paths[0]]
    return paths


def _mut_unsorted(paths: list[Path], case: FuzzCase) -> list[Path]:
    """Emit paths out of length order — a broken result heap."""
    if len(paths) >= 2 and paths[0].length != paths[-1].length:
        return [paths[-1]] + paths[1:-1] + [paths[0]]
    return paths


#: Named planted bugs for :func:`self_check`.
MUTATIONS: dict[str, Callable[[list[Path], FuzzCase], list[Path]]] = {
    "drop-deviation": _mut_drop_deviation,
    "cutoff-off-by-one": _mut_cutoff_off_by_one,
    "length-drift": _mut_length_drift,
    "duplicate-path": _mut_duplicate_path,
    "unsorted": _mut_unsorted,
}


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """One detected disagreement, with its (possibly shrunk) repro."""

    case: FuzzCase
    original: FuzzCase
    mode: str  # "oracle" | "invariant"
    messages: tuple[str, ...]
    repro_path: str | None = None

    def to_dict(self) -> dict:
        """The repro-file document (replayable via :func:`replay_file`)."""
        out = {
            "version": 1,
            "mode": self.mode,
            "failures": list(self.messages),
            "case": self.case.to_dict(),
        }
        if self.original != self.case:
            out["original_case"] = self.original.to_dict()
        return out


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` invocation."""

    seed: int
    cases_run: int = 0
    oracle_cases: int = 0
    invariant_cases: int = 0
    elapsed_s: float = 0.0
    failures: list[FuzzFailure] = field(default_factory=list)
    mutation: str | None = None

    @property
    def ok(self) -> bool:
        """True when no case produced a disagreement."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable one-paragraph outcome."""
        planted = f", planted mutation {self.mutation!r}" if self.mutation else ""
        head = (
            f"fuzz seed={self.seed}: {self.cases_run} cases "
            f"({self.oracle_cases} oracle, {self.invariant_cases} invariant) "
            f"in {self.elapsed_s:.1f}s{planted} — "
        )
        if self.ok:
            return head + "all configurations agree"
        lines = [head + f"{len(self.failures)} FAILURE(S)"]
        for failure in self.failures:
            lines.append(f"  [{failure.mode}] {failure.case.describe()}")
            for message in failure.messages[:4]:
                lines.append(f"    - {message}")
            if failure.repro_path:
                lines.append(f"    repro: {failure.repro_path}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
def check_case(
    case: FuzzCase,
    kernels: Sequence[str] = KERNELS,
    mutation: Callable[[list[Path], FuzzCase], list[Path]] | None = None,
    algorithm_hint: str = "iter-bound-spti",
) -> tuple[str, list[str]]:
    """Dispatch one case to the oracle stack or the invariant suite.

    Returns ``(mode, failure_messages)``; size decides the mode (the
    oracle is exhaustive, so only small cases can afford it).
    """
    for kernel in kernels:
        if kernel not in KERNELS:
            raise QueryError(
                f"unknown kernel {kernel!r}; choose one of: {', '.join(KERNELS)}"
            )
    if case.n <= ORACLE_MAX_NODES:
        return "oracle", check_against_oracles(case, kernels, mutation)
    return "invariant", check_invariants(case, kernels, algorithm_hint)


def _case_for_index(seed: int, index: int) -> FuzzCase:
    """The deterministic case for one (seed, index) slot."""
    case_seed = seed * 1_000_003 + index
    if index % _INVARIANT_STRIDE == _INVARIANT_STRIDE - 1:
        return generate_case(
            case_seed, min_nodes=_INVARIANT_MIN, max_nodes=_INVARIANT_MAX
        )
    return generate_case(case_seed)


def run_fuzz(
    seed: int = 0,
    cases: int = 200,
    time_budget: float | None = None,
    kernels: Sequence[str] = KERNELS,
    shrink: bool = True,
    corpus_dir: str | None = None,
    mutation: str | None = None,
    max_failures: int = 5,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the differential fuzzer.

    Parameters
    ----------
    seed, cases:
        ``cases`` deterministic instances derived from ``seed``.
    time_budget:
        Optional wall-clock cap in seconds; the loop stops early (the
        report says how many cases actually ran).
    kernels:
        Search substrates to cross-check (default: both).
    shrink:
        Minimise failing cases before reporting them.
    corpus_dir:
        Where to write repro files for failures (created on demand);
        ``None`` keeps failures in memory only.
    mutation:
        Name of a planted :data:`MUTATIONS` entry (self-check mode);
        ``None`` for an honest run.
    max_failures:
        Stop after this many failing cases (shrinking is expensive;
        a systemic bug would otherwise fail every case).
    progress:
        Optional callback for periodic status lines.
    """
    mutate = None
    if mutation is not None:
        try:
            mutate = MUTATIONS[mutation]
        except KeyError:
            raise QueryError(
                f"unknown mutation {mutation!r}; choose one of: "
                f"{', '.join(sorted(MUTATIONS))}"
            ) from None
    report = FuzzReport(seed=seed, mutation=mutation)
    start = time.perf_counter()
    rotation = _REGISTRY_ROTATION
    for index in range(cases):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        case = _case_for_index(seed, index)
        algorithm = rotation[index % len(rotation)]
        mode, messages = check_case(case, kernels, mutate, algorithm)
        report.cases_run += 1
        if mode == "oracle":
            report.oracle_cases += 1
        else:
            report.invariant_cases += 1
        if progress is not None and (index + 1) % 50 == 0:
            progress(
                f"  ... {index + 1}/{cases} cases, "
                f"{len(report.failures)} failures"
            )
        if not messages:
            continue
        original = case
        if shrink:
            def still_fails(candidate: FuzzCase) -> bool:
                return bool(check_case(candidate, kernels, mutate, algorithm)[1])

            case = shrink_case(case, still_fails)
            _, messages = check_case(case, kernels, mutate, algorithm)
            if not messages:  # over-shrunk (flaky check); keep the original
                case, messages = original, check_case(
                    original, kernels, mutate, algorithm
                )[1]
        failure = FuzzFailure(
            case=case, original=original, mode=mode, messages=tuple(messages)
        )
        if corpus_dir is not None:
            os.makedirs(corpus_dir, exist_ok=True)
            path = os.path.join(
                corpus_dir, f"repro-seed{seed}-case{index}.json"
            )
            with open(path, "w") as fh:
                json.dump(failure.to_dict(), fh, sort_keys=True, indent=2)
                fh.write("\n")
            failure.repro_path = path
        report.failures.append(failure)
        if len(report.failures) >= max_failures:
            break
    report.elapsed_s = time.perf_counter() - start
    return report


def replay_file(
    path: str, kernels: Sequence[str] = KERNELS
) -> list[str]:
    """Re-run the check for a repro or corpus file; return failures.

    Accepts both harness repro documents (``{"case": {...}, ...}``)
    and bare corpus case documents (the :meth:`FuzzCase.to_dict`
    shape), so one replayer serves ``fuzz/corpus/`` and ad-hoc
    debugging alike.  An honest codebase returns ``[]``.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise QueryError(f"cannot read repro file {path!r}: {exc}") from None
    case = FuzzCase.from_dict(data["case"] if "case" in data else data)
    _, messages = check_case(case, kernels)
    return messages


def self_check(
    seed: int = 0,
    cases_per_mutation: int = 30,
    kernels: Sequence[str] = ("dict",),
) -> dict[str, bool]:
    """Prove the harness catches each planted bug class.

    For every :data:`MUTATIONS` entry, fuzz small oracle cases with
    the mutation planted and record whether at least one failure was
    detected; also run the same budget honestly and record that *no*
    failure fired (key ``"clean"``).  The first detected failure is
    additionally shrunk and re-checked, so the shrinker's
    preserve-the-failure contract is exercised on every self-check.
    """
    outcomes: dict[str, bool] = {}
    for name in sorted(MUTATIONS):
        report = run_fuzz(
            seed=seed,
            cases=cases_per_mutation,
            kernels=kernels,
            shrink=True,
            mutation=name,
            max_failures=1,
        )
        detected = not report.ok
        if detected:
            failure = report.failures[0]
            shrunk_messages = check_case(
                failure.case, kernels, MUTATIONS[name]
            )[1]
            detected = bool(shrunk_messages)
        outcomes[name] = detected
    clean = run_fuzz(
        seed=seed, cases=cases_per_mutation, kernels=kernels, shrink=False
    )
    outcomes["clean"] = clean.ok
    return outcomes


def _rebuild_failure(data: dict) -> FuzzFailure:  # pragma: no cover - debug aid
    """Inverse of :meth:`FuzzFailure.to_dict` (debugging helper)."""
    case = FuzzCase.from_dict(data["case"])
    original = (
        FuzzCase.from_dict(data["original_case"])
        if "original_case" in data
        else case
    )
    return FuzzFailure(
        case=case,
        original=original,
        mode=data.get("mode", "oracle"),
        messages=tuple(data.get("failures", ())),
    )
