"""Metamorphic invariants — correctness checks that need no oracle.

Brute-force enumeration stops being affordable past ~10 nodes, but
several *relations between answers* must hold at any scale.  Each
check below derives a transformed query (or a transformed graph) whose
answer is fully determined by the original answer, runs both, and
flags any disagreement:

* **top-k prefix** — the top-``k`` length sequence is a prefix of the
  top-``(k+Δ)`` sequence (the answer to a larger ``k`` never rewrites
  earlier ranks);
* **τ/α schedule invariance** — ``alpha`` only paces the iteratively
  bounding τ growth; the returned length sequence is identical for
  any growth factor;
* **``G_Q``-transform equivalence** — materialising the virtual
  target (and virtual source) as *real* nodes of a fresh graph and
  running classic Yen to the target yields the same lengths (KPJ
  really is KSP on ``G_Q``, Section 3 / Section 6 of the paper);
* **permutation invariance** — relabeling nodes by a random
  permutation permutes the paths but leaves the length sequence
  untouched (integer weights make the comparison exact);
* **weight-scaling invariance** — multiplying every weight by a
  power of two (exact in floating point) scales every length by the
  same factor and nothing else;
* **work parity** — the work counters of
  :data:`repro.core.stats.WORK_PARITY_FIELDS` (relaxations, heap
  pushes/pops, settled nodes, TestLB verdicts, …) agree *exactly*
  across the dict, flat, and native kernels: the three substrates
  claim to run the same algorithm, so they must do the same work,
  not just return the same lengths.

All checks use the public solver API, so they also cover the prepared
cache, the kernels, and the query-graph overlay on the way through.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.kpj import DEFAULT_ALGORITHM, KPJSolver
from repro.core.result import QueryResult
from repro.core.stats import WORK_PARITY_FIELDS
from repro.fuzz.generators import FuzzCase, simplified
from repro.fuzz.oracles import TOL, _yen_lengths, build_solver, run_query
from repro.pathing.kernels import KERNELS
from repro.validation import validate_result

__all__ = ["check_invariants", "work_parity_failures", "INVARIANTS"]

#: Invariant names, in the order they run (for reporting).
INVARIANTS = (
    "structure",
    "prefix",
    "alpha",
    "gq_transform",
    "permutation",
    "weight_scaling",
    "work_parity",
)

#: Counters that are kernel-asymmetric for ``da-spt`` only: its full
#: backward SPT counts settles on the dict substrate but the
#: scipy/compiled array builds have no per-node counter hook (see
#: :func:`repro.pathing.spt.build_spt_to_target`).
_DA_SPT_ASYMMETRIC = frozenset({"nodes_settled"})


def _parity_fields(algorithm: str) -> tuple[str, ...]:
    if algorithm == "da-spt":
        return tuple(f for f in WORK_PARITY_FIELDS if f not in _DA_SPT_ASYMMETRIC)
    return WORK_PARITY_FIELDS


def work_parity_failures(
    case: FuzzCase,
    algorithm: str = DEFAULT_ALGORITHM,
    kernels: Sequence[str] = KERNELS,
) -> list[str]:
    """Assert the cross-kernel work-counter parity for one case.

    Runs the query once per kernel and compares the
    :data:`~repro.core.stats.WORK_PARITY_FIELDS` snapshots pairwise
    against the first kernel's.  Returns one failure message per
    diverging counter (empty list = exact parity).
    """
    fields = _parity_fields(algorithm)
    baseline: dict[str, int] | None = None
    baseline_kernel = ""
    failures: list[str] = []
    for kernel in kernels:
        solver = build_solver(case, kernel, cached=True)
        result = run_query(solver, case, algorithm)
        snapshot = {f: getattr(result.stats, f) for f in fields}
        if baseline is None:
            baseline, baseline_kernel = snapshot, kernel
            continue
        for name, value in snapshot.items():
            if value != baseline[name]:
                failures.append(
                    f"work_parity/{algorithm}: {name} diverges — "
                    f"{baseline_kernel}={baseline[name]} {kernel}={value}"
                )
    return failures

_K_DELTA = 3
_SCALE = 4.0  # power of two: exact in floating point
_ALPHAS = (1.02, 3.0)


def _lengths(result: QueryResult) -> tuple[float, ...]:
    return tuple(round(p.length, 9) for p in result.paths)


def _with_k(case: FuzzCase, k: int) -> FuzzCase:
    return simplified(case, k=k)


def _permuted(case: FuzzCase, rng: random.Random) -> FuzzCase:
    perm = list(range(case.n))
    rng.shuffle(perm)
    return simplified(
        case,
        edges=tuple((perm[u], perm[v], w) for u, v, w in case.edges),
        sources=tuple(sorted(perm[s] for s in case.sources)),
        destinations=tuple(sorted(perm[t] for t in case.destinations)),
    )


def _scaled(case: FuzzCase, factor: float) -> FuzzCase:
    return simplified(
        case,
        edges=tuple((u, v, w * factor) for u, v, w in case.edges),
    )


def _structure_failures(
    case: FuzzCase, solver: KPJSolver, result: QueryResult, where: str
) -> list[str]:
    report = validate_result(
        solver.graph, result, case.sources, case.destinations, case.k
    )
    return [f"{where}: {v}" for v in report.violations]


def check_invariants(
    case: FuzzCase,
    kernels: Sequence[str] = KERNELS,
    algorithm: str = DEFAULT_ALGORITHM,
) -> list[str]:
    """Run every metamorphic check for one (typically large) case.

    Returns failure messages; empty list = all invariants hold on
    every requested kernel.  ``algorithm`` picks the registry entry
    under test (the harness rotates it across cases).
    """
    failures: list[str] = []
    rng = random.Random(case.seed if case.seed is not None else 0)
    failures.extend(work_parity_failures(case, algorithm, kernels))
    base_lengths: tuple[float, ...] | None = None
    for kernel in kernels:
        where = f"invariant/{algorithm}/{kernel}"
        solver = build_solver(case, kernel, cached=True)
        base = run_query(solver, case, algorithm)
        failures.extend(_structure_failures(case, solver, base, where))
        lengths = _lengths(base)
        if base_lengths is None:
            base_lengths = lengths
        elif lengths != base_lengths:
            failures.append(
                f"{where}: kernels disagree — {lengths} vs {base_lengths}"
            )
            continue
        # Top-k prefix property: a larger k never rewrites earlier ranks.
        wider = run_query(solver, _with_k(case, case.k + _K_DELTA), algorithm)
        if _lengths(wider)[: len(lengths)] != lengths or len(wider.paths) < len(
            base.paths
        ):
            failures.append(
                f"{where}: top-{case.k} is not a prefix of "
                f"top-{case.k + _K_DELTA} ({lengths} vs {_lengths(wider)})"
            )
        # τ/α schedule invariance: alpha is a performance knob only.
        for alpha in _ALPHAS:
            varied = run_query(solver, simplified(case, alpha=alpha), algorithm)
            if _lengths(varied) != lengths:
                failures.append(
                    f"{where}: alpha={alpha} changed the answer "
                    f"({_lengths(varied)} vs {lengths})"
                )
                break
    if base_lengths is None:  # pragma: no cover - kernels is never empty
        return failures
    # G_Q-transform equivalence: independent Yen on the materialised
    # transform graph must reproduce the length sequence.
    yen = tuple(round(x, 9) for x in _yen_lengths(case))
    if yen != base_lengths:
        failures.append(
            f"invariant/gq_transform: yen-on-G_Q lengths {yen} "
            f"!= solver lengths {base_lengths}"
        )
    # Permutation invariance: relabeled instance, identical lengths.
    permuted = _permuted(case, rng)
    psolver = build_solver(permuted, kernels[0], cached=True)
    plengths = _lengths(run_query(psolver, permuted, algorithm))
    if plengths != base_lengths:
        failures.append(
            f"invariant/permutation: relabeled instance answered "
            f"{plengths} != {base_lengths}"
        )
    # Weight-scaling invariance: lengths scale by exactly the factor.
    scaled = _scaled(case, _SCALE)
    ssolver = build_solver(scaled, kernels[0], cached=True)
    slengths = _lengths(run_query(ssolver, scaled, algorithm))
    expected = tuple(round(x * _SCALE, 9) for x in base_lengths)
    if any(abs(a - b) > TOL * _SCALE for a, b in zip(slengths, expected)) or len(
        slengths
    ) != len(expected):
        failures.append(
            f"invariant/weight_scaling: x{_SCALE} weights answered "
            f"{slengths}, expected {expected}"
        )
    return failures
