"""The oracle stack: every fast path vs. brute force and Yen.

On small instances the fuzzer can afford ground truth: the brute-force
enumerator (:mod:`repro.baselines.brute_force`) lists *every* simple
path, which pins down both the exact top-k length multiset and the set
of paths allowed to appear in an answer (ties at the k-th length mean
several answer sets are equally correct — any returned path must lie
within the tie-admissible set, and the length sequence must match
exactly).  Classic Yen (:mod:`repro.baselines.yen`), run on an
explicitly materialised ``G_Q`` transform graph, provides a second,
code-independent oracle for the same lengths.

:func:`check_against_oracles` runs one case through the full config
matrix — every registry algorithm × requested kernels × cached /
uncached prepared-category cache × sequential / ``solve_batch`` — and
returns human-readable failure messages (empty list = all agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.brute_force import enumerate_simple_paths
from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.core.result import Path, QueryResult
from repro.fuzz.generators import FuzzCase, sequence_hash
from repro.pathing.kernels import KERNELS
from repro.server.pool import BatchQuery
from repro.validation import validate_result

__all__ = ["RunConfig", "OracleExpectation", "check_against_oracles", "run_query"]

TOL = 1e-9

#: A result transformer planted by the self-check mode (None = honest).
Mutation = Callable[[list[Path], FuzzCase], list[Path]]


@dataclass(frozen=True)
class RunConfig:
    """One cell of the differential config matrix."""

    algorithm: str
    kernel: str
    cached: bool
    batch: bool = False

    def describe(self) -> str:
        """Short label used in failure messages and repro files."""
        cache = "cached" if self.cached else "uncached"
        mode = "batch" if self.batch else "seq"
        return f"{self.algorithm}/{self.kernel}/{cache}/{mode}"

    def to_dict(self) -> dict:
        """JSON-ready representation for repro files."""
        return {
            "algorithm": self.algorithm,
            "kernel": self.kernel,
            "cached": self.cached,
            "batch": self.batch,
        }


@dataclass(frozen=True)
class OracleExpectation:
    """Ground truth for one case, from exhaustive enumeration.

    ``lengths`` is the unique correct top-k length sequence;
    ``admissible`` is the set of node tuples allowed to appear in a
    correct answer (every path strictly shorter than the k-th length
    plus every path tied with it).
    """

    lengths: tuple[float, ...]
    admissible: frozenset[tuple[int, ...]]


def oracle_expectation(case: FuzzCase) -> OracleExpectation:
    """Enumerate the pooled simple-path universe and derive the answer.

    GKPJ pools the per-source enumerations (a path is identified by
    its node sequence, so paths from different sources never collide).
    """
    graph = case.graph()
    pool: list[Path] = []
    for source in set(case.sources):
        pool.extend(enumerate_simple_paths(graph, source, case.destinations))
    pool.sort()
    top = pool[: case.k]
    lengths = tuple(p.length for p in top)
    if not top:
        return OracleExpectation(lengths=(), admissible=frozenset())
    cutoff = top[-1].length + TOL
    admissible = frozenset(p.nodes for p in pool if p.length <= cutoff)
    return OracleExpectation(lengths=lengths, admissible=admissible)


def build_solver(case: FuzzCase, kernel: str, cached: bool) -> KPJSolver:
    """A solver wired for one (kernel, cache) cell of the matrix."""
    return KPJSolver(
        case.graph(),
        categories=case.category_index(),
        landmarks=min(2, case.n),
        seed=0,
        kernel=kernel,
        prepared_cache_size=8 if cached else 0,
    )


def run_query(
    solver: KPJSolver, case: FuzzCase, algorithm: str
) -> QueryResult:
    """Issue the case's query sequentially through the public API."""
    if case.kind == "ksp":
        return solver.ksp(
            case.sources[0], case.destinations[0], k=case.k,
            algorithm=algorithm, alpha=case.alpha,
        )
    if case.kind == "gkpj":
        return solver.join(
            sources=case.sources, destinations=case.destinations,
            k=case.k, algorithm=algorithm, alpha=case.alpha,
        )
    if case.category is not None:
        return solver.top_k(
            case.sources[0], category=case.category, k=case.k,
            algorithm=algorithm, alpha=case.alpha,
        )
    return solver.top_k(
        case.sources[0], destinations=case.destinations, k=case.k,
        algorithm=algorithm, alpha=case.alpha,
    )


def _check_answer(
    case: FuzzCase,
    expectation: OracleExpectation,
    config: RunConfig,
    paths: Sequence[Path],
) -> list[str]:
    """Compare one answer against ground truth; return violations."""
    failures: list[str] = []
    where = config.describe()
    got = tuple(p.length for p in paths)
    if len(got) != len(expectation.lengths):
        failures.append(
            f"{where}: returned {len(got)} paths, oracle says "
            f"{len(expectation.lengths)}"
        )
    for rank, (a, b) in enumerate(zip(got, expectation.lengths), start=1):
        if abs(a - b) > TOL:
            failures.append(
                f"{where}: rank {rank} length {a}, oracle says {b}"
            )
            break
    for path in paths:
        if path.nodes not in expectation.admissible:
            failures.append(
                f"{where}: path {path.nodes} (length {path.length}) is not "
                "an admissible top-k path"
            )
            break
    report = validate_result(
        case.graph(),
        QueryResult(paths=list(paths), algorithm=config.algorithm),
        case.sources,
        case.destinations,
        case.k,
    )
    failures.extend(f"{where}: {v}" for v in report.violations)
    return failures


def _yen_lengths(case: FuzzCase) -> tuple[float, ...]:
    """Independent Yen oracle on an explicitly materialised ``G_Q``.

    The virtual target (and, for GKPJ, virtual source) is added as a
    *real* node of a fresh graph — no shared overlay machinery — so a
    bug in the transform itself cannot hide from this check.
    """
    from repro.baselines.yen import yen_ksp
    from repro.graph.digraph import DiGraph

    extra = 2 if case.kind == "gkpj" else 1
    g = DiGraph(case.n + extra)
    for u, v, w in case.edges:
        g.add_edge(u, v, w)
    target = case.n
    for v in set(case.destinations):
        g.add_edge(v, target, 0.0)
    if case.kind == "gkpj":
        source = case.n + 1
        for s in set(case.sources):
            g.add_edge(source, s, 0.0)
    else:
        source = case.sources[0]
    g.freeze()
    return tuple(p.length for p in yen_ksp(g, source, target, case.k))


def check_against_oracles(
    case: FuzzCase,
    kernels: Sequence[str] = KERNELS,
    mutation: Mutation | None = None,
) -> list[str]:
    """Run the full differential matrix for one small case.

    Returns failure messages; an empty list means every registry
    algorithm, on every kernel, cached and uncached, sequentially and
    through ``solve_batch``, agreed exactly with the brute-force
    enumeration (and Yen agreed on the lengths).
    """
    failures: list[str] = []
    expectation = oracle_expectation(case)
    yen = _yen_lengths(case)
    if any(abs(a - b) > TOL for a, b in zip(yen, expectation.lengths)) or len(
        yen
    ) != len(expectation.lengths):
        # The two oracles disagreeing is its own (harness) bug class.
        failures.append(
            f"oracle disagreement: yen lengths {yen} vs brute force "
            f"{expectation.lengths}"
        )
    algorithms = sorted(ALGORITHMS)
    for kernel in kernels:
        for cached in (True, False):
            solver = build_solver(case, kernel, cached)
            sequential: dict[str, tuple] = {}
            for algorithm in algorithms:
                result = run_query(solver, case, algorithm)
                paths = list(result.paths)
                if mutation is not None:
                    paths = mutation(paths, case)
                config = RunConfig(algorithm, kernel, cached)
                failures.extend(_check_answer(case, expectation, config, paths))
                sequential[algorithm] = sequence_hash(paths)
            if case.kind == "gkpj":
                continue  # BatchQuery carries a single source
            queries = [
                BatchQuery(
                    source=case.sources[0],
                    category=case.category,
                    destinations=(
                        None if case.category is not None else case.destinations
                    ),
                    k=case.k,
                    algorithm=algorithm,
                    alpha=case.alpha,
                )
                for algorithm in algorithms
            ]
            results = solver.solve_batch(queries)
            for algorithm, result in zip(algorithms, results):
                paths = list(result.paths)
                if mutation is not None:
                    paths = mutation(paths, case)
                config = RunConfig(algorithm, kernel, cached, batch=True)
                failures.extend(_check_answer(case, expectation, config, paths))
                if sequence_hash(paths) != sequential[algorithm]:
                    failures.append(
                        f"{config.describe()}: batch answer differs from the "
                        "sequential answer of the same config"
                    )
    return failures
