"""Greedy minimisation of failing fuzz cases.

A raw failure from the harness can involve dozens of edges and a
multi-part query; the shrinker reduces it to something a human can
read in one glance while *preserving the failure* — after every
candidate mutation the full check is re-run and the mutation is kept
only if the case still fails.

Passes (each runs to fixpoint, the whole schedule repeats until no
pass makes progress or the check budget is spent):

1. drop the category-name indirection (query by explicit nodes);
2. shrink ``k`` toward 1;
3. drop destination nodes, then source nodes;
4. delete edges — delta-debugging style (halves, then quarters, …,
   then single edges);
5. compact away nodes that no longer appear anywhere (relabeling
   densely, so the repro has no ghost ids);
6. simplify weights (to ``0.0``, else to ``1.0``).

Everything is deterministic: the same failing case with the same
predicate always shrinks to the same repro.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import QueryError
from repro.fuzz.generators import FuzzCase, simplified

__all__ = ["shrink_case"]


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_checks: int = 400,
) -> FuzzCase:
    """Minimise ``case`` while ``still_fails`` keeps returning True.

    ``still_fails`` must be the exact failing check (same kernels,
    same planted mutation, same config matrix) — the shrinker treats
    it as a black box.  ``max_checks`` bounds the number of predicate
    invocations; when the budget runs out the best case found so far
    is returned.
    """
    budget = [max_checks]

    def attempt(candidate: FuzzCase) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return still_fails(candidate)
        except QueryError:
            return False  # candidate became structurally invalid

    def try_make(**changes) -> FuzzCase | None:
        try:
            return simplified(case, **changes)
        except QueryError:
            return None

    # Pass 1: drop the category indirection once, up front.
    plain = try_make()
    if plain is not None and plain != case and attempt(plain):
        case = plain

    progressed = True
    while progressed and budget[0] > 0:
        progressed = False

        # Pass 2: shrink k (try 1 directly, then decrement).
        for k in ({1, case.k // 2, case.k - 1} - {0, case.k}):
            candidate = try_make(k=k)
            if candidate is not None and attempt(candidate):
                case = candidate
                progressed = True
                break

        # Pass 3: drop destinations, then sources.
        for field in ("destinations", "sources"):
            nodes = getattr(case, field)
            i = 0
            while len(nodes) > 1 and i < len(nodes) and budget[0] > 0:
                candidate = try_make(**{field: nodes[:i] + nodes[i + 1:]})
                if candidate is not None and attempt(candidate):
                    case = candidate
                    nodes = getattr(case, field)
                    progressed = True
                else:
                    i += 1

        # Pass 4: delete edges, ddmin-style.
        chunk = max(1, len(case.edges) // 2)
        while chunk >= 1 and budget[0] > 0:
            i = 0
            while i < len(case.edges) and budget[0] > 0:
                edges = case.edges[:i] + case.edges[i + chunk:]
                candidate = try_make(edges=edges)
                if candidate is not None and attempt(candidate):
                    case = candidate
                    progressed = True
                else:
                    i += chunk
            chunk //= 2

        # Pass 5: compact unused node ids away.
        used = sorted(
            {u for u, _, _ in case.edges}
            | {v for _, v, _ in case.edges}
            | set(case.sources)
            | set(case.destinations)
        )
        if len(used) < case.n:
            relabel = {old: new for new, old in enumerate(used)}
            candidate = try_make(
                n=len(used),
                edges=tuple(
                    (relabel[u], relabel[v], w) for u, v, w in case.edges
                ),
                sources=tuple(sorted(relabel[s] for s in case.sources)),
                destinations=tuple(
                    sorted(relabel[t] for t in case.destinations)
                ),
            )
            if candidate is not None and attempt(candidate):
                case = candidate
                progressed = True

        # Pass 6: simplify weights.
        for i, (u, v, w) in enumerate(case.edges):
            if budget[0] <= 0:
                break
            for simpler in (0.0, 1.0):
                if w == simpler:
                    continue
                edges = (
                    case.edges[:i] + ((u, v, simpler),) + case.edges[i + 1:]
                )
                candidate = try_make(edges=edges)
                if candidate is not None and attempt(candidate):
                    case = candidate
                    progressed = True
                    break
    return case
