"""Graph substrate: compact digraph, categories, virtual transforms, IO."""

from repro.graph.builder import BuiltGraph, GraphBuilder
from repro.graph.categories import CategoryIndex
from repro.graph.csr import CSRGraph, to_csr
from repro.graph.digraph import DiGraph
from repro.graph.virtual import QueryGraph, build_query_graph

__all__ = [
    "BuiltGraph",
    "GraphBuilder",
    "CategoryIndex",
    "CSRGraph",
    "to_csr",
    "DiGraph",
    "QueryGraph",
    "build_query_graph",
]
