"""Incremental graph builder with symbolic node names.

Road-network files and ad-hoc examples often refer to nodes by external
identifiers (strings, sparse integers, coordinates).  The algorithms in
this package require dense integer ids, so :class:`GraphBuilder` maps
arbitrary hashable labels onto ``0..n-1`` while edges are streamed in,
then produces a frozen :class:`~repro.graph.digraph.DiGraph` plus the
label table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder", "BuiltGraph"]


@dataclass
class BuiltGraph:
    """The output of :meth:`GraphBuilder.build`.

    Attributes
    ----------
    graph:
        The frozen :class:`DiGraph`.
    labels:
        ``labels[i]`` is the external label of internal node ``i``.
    index:
        Reverse mapping from external label to internal id.
    """

    graph: DiGraph
    labels: list[Hashable]
    index: dict[Hashable, int]

    def node_id(self, label: Hashable) -> int:
        """Internal id of an external label.

        Raises
        ------
        GraphError
            If the label was never seen by the builder.
        """
        try:
            return self.index[label]
        except KeyError:
            raise GraphError(f"unknown node label {label!r}") from None


@dataclass
class GraphBuilder:
    """Accumulates labelled edges, then builds a dense frozen graph.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge("a", "b", 1.0)
    >>> b.add_edge("b", "c", 2.0)
    >>> built = b.build()
    >>> built.graph.m
    2
    """

    bidirectional: bool = False
    _edges: list[tuple[int, int, float]] = field(default_factory=list)
    _index: dict[Hashable, int] = field(default_factory=dict)
    _labels: list[Hashable] = field(default_factory=list)

    def node(self, label: Hashable) -> int:
        """Intern a label, returning its dense id (creating it if new)."""
        node_id = self._index.get(label)
        if node_id is None:
            node_id = len(self._labels)
            self._index[label] = node_id
            self._labels.append(label)
        return node_id

    def add_edge(self, u: Hashable, v: Hashable, weight: float) -> None:
        """Add edge ``u -> v`` (labels are interned automatically)."""
        self._edges.append((self.node(u), self.node(v), float(weight)))

    def add_node(self, label: Hashable) -> int:
        """Ensure an isolated node exists; returns its id."""
        return self.node(label)

    @property
    def num_nodes(self) -> int:
        """Number of distinct labels seen so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    def build(self) -> BuiltGraph:
        """Produce the frozen graph and the label tables."""
        g = DiGraph(len(self._labels))
        add = g.add_bidirectional_edge if self.bidirectional else g.add_edge
        for u, v, w in self._edges:
            add(u, v, w)
        return BuiltGraph(graph=g.freeze(), labels=list(self._labels), index=dict(self._index))
