"""Category (POI) inverted index.

The paper assumes "an inverted index is offline built on the categories
of nodes such that ``V_T`` can be efficiently retrieved online"
(Section 2).  :class:`CategoryIndex` is that index: it maps category
names to sorted node-id tuples and supports membership tests, multi-
category union, and iteration.  A node may carry any number of
categories (a road junction can host both a "Hotel" and a "Fuel" POI).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import QueryError

__all__ = ["CategoryIndex"]


class CategoryIndex:
    """Inverted index from category name to the set of member nodes.

    Parameters
    ----------
    members:
        Mapping from category name to an iterable of node ids.

    Notes
    -----
    Node lists are deduplicated and stored sorted, so ``nodes_of`` is a
    stable tuple suitable for deterministic iteration, and ``frozenset``
    views are cached for O(1) membership tests during query processing.
    """

    def __init__(self, members: Mapping[str, Iterable[int]]) -> None:
        self._members: dict[str, tuple[int, ...]] = {
            name: tuple(sorted(set(nodes))) for name, nodes in members.items()
        }
        self._sets: dict[str, frozenset[int]] = {
            name: frozenset(nodes) for name, nodes in self._members.items()
        }

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def nodes_of(self, category: str) -> tuple[int, ...]:
        """Sorted node ids of a category.

        Raises
        ------
        QueryError
            If the category is unknown or empty.
        """
        try:
            nodes = self._members[category]
        except KeyError:
            raise QueryError(f"unknown category {category!r}") from None
        if not nodes:
            raise QueryError(f"category {category!r} has no member nodes")
        return nodes

    def node_set(self, category: str) -> frozenset[int]:
        """Membership set of a category (same validation as :meth:`nodes_of`)."""
        self.nodes_of(category)
        return self._sets[category]

    def union(self, categories: Sequence[str]) -> tuple[int, ...]:
        """Sorted union of several categories' nodes."""
        merged: set[int] = set()
        for category in categories:
            merged.update(self.nodes_of(category))
        return tuple(sorted(merged))

    def categories_of(self, node: int) -> tuple[str, ...]:
        """All categories that contain ``node`` (sorted by name)."""
        return tuple(
            sorted(name for name, nodes in self._sets.items() if node in nodes)
        )

    def has_category(self, category: str) -> bool:
        """Whether the category exists (possibly empty)."""
        return category in self._members

    def size(self, category: str) -> int:
        """Number of nodes in a category."""
        return len(self.nodes_of(category))

    def __contains__(self, category: str) -> bool:
        return category in self._members

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CategoryIndex({len(self._members)} categories)"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_node_labels(cls, labels: Mapping[int, Iterable[str]]) -> "CategoryIndex":
        """Build from a per-node label mapping ``{node: [categories...]}``."""
        members: dict[str, list[int]] = {}
        for node, cats in labels.items():
            for cat in cats:
                members.setdefault(cat, []).append(node)
        return cls(members)

    def merged_with(self, other: "CategoryIndex") -> "CategoryIndex":
        """A new index containing the categories of both (union per name)."""
        members: dict[str, list[int]] = {
            name: list(nodes) for name, nodes in self._members.items()
        }
        for name in other._members:
            members.setdefault(name, []).extend(other._members[name])
        return CategoryIndex(members)
