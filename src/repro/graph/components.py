"""Connectivity: strongly connected components and subgraph extraction.

The synthetic generators restrict their output to one component so
every query is satisfiable; for *bidirectional* road networks a BFS
suffices, but imported graphs (DIMACS files are directed; one-way
streets exist) need real SCCs.  :func:`strongly_connected_components`
is an iterative Tarjan (no recursion limit issues on long path
graphs); :func:`largest_strongly_connected_subgraph` relabels the
biggest SCC densely, the normal preprocessing step before indexing an
imported network.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "strongly_connected_components",
    "largest_strongly_connected_subgraph",
    "is_strongly_connected",
]


def strongly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Tarjan's SCC algorithm, iteratively.

    Returns the components as node-id lists (each sorted), in reverse
    topological order of the condensation (Tarjan's natural output
    order).
    """
    n = graph.n
    adjacency = graph.adjacency
    index_of = [-1] * n  # discovery index, -1 = unvisited
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each work item: (node, iterator position into its adjacency).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_position = work[-1]
            if edge_position == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            edges = adjacency[node]
            while edge_position < len(edges):
                successor = edges[edge_position][0]
                edge_position += 1
                if index_of[successor] == -1:
                    work[-1] = (node, edge_position)
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack[successor]:
                    if index_of[successor] < low[node]:
                        low[node] = index_of[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                component.sort()
                components.append(component)
    return components


def is_strongly_connected(graph: DiGraph) -> bool:
    """Whether the whole graph is one SCC (vacuously true when empty)."""
    if graph.n == 0:
        return True
    return len(strongly_connected_components(graph)) == 1


def largest_strongly_connected_subgraph(
    graph: DiGraph, coordinates: np.ndarray | None = None
) -> tuple[DiGraph, np.ndarray | None, list[int]]:
    """Restrict to the largest SCC with dense relabelling.

    Returns ``(subgraph, coordinates_or_None, kept_nodes)`` where
    ``kept_nodes[i]`` is the original id of new node ``i`` (sorted, so
    relabelling is order-preserving).
    """
    components = strongly_connected_components(graph)
    if not components:
        return DiGraph(0).freeze(), coordinates, []
    keep = max(components, key=len)
    relabel = {old: new for new, old in enumerate(keep)}
    member = set(keep)
    out = DiGraph(len(keep))
    for old in keep:
        for v, w in graph.out_edges(old):
            if v in member:
                out.add_edge(relabel[old], relabel[v], w)
    kept_coords = coordinates[keep] if coordinates is not None else None
    return out.freeze(), kept_coords, keep
