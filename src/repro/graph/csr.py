"""Compressed-sparse-row (CSR) export of a :class:`DiGraph`.

The core search algorithms iterate adjacency as Python tuples (fastest
in CPython), but analytics — connectivity checks, degree statistics,
vectorised all-pairs sampling for Figure 11 — are much faster over
numpy CSR arrays.  :class:`CSRGraph` is an immutable snapshot with the
classic three-array layout (``indptr``, ``indices``, ``weights``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["CSRGraph", "to_csr"]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable CSR view of a directed weighted graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; node ``u``'s edges occupy
        ``indices[indptr[u]:indptr[u+1]]``.
    indices:
        ``int64`` array of edge heads.
    weights:
        ``float64`` array of edge weights, parallel to ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.indices)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Heads of the edges leaving ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        """Weights of the edges leaving ``u`` (parallel to :meth:`neighbors`)."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def degree_histogram(self) -> dict[int, int]:
        """Mapping from out-degree to the number of nodes with that degree."""
        degrees, counts = np.unique(self.out_degrees(), return_counts=True)
        return {int(d): int(c) for d, c in zip(degrees, counts)}


def to_csr(graph: DiGraph) -> CSRGraph:
    """Snapshot a :class:`DiGraph` into CSR arrays."""
    n = graph.n
    indptr = np.zeros(n + 1, dtype=np.int64)
    for u in range(n):
        indptr[u + 1] = indptr[u] + graph.out_degree(u)
    m = int(indptr[-1])
    indices = np.empty(m, dtype=np.int64)
    weights = np.empty(m, dtype=np.float64)
    pos = 0
    for u in range(n):
        for v, w in graph.out_edges(u):
            indices[pos] = v
            weights[pos] = w
            pos += 1
    return CSRGraph(indptr=indptr, indices=indices, weights=weights)
