"""Compressed-sparse-row (CSR) export of a :class:`DiGraph`.

The core dict-kernel search algorithms iterate adjacency as Python
tuples (fastest in pure CPython), but the flat kernels of
:mod:`repro.pathing.flat` — and analytics such as connectivity checks,
degree statistics, and vectorised all-pairs sampling — run over numpy
CSR arrays.  :class:`CSRGraph` is an immutable snapshot with the
classic three-array layout (``indptr``, ``indices``, ``weights``).

Beyond the plain snapshot this module provides the pieces the flat
search substrate needs without ever materialising a new
:class:`DiGraph`:

* :meth:`CSRGraph.reverse` — the reverse-orientation CSR (cached), for
  backward searches and shortest-path-tree builds;
* :func:`query_overlay` — the virtual-node ``G_Q`` transform of
  Section 3/6 expressed directly as CSR arrays;
* :func:`shared_csr` — a per-graph snapshot cache, so repeated flat
  kernel calls against the same frozen graph pay the export once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["CSRGraph", "to_csr", "query_overlay", "shared_csr"]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable CSR view of a directed weighted graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; node ``u``'s edges occupy
        ``indices[indptr[u]:indptr[u+1]]``.
    indices:
        ``int64`` array of edge heads.
    weights:
        ``float64`` array of edge weights, parallel to ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    # Lazy caches (reverse orientation, python-list mirrors, scratch
    # buffers).  They are derived data, deliberately excluded from
    # equality/repr, and filled in via object.__setattr__ because the
    # dataclass is frozen.
    _reverse: "CSRGraph | None" = field(
        default=None, repr=False, compare=False
    )
    _lists: tuple | None = field(default=None, repr=False, compare=False)
    _spmat: object = field(default=None, repr=False, compare=False)
    _scratch_pool: list = field(
        default_factory=list, repr=False, compare=False
    )
    # Pools for the flat iterative-bounding engine: generation-stamped
    # node masks (subspace blocked sets) and all-inf float arrays (the
    # incremental-SPT heuristic vector).  Like the scratch pool they
    # are shared by every search against this snapshot.
    _mask_pool: list = field(default_factory=list, repr=False, compare=False)
    _inf_pool: list = field(default_factory=list, repr=False, compare=False)
    _rows: list | None = field(default=None, repr=False, compare=False)
    # Compiled-kernel support: the dtype-checked contiguous array
    # triple handed to the native (numba) kernels, and a pool of
    # preallocated per-search ndarray scratch sets.
    _typed: tuple | None = field(default=None, repr=False, compare=False)
    _native_pool: list = field(default_factory=list, repr=False, compare=False)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.indices)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Heads of the edges leaving ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        """Weights of the edges leaving ``u`` (parallel to :meth:`neighbors`)."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def degree_histogram(self) -> dict[int, int]:
        """Mapping from out-degree to the number of nodes with that degree."""
        degrees, counts = np.unique(self.out_degrees(), return_counts=True)
        return {int(d): int(c) for d, c in zip(degrees, counts)}

    # ------------------------------------------------------------------
    # Derived orientations / mirrors
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The reverse-orientation CSR (every edge flipped), cached.

        Backward searches (SPT builds toward a target, reverse
        ``IterBound-SPT_I``) run forward over this.  The reverse of the
        reverse is the original object.
        """
        if self._reverse is None:
            n = self.n
            order = np.argsort(self.indices, kind="stable")
            rindices = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self.indptr)
            )[order]
            rweights = self.weights[order]
            rindptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.indices, minlength=n), out=rindptr[1:])
            rev = CSRGraph(indptr=rindptr, indices=rindices, weights=rweights)
            object.__setattr__(rev, "_reverse", self)
            object.__setattr__(self, "_reverse", rev)
        return self._reverse

    def adjacency_lists(self) -> tuple[list[int], list[int], list[float]]:
        """Python-list mirrors ``(indptr, indices, weights)``, cached.

        CPython indexes plain lists noticeably faster than numpy
        arrays element-wise; the python-loop flat kernels iterate
        these, sharing one conversion per snapshot.
        """
        if self._lists is None:
            object.__setattr__(
                self,
                "_lists",
                (
                    self.indptr.tolist(),
                    self.indices.tolist(),
                    self.weights.tolist(),
                ),
            )
        return self._lists

    def row_lists(self) -> list[list[tuple[int, float]]]:
        """Per-node ``[(v, w), ...]`` rows in CSR edge order, cached.

        Iterating a row of tuples (one ``FOR_ITER`` + unpack per edge)
        is about twice as fast in CPython as the ``indptr`` index
        arithmetic over the flat mirrors, so the hottest relaxation
        loops (the flat A* kernel and the incremental-SPT settle loop)
        run over these.  Edge order — and therefore every tie-break —
        is identical to the flat arrays.
        """
        if self._rows is None:
            indptr, heads, wts = self.adjacency_lists()
            rows = [
                list(zip(heads[indptr[u] : indptr[u + 1]], wts[indptr[u] : indptr[u + 1]]))
                for u in range(self.n)
            ]
            object.__setattr__(self, "_rows", rows)
        return self._rows

    def typed_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """C-contiguous ``(indptr, indices, weights)`` for compiled kernels.

        The native (numba) kernels require fixed dtypes
        (``int64``/``int64``/``float64``) and contiguous memory; the
        snapshot arrays already satisfy both in the common case, so
        this normally returns the attributes themselves.  Arrays built
        elsewhere (slices, alternate dtypes) are converted once and
        the checked triple is cached on the snapshot.
        """
        if self._typed is None:
            triple = (
                np.ascontiguousarray(self.indptr, dtype=np.int64),
                np.ascontiguousarray(self.indices, dtype=np.int64),
                np.ascontiguousarray(self.weights, dtype=np.float64),
            )
            object.__setattr__(self, "_typed", triple)
        return self._typed


def to_csr(graph) -> CSRGraph:
    """Snapshot a :class:`DiGraph` (or any object exposing row-per-node
    ``adjacency``) into CSR arrays."""
    rows = graph.adjacency
    n = len(rows)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([len(row) for row in rows], out=indptr[1:])
    m = int(indptr[-1])
    indices = np.empty(m, dtype=np.int64)
    weights = np.empty(m, dtype=np.float64)
    pos = 0
    for row in rows:
        for v, w in row:
            indices[pos] = v
            weights[pos] = w
            pos += 1
    return CSRGraph(indptr=indptr, indices=indices, weights=weights)


def shared_csr(graph) -> CSRGraph:
    """The cached CSR snapshot of a frozen graph.

    For a :class:`DiGraph` the snapshot is stored on the graph object,
    so every flat-kernel call against the same graph shares one export
    (and therefore one reverse orientation, one list mirror, and one
    scratch-buffer pool).  A :class:`~repro.graph.digraph.ReversedView`
    resolves to the cached snapshot of its underlying graph, reversed —
    both orientations stay cached.  Other row-exposing objects fall
    back to an uncached :func:`to_csr`.
    """
    from repro.graph.digraph import ReversedView

    if isinstance(graph, ReversedView):
        return shared_csr(graph.underlying).reverse()
    if isinstance(graph, DiGraph):
        if not graph.frozen:
            raise GraphError("flat kernels need a frozen graph")
        cached = graph.csr_cache
        if cached is None:
            cached = to_csr(graph)
            graph.csr_cache = cached
        return cached
    return to_csr(graph)


def query_overlay(
    base: CSRGraph,
    destinations: Sequence[int],
    sources: Sequence[int] = (),
) -> CSRGraph:
    """The virtual-node ``G_Q`` transform as a CSR snapshot.

    Appends a virtual target node ``n`` with a zero-weight edge
    ``v -> n`` for every destination ``v``; when more than one source
    is given (GKPJ), additionally appends a virtual source ``n + 1``
    with zero-weight edges to every source.  Mirrors
    :func:`repro.graph.virtual.build_query_graph` without building a
    :class:`DiGraph` — the arrays are rebuilt with one vectorised
    insert, ``O(m + |V_T|)``.

    Node ids match the DiGraph overlay: the virtual target is ``n``,
    the virtual source (if any) is ``n + 1``.
    """
    n = base.n
    dest = np.asarray(sorted(set(int(v) for v in destinations)), dtype=np.int64)
    if dest.size == 0:
        raise GraphError("query overlay needs at least one destination")
    if dest.min() < 0 or dest.max() >= n:
        raise GraphError(f"destination out of range [0, {n})")
    target = n
    # Insert the edge v -> target at the end of each destination row.
    insert_at = base.indptr[dest + 1]
    indices = np.insert(base.indices, insert_at, target)
    weights = np.insert(base.weights, insert_at, 0.0)
    added = np.zeros(n + 1, dtype=np.int64)
    added[1:] = np.cumsum(np.bincount(dest, minlength=n))
    indptr = base.indptr + added
    srcs = tuple(sorted(set(int(s) for s in sources)))
    if len(srcs) > 1:
        if srcs[0] < 0 or srcs[-1] >= n:
            raise GraphError(f"source out of range [0, {n})")
        # Virtual target row (empty) then virtual source row.
        indptr = np.concatenate(
            [indptr, [indptr[-1], indptr[-1] + len(srcs)]]
        )
        indices = np.concatenate([indices, np.asarray(srcs, dtype=np.int64)])
        weights = np.concatenate([weights, np.zeros(len(srcs))])
    else:
        indptr = np.concatenate([indptr, [indptr[-1]]])
    return CSRGraph(indptr=indptr, indices=indices, weights=weights)
