"""Compact directed weighted graph.

:class:`DiGraph` is the substrate every algorithm in this package runs
on.  Nodes are dense integers ``0..n-1``; adjacency is stored as one
Python list of ``(neighbour, weight)`` tuples per node, which is the
fastest neighbour-iteration layout available to pure CPython (tuple
unpacking in a ``for`` loop beats any numpy-per-edge indexing for the
graph sizes we target).  The reverse adjacency is materialised lazily
and cached, since only some algorithms (DA-SPT, ``SPT_P``, the
reverse-orientation ``IterBound-SPT_I``) need it.

Graphs are mutable while being built and are *frozen* before querying;
freezing is what allows the reverse adjacency and derived indexes to be
cached safely.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.exceptions import GraphError

__all__ = ["DiGraph", "ReversedView"]


class DiGraph:
    """A directed graph with non-negative float edge weights.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0..n-1``.

    Notes
    -----
    Parallel edges are collapsed to the minimum weight on
    :meth:`freeze` (shortest-path algorithms only ever use the lightest
    parallel edge).  Self-loops are rejected: they can never appear on a
    simple path.
    """

    __slots__ = ("_n", "_m", "_adj", "_radj", "_frozen", "_max_weight", "_csr")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self._n = n
        self._m = 0
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._radj: list[list[tuple[int, float]]] | None = None
        self._frozen = False
        self._max_weight = 0.0
        self._csr = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the directed edge ``u -> v`` with the given weight."""
        if self._frozen:
            raise GraphError("cannot add edges to a frozen graph")
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        w = float(weight)
        if not math.isfinite(w) or w < 0.0:
            raise GraphError(f"edge weight must be finite and >= 0, got {weight!r}")
        if w > self._max_weight:
            self._max_weight = w
        self._adj[u].append((v, w))
        self._m += 1
        self._radj = None

    def add_bidirectional_edge(self, u: int, v: int, weight: float) -> None:
        """Add both ``u -> v`` and ``v -> u`` with the same weight.

        Road-network edges are bidirectional; this helper keeps dataset
        builders terse.
        """
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    def freeze(self) -> "DiGraph":
        """Finalise the graph: dedupe parallel edges and forbid mutation.

        Returns ``self`` so construction can be chained.
        """
        if self._frozen:
            return self
        m = 0
        for u in range(self._n):
            edges = self._adj[u]
            if len(edges) > 1:
                best: dict[int, float] = {}
                for v, w in edges:
                    prev = best.get(v)
                    if prev is None or w < prev:
                        best[v] = w
                if len(best) != len(edges):
                    edges = sorted(best.items())
                else:
                    edges = sorted(edges)
                self._adj[u] = edges
            m += len(self._adj[u])
        self._m = m
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    @property
    def max_edge_weight(self) -> float:
        """Largest edge weight seen (0.0 for an edgeless graph).

        ``n * max_edge_weight`` upper-bounds every simple-path length,
        which the iteratively bounding driver uses to cap ``τ``.
        """
        return self._max_weight

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return self._m

    def out_edges(self, u: int) -> Sequence[tuple[int, float]]:
        """The ``(v, weight)`` pairs of edges leaving ``u``."""
        return self._adj[u]

    def in_edges(self, u: int) -> Sequence[tuple[int, float]]:
        """The ``(v, weight)`` pairs such that edge ``v -> u`` exists.

        Builds and caches the reverse adjacency on first use.
        """
        return self.reverse_adjacency()[u]

    def out_degree(self, u: int) -> int:
        """Number of edges leaving ``u``."""
        return len(self._adj[u])

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        for x, w in self._adj[u]:
            if x == v:
                return w
        raise GraphError(f"edge ({u}, {v}) does not exist")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``u -> v`` exists."""
        return any(x == v for x, _ in self._adj[u])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over all edges as ``(u, v, weight)`` triples."""
        for u, edges in enumerate(self._adj):
            for v, w in edges:
                yield u, v, w

    def nodes(self) -> range:
        """The node ids, as a range."""
        return range(self._n)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """Raw adjacency lists (treat as read-only once frozen)."""
        return self._adj

    def reverse_adjacency(self) -> list[list[tuple[int, float]]]:
        """Reverse adjacency lists: entry ``u`` holds ``(v, w)`` with
        edge ``v -> u`` of weight ``w`` in this graph.
        """
        if self._radj is None:
            radj: list[list[tuple[int, float]]] = [[] for _ in range(self._n)]
            for u, edges in enumerate(self._adj):
                for v, w in edges:
                    radj[v].append((u, w))
            self._radj = radj
        return self._radj

    @property
    def csr_cache(self):
        """Cached CSR snapshot set by :func:`repro.graph.csr.shared_csr`.

        ``None`` until the first flat-kernel call touches this graph;
        only frozen graphs may carry one (mutation would invalidate it).
        """
        return self._csr

    @csr_cache.setter
    def csr_cache(self, snapshot) -> None:
        if not self._frozen:
            raise GraphError("only frozen graphs can cache a CSR snapshot")
        self._csr = snapshot

    def reversed_copy(self) -> "DiGraph":
        """A new frozen :class:`DiGraph` with every edge direction flipped."""
        rg = DiGraph(self._n)
        for u, edges in enumerate(self._adj):
            for v, w in edges:
                rg.add_edge(v, u, w)
        return rg.freeze()

    def path_weight(self, path: Sequence[int]) -> float:
        """Total weight of a node sequence; validates every hop.

        Raises
        ------
        GraphError
            If two consecutive nodes are not joined by an edge.
        """
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.edge_weight(u, v)
        return total

    def is_simple_path(self, path: Sequence[int]) -> bool:
        """Whether ``path`` is a valid simple path of this graph."""
        if not path:
            return False
        if len(set(path)) != len(path):
            return False
        return all(self.has_edge(u, v) for u, v in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "frozen" if self._frozen else "building"
        return f"DiGraph(n={self._n}, m={self._m}, {state})"

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise GraphError(f"node id {u} out of range [0, {self._n})")

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int, float]], bidirectional: bool = False
    ) -> "DiGraph":
        """Build a frozen graph from an iterable of ``(u, v, w)`` triples."""
        g = cls(n)
        add = g.add_bidirectional_edge if bidirectional else g.add_edge
        for u, v, w in edges:
            add(u, v, w)
        return g.freeze()

    @classmethod
    def from_shared_rows(
        cls,
        rows: list[list[tuple[int, float]]],
        m: int,
        max_weight: float,
        reverse_rows: list[list[tuple[int, float]]] | None = None,
    ) -> "DiGraph":
        """Build a frozen graph directly from prepared adjacency rows.

        The rows are adopted *without copying*; callers may share row
        objects with another frozen graph (the virtual-node query
        transform does this so a query costs O(n), not O(m)).  Rows
        must already be deduplicated and sorted — i.e. come from a
        frozen graph or be freshly built to that standard.
        """
        g = cls.__new__(cls)
        g._n = len(rows)
        g._m = m
        g._adj = rows
        g._radj = reverse_rows
        g._frozen = True
        g._max_weight = max_weight
        g._csr = None
        return g


class ReversedView:
    """A zero-copy reversed view of a frozen :class:`DiGraph`.

    Exposes exactly the surface the search kernels need —
    ``adjacency``, ``edge_weight``, ``n``, ``m``, ``max_edge_weight``,
    ``reverse_adjacency()`` — with edge directions flipped.  Building
    one costs O(1) beyond the (cached) reverse adjacency of the
    underlying graph.
    """

    __slots__ = ("_g",)

    def __init__(self, graph: "DiGraph") -> None:
        if not graph.frozen:
            raise GraphError("can only reverse-view a frozen graph")
        self._g = graph

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._g.n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._g.m

    @property
    def underlying(self) -> "DiGraph":
        """The forward-orientation graph this view reverses."""
        return self._g

    @property
    def frozen(self) -> bool:
        """Always true (views only exist over frozen graphs)."""
        return True

    @property
    def max_edge_weight(self) -> float:
        """Largest edge weight (same as the underlying graph)."""
        return self._g.max_edge_weight

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """Out-edges of the view = in-edges of the underlying graph."""
        return self._g.reverse_adjacency()

    def out_edges(self, u: int) -> Sequence[tuple[int, float]]:
        """``(v, w)`` pairs of edges leaving ``u`` in the view."""
        return self._g.reverse_adjacency()[u]

    def reverse_adjacency(self) -> list[list[tuple[int, float]]]:
        """In-edges of the view = out-edges of the underlying graph."""
        return self._g.adjacency

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of view-edge ``u -> v`` (= ``v -> u`` underneath)."""
        return self._g.edge_weight(v, u)
