"""Graph and POI file formats.

Supports the two formats the paper's datasets ship in, plus a fast
binary snapshot:

* **DIMACS challenge-9** ``.gr`` (``a u v w`` arc lines, 1-based ids)
  and ``.co`` coordinate files — the COL/FLA/USA networks.
* **Edge-list** text (``u v w`` per line, 0-based) with an optional
  POI file (``node category`` per line) — the CAL/SJ/SF style files.
* **``.npz`` snapshots** of a graph + categories, for quick reloads of
  generated datasets.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph

__all__ = [
    "load_dimacs_gr",
    "load_dimacs_coordinates",
    "load_edge_list",
    "load_poi_file",
    "save_npz",
    "load_npz",
    "write_dimacs_gr",
    "write_edge_list",
]


def _open_text(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def load_dimacs_gr(source: str | Path | TextIO) -> DiGraph:
    """Parse a DIMACS challenge-9 ``.gr`` file into a frozen graph.

    Lines: ``c ...`` comments, one ``p sp <n> <m>`` problem line, and
    ``a <u> <v> <w>`` arc lines with 1-based node ids.
    """
    fh, close = _open_text(source)
    try:
        graph: DiGraph | None = None
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            if fields[0] == "p":
                if len(fields) != 4 or fields[1] != "sp":
                    raise DatasetError(f"line {lineno}: bad problem line {line!r}")
                graph = DiGraph(int(fields[2]))
            elif fields[0] == "a":
                if graph is None:
                    raise DatasetError(f"line {lineno}: arc before problem line")
                if len(fields) != 4:
                    raise DatasetError(f"line {lineno}: bad arc line {line!r}")
                u, v, w = int(fields[1]) - 1, int(fields[2]) - 1, float(fields[3])
                graph.add_edge(u, v, w)
            else:
                raise DatasetError(f"line {lineno}: unknown record {fields[0]!r}")
        if graph is None:
            raise DatasetError("no problem line found")
        return graph.freeze()
    finally:
        if close:
            fh.close()


def load_dimacs_coordinates(source: str | Path | TextIO) -> np.ndarray:
    """Parse a DIMACS ``.co`` file into an ``(n, 2)`` float array."""
    fh, close = _open_text(source)
    try:
        coords: np.ndarray | None = None
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            if fields[0] == "p":
                coords = np.zeros((int(fields[-1]), 2), dtype=np.float64)
            elif fields[0] == "v":
                if coords is None:
                    raise DatasetError(f"line {lineno}: vertex before problem line")
                idx = int(fields[1]) - 1
                coords[idx, 0] = float(fields[2])
                coords[idx, 1] = float(fields[3])
            else:
                raise DatasetError(f"line {lineno}: unknown record {fields[0]!r}")
        if coords is None:
            raise DatasetError("no problem line found")
        return coords
    finally:
        if close:
            fh.close()


def write_dimacs_gr(graph: DiGraph, destination: str | Path | TextIO) -> None:
    """Write a graph in DIMACS ``.gr`` format (weights rounded to int)."""
    fh: TextIO
    if isinstance(destination, (str, Path)):
        fh = open(destination, "w", encoding="utf-8")
        close = True
    else:
        fh = destination
        close = False
    try:
        fh.write(f"p sp {graph.n} {graph.m}\n")
        for u, v, w in graph.edges():
            fh.write(f"a {u + 1} {v + 1} {w:g}\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# Edge list / POI
# ----------------------------------------------------------------------
def load_edge_list(
    source: str | Path | TextIO, bidirectional: bool = False
) -> DiGraph:
    """Parse ``u v w`` lines (0-based ids) into a frozen graph.

    The node count is inferred as ``1 + max id``.
    """
    fh, close = _open_text(source)
    try:
        edges: list[tuple[int, int, float]] = []
        max_node = -1
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2:
                raise DatasetError(f"line {lineno}: bad edge line {line!r}")
            u, v = int(fields[0]), int(fields[1])
            w = float(fields[2]) if len(fields) > 2 else 1.0
            edges.append((u, v, w))
            if u > max_node:
                max_node = u
            if v > max_node:
                max_node = v
        if max_node < 0:
            raise DatasetError("edge list is empty")
        return DiGraph.from_edges(max_node + 1, edges, bidirectional=bidirectional)
    finally:
        if close:
            fh.close()


def write_edge_list(graph: DiGraph, destination: str | Path | TextIO) -> None:
    """Write a graph as ``u v w`` lines (0-based ids)."""
    if isinstance(destination, (str, Path)):
        fh = open(destination, "w", encoding="utf-8")
        close = True
    else:
        fh = destination
        close = False
    try:
        for u, v, w in graph.edges():
            fh.write(f"{u} {v} {w:g}\n")
    finally:
        if close:
            fh.close()


def load_poi_file(source: str | Path | TextIO) -> CategoryIndex:
    """Parse ``node category`` lines into a :class:`CategoryIndex`."""
    fh, close = _open_text(source)
    try:
        members: dict[str, list[int]] = {}
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(maxsplit=1)
            if len(fields) != 2:
                raise DatasetError(f"line {lineno}: bad POI line {line!r}")
            members.setdefault(fields[1], []).append(int(fields[0]))
        return CategoryIndex(members)
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# npz snapshots
# ----------------------------------------------------------------------
def save_npz(
    path: str | Path,
    graph: DiGraph,
    categories: CategoryIndex | None = None,
    coordinates: np.ndarray | None = None,
) -> None:
    """Save a graph (plus optional POIs/coordinates) to an ``.npz`` file."""
    heads = np.empty(graph.m, dtype=np.int64)
    tails = np.empty(graph.m, dtype=np.int64)
    weights = np.empty(graph.m, dtype=np.float64)
    for i, (u, v, w) in enumerate(graph.edges()):
        tails[i], heads[i], weights[i] = u, v, w
    payload: dict[str, np.ndarray] = {
        "n": np.asarray([graph.n], dtype=np.int64),
        "tails": tails,
        "heads": heads,
        "weights": weights,
    }
    if coordinates is not None:
        payload["coordinates"] = np.asarray(coordinates, dtype=np.float64)
    if categories is not None:
        names: list[str] = []
        flat: list[int] = []
        offsets = [0]
        for name in categories:
            nodes = categories.nodes_of(name)
            names.append(name)
            flat.extend(nodes)
            offsets.append(len(flat))
        payload["category_names"] = np.asarray(names, dtype=np.str_)
        payload["category_nodes"] = np.asarray(flat, dtype=np.int64)
        payload["category_offsets"] = np.asarray(offsets, dtype=np.int64)
    np.savez_compressed(path, **payload)


def load_npz(
    path: str | Path,
) -> tuple[DiGraph, CategoryIndex | None, np.ndarray | None]:
    """Load a snapshot written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        n = int(data["n"][0])
        graph = DiGraph(n)
        for u, v, w in zip(data["tails"], data["heads"], data["weights"]):
            graph.add_edge(int(u), int(v), float(w))
        graph.freeze()
        categories: CategoryIndex | None = None
        if "category_names" in data:
            names = data["category_names"]
            nodes = data["category_nodes"]
            offsets = data["category_offsets"]
            members = {
                str(names[i]): [int(x) for x in nodes[offsets[i] : offsets[i + 1]]]
                for i in range(len(names))
            }
            categories = CategoryIndex(members)
        coordinates = (
            np.array(data["coordinates"]) if "coordinates" in data else None
        )
    return graph, categories, coordinates
