"""Virtual-node query transform (the paper's ``G_Q``).

Section 3 of the paper reduces a KPJ query to a KSP query by adding a
virtual destination node ``t`` and a zero-weight edge ``v -> t`` for
every destination ``v in V_T``; Section 6 symmetrically adds a virtual
source for GKPJ.  Every algorithm in this package runs on the
transformed graph, which keeps subspace bookkeeping uniform: banning
the edge ``(v, t)`` expresses "the path may pass *through* destination
``v`` but must not terminate there", which is exactly how a path
through one destination is allowed to continue to another.

:class:`QueryGraph` bundles the transformed graph together with the id
bookkeeping needed to strip virtual nodes off reported paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["QueryGraph", "build_query_graph"]


@dataclass(frozen=True)
class QueryGraph:
    """A graph transformed for one KPJ/GKPJ query.

    Attributes
    ----------
    base:
        The original graph ``G``.
    graph:
        The transformed graph ``G_Q`` (base plus virtual nodes).
    source:
        Search source in ``graph`` — the real source for KPJ, the
        virtual source node for GKPJ.
    target:
        The virtual destination node id (always ``base.n``).
    destinations:
        The real destination nodes ``V_T`` (sorted).
    sources:
        The real source nodes ``V_S`` (a single node for KPJ).
    """

    base: DiGraph
    graph: DiGraph
    source: int
    target: int
    destinations: tuple[int, ...]
    sources: tuple[int, ...]

    @property
    def has_virtual_source(self) -> bool:
        """Whether this is a GKPJ transform (virtual source present)."""
        return self.source >= self.base.n

    def is_virtual(self, node: int) -> bool:
        """Whether ``node`` is one of the virtual endpoints."""
        return node >= self.base.n

    def reversed_graph(self):
        """Zero-copy reversed view of ``graph`` (for backward searches)."""
        from repro.graph.digraph import ReversedView

        return ReversedView(self.graph)

    def strip(self, path: Sequence[int]) -> tuple[int, ...]:
        """Remove virtual endpoints from a path found in ``graph``.

        The result is a path of ``base`` running from a real source to
        a real destination.
        """
        start = 1 if path and self.is_virtual(path[0]) else 0
        end = len(path) - 1 if path and self.is_virtual(path[-1]) else len(path)
        return tuple(path[start:end])


def build_query_graph(
    base: DiGraph,
    sources: Sequence[int],
    destinations: Sequence[int],
) -> QueryGraph:
    """Materialise ``G_Q`` for a query.

    Parameters
    ----------
    base:
        The frozen input graph ``G``.
    sources:
        One node for a KPJ/KSP query; several for GKPJ (a virtual
        source is then added).
    destinations:
        The destination set ``V_T`` (must be non-empty).  A virtual
        target node is always added, even for a single destination —
        this keeps the search code identical for KSP and KPJ.

    Raises
    ------
    QueryError
        On empty endpoint sets or out-of-range node ids.
    """
    if not base.frozen:
        raise QueryError("query graphs must be built from a frozen graph")
    if not sources:
        raise QueryError("query needs at least one source node")
    if not destinations:
        raise QueryError("query needs at least one destination node")
    for node in (*sources, *destinations):
        if not 0 <= node < base.n:
            raise QueryError(f"query node {node} out of range [0, {base.n})")

    dest = tuple(sorted(set(destinations)))
    srcs = tuple(sorted(set(sources)))
    multi_source = len(srcs) > 1
    n = base.n
    target = n

    # The transform is an O(n) *overlay*: adjacency rows are shared
    # with the base graph by reference; only the |V_T| destination rows
    # (which gain the zero-weight edge to the virtual target) are
    # copied.  Building a query graph must stay cheap — the paper's
    # algorithms never touch the whole edge set per query.
    rows = list(base.adjacency)
    for v in dest:
        rows[v] = rows[v] + [(target, 0.0)]
    rows.append([])  # the virtual target has no outgoing edges
    reverse_rows = list(base.reverse_adjacency())
    reverse_rows.append([(v, 0.0) for v in dest])
    m = base.m + len(dest)
    if multi_source:
        source = n + 1
        rows.append([(v, 0.0) for v in srcs])
        for v in srcs:
            reverse_rows[v] = reverse_rows[v] + [(source, 0.0)]
        reverse_rows.append([])
        m += len(srcs)
    else:
        source = srcs[0]
    gq = DiGraph.from_shared_rows(rows, m, base.max_edge_weight, reverse_rows)
    return QueryGraph(
        base=base,
        graph=gq,
        source=source,
        target=target,
        destinations=dest,
        sources=srcs,
    )
