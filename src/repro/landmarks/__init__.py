"""Landmark (ALT) lower bounds: selection strategies and the index."""

from repro.landmarks.hub_labels import HubLabelIndex, exact_target_heuristic
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex, TargetBounds, ZeroBounds
from repro.landmarks.selection import select_landmarks

__all__ = [
    "HubLabelIndex",
    "exact_target_heuristic",
    "ZERO_BOUNDS",
    "LandmarkIndex",
    "TargetBounds",
    "ZeroBounds",
    "select_landmarks",
]
