"""2-hop (hub) labeling — the paper's "inapplicable index" [7, 10].

Section 3 argues that existing exact distance indexes — 2-hop labels
(Cohen et al. [7]) and hub labels (Delling et al. [10]) — cannot
accelerate KPJ: the zero-weight edges to the virtual target depend on
the query's category, so a structure precomputed on ``G`` cannot
answer distances in ``G_Q``.  This module implements the index via
**pruned landmark labeling** (Akiba et al.'s pruning of the naive
2-hop construction) so that the claim is demonstrable rather than
rhetorical:

* for **KSP** (fixed destination node) the index *does* apply — it
  yields an exact ``δ(v, t)`` heuristic that makes A*'s exploration
  minimal, and :func:`exact_target_heuristic` plugs it straight into
  BestFirst;
* for **KPJ** the per-query bound ``min_{v in V_T} δ(u, v)`` costs
  ``O(|V_T| · label size)`` *per node probed* — the blow-up the paper
  predicts, measurable in the A3 ablation benchmark.

Labels store hubs by *rank* (processing order, most important first):
entries are appended in increasing rank, so labels stay sorted during
construction and distance queries are sorted-list merges throughout.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Sequence

from repro.graph.digraph import DiGraph

__all__ = ["HubLabelIndex", "exact_target_heuristic"]

INF = float("inf")


class HubLabelIndex:
    """Exact 2-hop distance labels over a frozen graph.

    Construction runs one pruned forward and one pruned backward
    Dijkstra per node, in degree-descending node order (high-degree
    road junctions make the best hubs); pruning keeps labels small on
    road-like graphs.  Exact for every reachable pair:
    ``query(u, v) == δ(u, v)``.
    """

    def __init__(
        self,
        out_labels: list[list[tuple[int, float]]],
        in_labels: list[list[tuple[int, float]]],
    ) -> None:
        # out_labels[u]: (hub_rank, δ(u -> hub)); in_labels[u]:
        # (hub_rank, δ(hub -> u)); both sorted by hub rank.
        self._out = out_labels
        self._in = in_labels

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph) -> "HubLabelIndex":
        """Pruned landmark labeling over all nodes.

        Worst case ``O(n (m + n log n))`` like the naive 2-hop build,
        but pruning makes it near-linear on road networks.  Intended
        for the small/medium graphs of this package's experiments.
        """
        n = graph.n
        order = sorted(range(n), key=lambda u: (-graph.out_degree(u), u))
        rank = [0] * n
        for position, node in enumerate(order):
            rank[node] = position
        out_labels: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        in_labels: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        adjacency = graph.adjacency
        reverse = graph.reverse_adjacency()
        for hub_rank, hub in enumerate(order):
            # Forward sweep (hub -> u): prune against the current
            # estimate merge(out[hub], in[u]); label in_labels[u].
            _pruned_sweep(
                hub, hub_rank, adjacency, out_labels[hub], in_labels, rank
            )
            # Backward sweep (u -> hub): symmetric.
            _pruned_sweep(
                hub, hub_rank, reverse, in_labels[hub], out_labels, rank
            )
        return cls(out_labels, in_labels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """Exact shortest distance ``δ(u, v)`` (``inf`` if unreachable)."""
        if u == v:
            return 0.0
        return _merge(self._out[u], self._in[v])

    def distance_to_set(self, u: int, targets: Sequence[int]) -> float:
        """``min_{v in targets} δ(u, v)`` — the KPJ-style probe.

        Cost ``O(|targets| * label size)``: this per-probe blow-up is
        exactly why the paper rules 2-hop indexes out for KPJ.
        """
        best = INF
        for v in targets:
            d = self.query(u, v)
            if d < best:
                best = d
        return best

    def label_sizes(self) -> tuple[float, int]:
        """(mean, max) entries per node across both label sides."""
        sizes = [len(f) + len(b) for f, b in zip(self._out, self._in)]
        return sum(sizes) / len(sizes), max(sizes)

    @property
    def n(self) -> int:
        """Number of labelled nodes."""
        return len(self._out)


def _pruned_sweep(
    hub: int,
    hub_rank: int,
    adjacency,
    hub_side_label: list[tuple[int, float]],
    extend_labels: list[list[tuple[int, float]]],
    rank: list[int],
) -> None:
    """One pruned Dijkstra from ``hub``.

    ``hub_side_label`` is the hub's own label on the side matching the
    sweep direction (used for the pruning query); ``extend_labels``
    gains ``(hub_rank, d)`` entries for every non-pruned node reached.
    Reaching a more important node, or a node whose pair with the hub
    is already covered at distance ``<= d``, stops both labeling *and*
    expansion — paths through such nodes are covered by their labels
    (the canonical-labeling argument of pruned landmark labeling).
    """
    dist: dict[int, float] = {hub: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, hub)]
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u != hub:
            if rank[u] < hub_rank:
                continue  # covered via the more important node itself
            if _merge(hub_side_label, extend_labels[u]) <= d:
                continue  # already covered by an earlier hub
        extend_labels[u].append((hub_rank, d))
        for v, w in adjacency[u]:
            if v in settled:
                continue
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))


def _merge(a: list[tuple[int, float]], b: list[tuple[int, float]]) -> float:
    """Sorted-merge distance query over two rank-keyed labels."""
    best = INF
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        ra, da = a[i]
        rb, db = b[j]
        if ra == rb:
            total = da + db
            if total < best:
                best = total
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best


def exact_target_heuristic(index: HubLabelIndex, target: int):
    """An exact-distance A* heuristic ``h(v) = δ(v, target)`` for KSP.

    Virtual nodes (ids beyond the labelled range) resolve to 0, so the
    callable plugs into searches over ``G_Q`` with a singleton
    destination.  Unreachable nodes get ``inf``, pruning them outright.
    """
    n = index.n

    def h(v: int) -> float:
        if v >= n:
            return 0.0
        return index.query(v, target)

    return h
