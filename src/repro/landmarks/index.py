"""Landmark (ALT) lower-bound index.

Offline, the index stores one single-source distance array per
landmark ``w`` — ``δ(w, u)`` for every node ``u`` — built in
``O(|L| (m + n log n))`` time and ``O(|L| n)`` space exactly as the
paper specifies (Section 4.2, "Remarks & Time Complexity").

Online it answers three kinds of lower bounds, all derived from the
triangle inequality ``δ(w, u) + δ(u, v) >= δ(w, v)``:

* ``lb(u, v)      = max_w { δ(w, v) - δ(w, u) }``        (pairwise)
* ``lb(u, V_T)``  via **Eq. (1)**: ``min_{v in V_T} lb(u, v)`` —
  tight but ``O(|L| |V_T|)`` per evaluation;
* ``lb(u, V_T)``  via **Eq. (2)**: ``max_w { min_{v} δ(w, v) - δ(w, u) }``
  — the paper's choice: after one ``O(|L| |V_T|)`` pass per query it
  costs ``O(|L|)`` per node, and we vectorise that over *all* nodes at
  once with numpy.

Disconnected pairs are handled conservatively: a landmark that cannot
reach ``u`` contributes no information (``-inf``), and a bound of
``+inf`` is produced only when it is provably correct (the landmark
reaches ``u`` but not the targets).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LandmarkError
from repro.graph.digraph import DiGraph
from repro.landmarks.selection import select_landmarks
from repro.pathing.dijkstra import single_source_distances

__all__ = [
    "LandmarkIndex",
    "TargetBounds",
    "LazySourceBounds",
    "ZERO_BOUNDS",
    "ZeroBounds",
]

INF = float("inf")


class TargetBounds:
    """Per-query vector of lower bounds ``lb(u, V_T)`` for all ``u``.

    Callable: ``bounds(u)`` returns the bound for node ``u`` and ``0``
    for any virtual node (ids ``>= n``), so instances plug directly
    into the A* kernels as heuristics on the transformed graph ``G_Q``.
    """

    __slots__ = ("values", "_n", "_dense")

    def __init__(self, values: np.ndarray) -> None:
        self.values = values
        self._n = len(values)
        self._dense: list[float] | None = None

    def __call__(self, u: int) -> float:
        if u >= self._n:
            return 0.0
        return self.values[u]

    def dense(self, size: int) -> list[float]:
        """Plain-list mirror padded with ``0.0`` for virtual ids, cached.

        The flat iterative-bounding engine indexes this list in its
        inner loops instead of paying a Python call per relaxation;
        entry ``u`` equals ``self(u)`` bit-for-bit for every
        ``u < size``.  The mirror is cached on the instance, so a
        prepared category's bound vector is converted once and shared
        by every query against it.
        """
        mirror = self._dense
        if mirror is None or len(mirror) < size:
            mirror = self.values.tolist()
            mirror.extend(0.0 for _ in range(size - self._n))
            self._dense = mirror
        return mirror


class LazySourceBounds:
    """``lb(V_S, u)`` evaluated per node on demand, memoised.

    :meth:`LandmarkIndex.from_source_bounds` materialises the whole
    ``O(|L| n)`` bound vector up front — several full passes over the
    landmark distance matrix *per query* — but the incremental-SPT
    algorithm only ever consults the bound for the handful of nodes
    its one-hop ``CompLB`` finds outside the tree.  This proxy runs
    the same subtraction/masking/reduction on **one column** of the
    matrix per distinct node asked about, so each value is
    bit-identical to the eager vector's entry while a typical query
    touches a few dozen columns instead of all ``n``.

    Algorithms that genuinely read the bound densely (the ``SPT_P``
    backward build) call :meth:`eager` to get the classic
    :class:`TargetBounds` vector instead.
    """

    __slots__ = ("_index", "_sources", "_dist", "_dmax", "_n", "_memo", "_eager")

    def __init__(self, index: "LandmarkIndex", sources: Sequence[int]) -> None:
        if not sources:
            raise LandmarkError("source set must be non-empty")
        self._index = index
        self._sources = tuple(sources)
        dist = index._dist
        self._dist = dist
        self._dmax: np.ndarray | None = None  # reduced on first call
        self._n = dist.shape[1]
        self._memo: dict[int, float] = {}
        self._eager: TargetBounds | None = None

    def __call__(self, u: int) -> float:
        if u >= self._n:
            return 0.0
        bound = self._memo.get(u)
        if bound is None:
            dmax = self._dmax
            if dmax is None:
                dmax = self._dmax = self._dist[:, list(self._sources)].max(axis=1)
            col = self._dist[:, u]
            with np.errstate(invalid="ignore"):  # inf - inf -> nan, masked below
                diff = col - dmax
            diff[np.isinf(dmax) & np.isinf(col)] = -INF
            diff[np.isnan(diff)] = -INF
            bound = float(diff.max())
            if np.isneginf(bound) or bound < 0.0:
                bound = 0.0
            self._memo[u] = bound
        return bound

    def eager(self) -> TargetBounds:
        """The full :meth:`LandmarkIndex.from_source_bounds` vector, cached."""
        if self._eager is None:
            self._eager = self._index.from_source_bounds(self._sources)
        return self._eager


class ZeroBounds:
    """The trivial all-zero bound — the "no landmark" (NL) variant.

    With it, every A* in the package degenerates to Dijkstra, exactly
    as Section 6 of the paper prescribes for graphs without landmarks.
    """

    def __call__(self, u: int) -> float:
        return 0.0


ZERO_BOUNDS = ZeroBounds()


class LandmarkIndex:
    """Precomputed from-landmark distances and the bounds they induce."""

    def __init__(self, graph: DiGraph, landmarks: Sequence[int], dist: np.ndarray) -> None:
        self.graph = graph
        self.landmarks = tuple(landmarks)
        self._dist = dist  # shape (|L|, n); δ(landmark_i, u)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        num_landmarks: int = 16,
        strategy: str = "farthest",
        seed: int = 0,
        kernel: str | None = None,
        metrics=None,
    ) -> "LandmarkIndex":
        """Select landmarks and run one Dijkstra per landmark.

        ``num_landmarks=16`` is the paper's default (Fig. 6(a) shows it
        as the sweet spot on CAL).  ``kernel`` picks the SSSP substrate
        for the ``|L|`` offline runs — ``"flat"`` cuts the build cost
        several-fold on the larger registry graphs.  ``metrics``
        (a :class:`~repro.obs.metrics.MetricsRegistry`) attributes the
        offline cost to the ``landmark_build`` phase and records the
        distance-matrix footprint as a gauge.
        """
        if metrics is not None:
            from time import perf_counter

            start = perf_counter()
        landmarks = select_landmarks(graph, num_landmarks, strategy, seed)
        dist = np.empty((len(landmarks), graph.n), dtype=np.float64)
        for i, w in enumerate(landmarks):
            dist[i, :] = single_source_distances(graph, w, kernel=kernel)
        if metrics is not None:
            metrics.observe_phase("landmark_build", perf_counter() - start)
            metrics.set_gauge("landmark_matrix_bytes", dist.nbytes)
        return cls(graph, landmarks, dist)

    @property
    def size(self) -> int:
        """Number of landmarks ``|L|``."""
        return len(self.landmarks)

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def distance_bound(self, u: int, v: int) -> float:
        """Pairwise lower bound ``lb(u, v) <= δ(u, v)``."""
        du = self._dist[:, u]
        dv = self._dist[:, v]
        finite = np.isfinite(du)
        if not finite.any():
            return 0.0
        diff = dv[finite] - du[finite]
        best = float(np.max(diff))
        if best < 0.0:
            return 0.0
        return best

    def to_target_bounds(self, targets: Sequence[int]) -> TargetBounds:
        """Eq. (2): the vector ``lb(u, V_T)`` for every node at once.

        One ``O(|L| |V_T|)`` reduction computes each landmark's
        distance to the virtual target (``min_{v in V_T} δ(w, v)``),
        then a vectorised ``O(|L| n)`` pass produces the whole bound
        vector.  This is the per-query initialisation the paper
        describes at the start of Section 4.2's remarks.
        """
        if not targets:
            raise LandmarkError("target set must be non-empty")
        dmin = self._dist[:, list(targets)].min(axis=1)  # δ(w, t) per landmark
        with np.errstate(invalid="ignore"):  # inf - inf -> nan, masked below
            diff = dmin[:, None] - self._dist
        # A landmark that cannot reach u gives no information on δ(u, ·).
        diff[np.isinf(self._dist)] = -INF
        diff[np.isnan(diff)] = -INF
        bounds = diff.max(axis=0)
        bounds[np.isneginf(bounds)] = 0.0
        np.maximum(bounds, 0.0, out=bounds)
        return TargetBounds(bounds)

    def to_target_bound_eq1(self, u: int, targets: Sequence[int]) -> float:
        """Eq. (1): ``min_{v in V_T} max_w { δ(w, v) - δ(w, u) }``.

        Tighter than Eq. (2) but ``O(|L| |V_T|)`` per call — kept for
        the ablation benchmark comparing the two bounds.
        """
        if not targets:
            raise LandmarkError("target set must be non-empty")
        du = self._dist[:, u]
        finite = np.isfinite(du)
        if not finite.any():
            return 0.0
        with np.errstate(invalid="ignore"):
            sub = self._dist[np.ix_(finite, list(targets))] - du[finite, None]
        sub[np.isnan(sub)] = -INF
        per_target = sub.max(axis=0)  # lb(u, v) for each target v
        bound = float(per_target.min())
        if bound < 0.0 or np.isneginf(bound):
            return 0.0
        return bound

    def from_source_bounds(self, sources: Sequence[int]) -> TargetBounds:
        """Vector of lower bounds ``lb(V_S, u) <= min_s δ(s, u)``.

        Used by the *backward* searches (Alg. 6's priority key and the
        reverse-orientation ``IterBound-SPT_I``), which need to bound
        the distance *from* the source side *to* an explored node.
        Derivation: ``δ(w, u) <= δ(w, s) + δ(s, u)`` gives
        ``min_s δ(s, u) >= δ(w, u) - max_s δ(w, s)``.
        """
        if not sources:
            raise LandmarkError("source set must be non-empty")
        dmax = self._dist[:, list(sources)].max(axis=1)
        with np.errstate(invalid="ignore"):  # inf - inf -> nan, masked below
            diff = self._dist - dmax[:, None]
        diff[np.isinf(dmax)[:, None] & np.isinf(self._dist)] = -INF
        diff[np.isnan(diff)] = -INF
        bounds = diff.max(axis=0)
        bounds[np.isneginf(bounds)] = 0.0
        np.maximum(bounds, 0.0, out=bounds)
        return TargetBounds(bounds)

    def lazy_source_bounds(self, sources: Sequence[int]) -> LazySourceBounds:
        """A :class:`LazySourceBounds` proxy over this index.

        Same values as :meth:`from_source_bounds`, computed per node
        on first use — the right trade for algorithms that consult
        the source bound sparsely (``CompLB-SPT_I``'s out-of-tree
        fallback).
        """
        return LazySourceBounds(self, sources)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the index (landmark ids + distance matrix) to ``.npz``.

        The offline landmark build is the expensive step on large
        graphs — ``|L|`` full Dijkstra runs — so production deployments
        build once and reload per process.
        """
        np.savez_compressed(
            path,
            landmarks=np.asarray(self.landmarks, dtype=np.int64),
            dist=self._dist,
            n=np.asarray([self.graph.n], dtype=np.int64),
        )

    @classmethod
    def load(cls, path, graph: DiGraph) -> "LandmarkIndex":
        """Load an index saved by :meth:`save` for the *same* graph.

        Raises
        ------
        LandmarkError
            If the snapshot's node count does not match ``graph`` —
            bounds from a different graph would be silently wrong.
        """
        with np.load(path, allow_pickle=False) as data:
            n = int(data["n"][0])
            if n != graph.n:
                raise LandmarkError(
                    f"index snapshot is for a graph with {n} nodes, "
                    f"got one with {graph.n}"
                )
            landmarks = tuple(int(x) for x in data["landmarks"])
            dist = np.array(data["dist"])
        return cls(graph, landmarks, dist)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LandmarkIndex(|L|={self.size}, n={self.graph.n})"
