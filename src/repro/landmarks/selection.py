"""Landmark selection strategies.

The paper (footnote 3) selects landmarks "the most popular way in
[Goldberg & Harrelson '05]": pick a random start node, take the node
farthest from it as the first landmark, then iteratively add the node
farthest from the current landmark set.  That strategy is implemented
here as ``"farthest"`` alongside two cheaper alternatives used in
tests and ablations.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import LandmarkError
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import multi_source_distances

__all__ = ["select_landmarks", "farthest_landmarks", "random_landmarks", "degree_landmarks"]

INF = float("inf")


def select_landmarks(
    graph: DiGraph, count: int, strategy: str = "farthest", seed: int = 0
) -> tuple[int, ...]:
    """Select ``count`` landmark nodes using the named strategy.

    Strategies: ``"farthest"`` (paper default), ``"random"``,
    ``"degree"`` (highest out-degree first).
    """
    if count <= 0:
        raise LandmarkError(f"landmark count must be positive, got {count}")
    if count > graph.n:
        raise LandmarkError(
            f"cannot select {count} landmarks from a graph with {graph.n} nodes"
        )
    if strategy == "farthest":
        return farthest_landmarks(graph, count, seed)
    if strategy == "random":
        return random_landmarks(graph, count, seed)
    if strategy == "degree":
        return degree_landmarks(graph, count)
    raise LandmarkError(f"unknown landmark strategy {strategy!r}")


def farthest_landmarks(graph: DiGraph, count: int, seed: int = 0) -> tuple[int, ...]:
    """Iterative farthest-point selection (Goldberg & Harrelson style).

    Distances are measured *from* the landmark set, matching how the
    index later uses landmarks (from-landmark distance arrays).
    Unreachable nodes are ignored when picking the farthest node.
    """
    rng = random.Random(seed)
    start = rng.randrange(graph.n)
    landmarks: list[int] = [_farthest_from(graph, (start,))]
    while len(landmarks) < count:
        landmarks.append(_farthest_from(graph, landmarks))
    return tuple(landmarks)


def _farthest_from(graph: DiGraph, sources: Sequence[int]) -> int:
    dist = multi_source_distances(graph, sources)
    best_node = sources[0]
    best_dist = -1.0
    for node, d in enumerate(dist):
        if d != INF and d > best_dist:
            best_dist = d
            best_node = node
    return best_node


def random_landmarks(graph: DiGraph, count: int, seed: int = 0) -> tuple[int, ...]:
    """Uniformly random distinct landmark nodes."""
    rng = random.Random(seed)
    return tuple(rng.sample(range(graph.n), count))


def degree_landmarks(graph: DiGraph, count: int) -> tuple[int, ...]:
    """The ``count`` nodes with highest out-degree (ties by id)."""
    order = sorted(graph.nodes(), key=lambda u: (-graph.out_degree(u), u))
    return tuple(order[:count])
