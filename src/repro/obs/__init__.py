"""repro.obs — query-lifecycle observability.

A lightweight, dependency-free metrics layer: phase timers, counters,
gauges, fixed-bucket histograms, Prometheus text exposition, and the
strict parser the CI smoke job runs against it — plus the span tracer
(:mod:`repro.obs.tracing`: per-query timelines, Chrome trace-event
export, tree dumps), structured per-query JSON logging with slow-query
dumps (:mod:`repro.obs.log`), opt-in memory telemetry
(:mod:`repro.obs.memory`), and the subspace-tree introspection built
on the tracer (:mod:`repro.obs.subspace_report`).  Disabled-path
overhead is one ``None`` check per site — see DESIGN.md §3c/§3d/§3g.
"""

from repro.obs.log import (
    QueryLogger,
    SlowQuery,
    current_query_id,
    load_slow_query,
    new_query_id,
    parse_query_log,
)
from repro.obs.memory import MemoryTelemetry, peak_rss_bytes
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    SEARCH_PHASES,
    Histogram,
    MetricsRegistry,
    maybe_phase,
    parse_prom,
)
from repro.obs.subspace_report import DepthRow, SubspaceTreeReport
from repro.obs.tracing import (
    SpanTracer,
    chrome_trace,
    folded_stacks,
    maybe_span,
    phase_durations,
    render_tree,
    validate_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "Histogram",
    "maybe_phase",
    "parse_prom",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "SEARCH_PHASES",
    "SpanTracer",
    "maybe_span",
    "chrome_trace",
    "validate_chrome_trace",
    "render_tree",
    "folded_stacks",
    "phase_durations",
    "SubspaceTreeReport",
    "DepthRow",
    "QueryLogger",
    "SlowQuery",
    "current_query_id",
    "new_query_id",
    "parse_query_log",
    "load_slow_query",
    "MemoryTelemetry",
    "peak_rss_bytes",
]
