"""repro.obs — query-lifecycle observability.

A lightweight, dependency-free metrics layer: phase timers, counters,
gauges, fixed-bucket histograms, Prometheus text exposition, and the
strict parser the CI smoke job runs against it — plus the span tracer
(:mod:`repro.obs.tracing`: per-query timelines, Chrome trace-event
export, tree dumps) and the subspace-tree introspection built on it
(:mod:`repro.obs.subspace_report`).  Disabled-path overhead is one
``None`` check per site — see DESIGN.md §3c/§3d.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    SEARCH_PHASES,
    Histogram,
    MetricsRegistry,
    maybe_phase,
    parse_prom,
)
from repro.obs.subspace_report import DepthRow, SubspaceTreeReport
from repro.obs.tracing import (
    SpanTracer,
    chrome_trace,
    maybe_span,
    phase_durations,
    render_tree,
    validate_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "Histogram",
    "maybe_phase",
    "parse_prom",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "SEARCH_PHASES",
    "SpanTracer",
    "maybe_span",
    "chrome_trace",
    "validate_chrome_trace",
    "render_tree",
    "phase_durations",
    "SubspaceTreeReport",
    "DepthRow",
]
