"""repro.obs — query-lifecycle observability.

A lightweight, dependency-free metrics layer: phase timers, counters,
gauges, fixed-bucket histograms, Prometheus text exposition, and the
strict parser the CI smoke job runs against it.  Disabled-path
overhead is one ``None`` check per site — see
:mod:`repro.obs.metrics` and DESIGN.md §"Observability".
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    SEARCH_PHASES,
    Histogram,
    MetricsRegistry,
    maybe_phase,
    parse_prom,
)

__all__ = [
    "MetricsRegistry",
    "Histogram",
    "maybe_phase",
    "parse_prom",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "SEARCH_PHASES",
]
