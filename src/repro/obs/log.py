"""Structured query logging — one JSON event per query, plus slow dumps.

The metrics registry aggregates *across* queries and the span tracer
explains *one sampled* query; this module is the per-query ledger in
between: every query the solver answers emits exactly one JSON object
on its own line (``jsonl``), carrying a stable **query id**, the
algorithm/kernel pair, latency, and the non-zero work counters.  The
id is generated in :meth:`~repro.core.kpj.KPJSolver._solve`, stamped
on the :class:`~repro.core.result.QueryResult`, attached to the query
span, and readable from :data:`current_query_id` anywhere below the
solver (the iteratively bounding driver tags its root span with it) —
so a log line, a trace tree, and a batch report all name the same
query the same way.

Query ids are fork-safe by construction: ``q-<pid hex>-<seq>`` — a
pool worker inherits the parent's sequence counter but never its pid,
so ids stay globally unique across :func:`~repro.server.pool.run_batch`
workers with zero coordination.

**Slow-query dumps.**  A :class:`QueryLogger` built with ``slow_ms``
additionally snapshots any query at or over the threshold into its own
JSON file (``slow-<query_id>.json`` under ``slow_dir``) containing the
log event *plus* the query's full trace and metrics snapshots — the
evidence one wants when a p99 straggler shows up hours later.
:func:`load_slow_query` round-trips the dump back into a live
:class:`~repro.obs.metrics.MetricsRegistry` and a span snapshot that
:func:`~repro.obs.tracing.render_tree` accepts directly.

Format contract (DESIGN.md §3g): events are single-line JSON objects
with at least ``event``, ``v``, ``ts``, ``query_id``;
:func:`parse_query_log` is the strict reader the CI smoke job runs
against the writer.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import QueryResult

__all__ = [
    "QueryLogger",
    "SlowQuery",
    "current_query_id",
    "new_query_id",
    "parse_query_log",
    "load_slow_query",
    "LOG_VERSION",
]

#: Schema version stamped on every event (bump on breaking change).
LOG_VERSION = 1

#: The id of the query currently being solved, or ``None`` outside a
#: query.  Set by the solver around each ``_solve`` call; read by any
#: layer that wants to tag its output without a signature change.
current_query_id: ContextVar[str | None] = ContextVar(
    "repro_current_query_id", default=None
)

_SEQ = itertools.count(1)


def new_query_id() -> str:
    """Mint a process-unique query id (``q-<pid hex>-<seq>``).

    The pid component makes ids unique across forked pool workers
    (each worker inherits the sequence position but not the pid); the
    monotone sequence makes them unique — and sortable by issue order
    — within a process.
    """
    return f"q-{os.getpid():x}-{next(_SEQ):06d}"


class QueryLogger:
    """Emit one JSON line per query, and dump slow queries to files.

    Parameters
    ----------
    stream:
        Writable text stream for the event lines.  Mutually exclusive
        with ``path``.
    path:
        File to append event lines to (opened lazily, line-buffered in
        spirit: every event is a single ``write`` followed by a flush,
        so concurrent appenders interleave whole lines).
    slow_ms:
        Latency threshold; a query whose ``elapsed_ms`` reaches it gets
        a full dump (event + trace + metrics) written under
        ``slow_dir``.  ``None`` disables slow dumps.
    slow_dir:
        Directory for slow-query dump files; created on first dump.
        Defaults to the log file's directory (or the working directory
        for stream-backed loggers).
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        path: str | os.PathLike | None = None,
        slow_ms: float | None = None,
        slow_dir: str | os.PathLike | None = None,
    ) -> None:
        if (stream is None) == (path is None):
            raise ValueError("exactly one of stream/path is required")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError(f"slow_ms must be non-negative, got {slow_ms}")
        self._stream = stream
        self._path = Path(path) if path is not None else None
        self._owns_stream = stream is None
        self.slow_ms = slow_ms
        if slow_dir is not None:
            self.slow_dir = Path(slow_dir)
        elif self._path is not None:
            self.slow_dir = self._path.parent
        else:
            self.slow_dir = Path(".")
        #: Number of slow dumps written over this logger's lifetime.
        self.slow_count = 0

    # ------------------------------------------------------------------
    def _ensure_stream(self) -> IO[str]:
        if self._stream is None:
            self._stream = open(self._path, "a", encoding="utf-8")
        return self._stream

    def emit(self, event: Mapping) -> None:
        """Write one event as a single JSON line and flush.

        The whole line is one ``write`` call, so lines from multiple
        processes appending to the same file never interleave within a
        line (POSIX ``O_APPEND`` semantics).
        """
        stream = self._ensure_stream()
        stream.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        stream.flush()

    def log_query(
        self,
        result: "QueryResult",
        *,
        query_id: str,
        kernel: str | None = None,
        sources: Iterable[int] | None = None,
        category: str | int | None = None,
        destinations: int | None = None,
        k: int | None = None,
    ) -> dict:
        """Build, emit, and return the event for one finished query.

        When the query is slow (``elapsed_ms >= slow_ms``) the event
        gains ``"slow": true`` and ``"slow_dump": <path>`` pointing at
        the full dump written alongside — the dump embeds the same
        event, so either artifact alone identifies the query.
        """
        event: dict = {
            "event": "query",
            "v": LOG_VERSION,
            "ts": time.time(),
            "query_id": query_id,
            "algorithm": result.algorithm,
            "elapsed_ms": round(result.elapsed_ms, 3),
            "paths": result.k_found,
            "stats": result.stats.nonzero(),
        }
        if kernel is not None:
            event["kernel"] = kernel
        if k is not None:
            event["k"] = k
        if sources is not None:
            event["sources"] = list(sources)
        if category is not None:
            event["category"] = category
        if destinations is not None:
            event["destinations"] = destinations
        if result.paths:
            event["best_length"] = result.paths[0].length
        if self.slow_ms is not None and result.elapsed_ms >= self.slow_ms:
            event["slow"] = True
            event["slow_dump"] = str(self._dump_slow(event, result))
        self.emit(event)
        return event

    def _dump_slow(self, event: Mapping, result: "QueryResult") -> Path:
        self.slow_dir.mkdir(parents=True, exist_ok=True)
        path = self.slow_dir / f"slow-{event['query_id']}.json"
        payload = {
            "format": "kpj-slow-query",
            "v": LOG_VERSION,
            "event": dict(event),
            "metrics": result.metrics,
            "trace": result.trace,
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2, default=str)
            fh.write("\n")
        self.slow_count += 1
        return path

    def close(self) -> None:
        """Close the underlying stream if this logger opened it."""
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "QueryLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_query_log(text: str) -> list[dict]:
    """Strict reader for the event-line format :class:`QueryLogger` writes.

    Returns the parsed events in file order; raises
    :class:`ValueError` naming the offending line on malformed JSON, a
    non-object line, a missing required key, or an unknown schema
    version — the CI smoke job feeds generated logs through this, so a
    clean pass *is* the writer/reader contract.
    """
    events: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"query log line {lineno}: invalid JSON ({exc})")
        if not isinstance(event, dict):
            raise ValueError(
                f"query log line {lineno}: expected an object, "
                f"got {type(event).__name__}"
            )
        for key in ("event", "v", "ts", "query_id"):
            if key not in event:
                raise ValueError(f"query log line {lineno}: missing {key!r}")
        if event["v"] != LOG_VERSION:
            raise ValueError(
                f"query log line {lineno}: unsupported version {event['v']!r}"
            )
        if not isinstance(event["query_id"], str) or not event["query_id"]:
            raise ValueError(
                f"query log line {lineno}: bad query_id {event['query_id']!r}"
            )
        events.append(event)
    return events


@dataclass
class SlowQuery:
    """A slow-query dump, reconstructed (see :func:`load_slow_query`).

    ``metrics`` is a live registry rebuilt via
    :meth:`~repro.obs.metrics.MetricsRegistry.from_dict` (so
    ``report()``/``render_prom()`` work on it); ``trace`` is a span
    snapshot in the exact shape
    :func:`~repro.obs.tracing.render_tree` and
    :func:`~repro.obs.tracing.chrome_trace` accept.  Either may be
    ``None`` when the solver ran without that subsystem enabled.
    """

    event: dict
    metrics: MetricsRegistry | None
    trace: dict | None


def load_slow_query(path: str | os.PathLike) -> SlowQuery:
    """Round-trip a slow-query dump file back into live objects."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != "kpj-slow-query":
        raise ValueError(f"{path}: not a kpj-slow-query dump")
    if payload.get("v") != LOG_VERSION:
        raise ValueError(f"{path}: unsupported version {payload.get('v')!r}")
    event = payload.get("event")
    if not isinstance(event, dict) or "query_id" not in event:
        raise ValueError(f"{path}: dump has no embedded query event")
    metrics_dict = payload.get("metrics")
    metrics = (
        MetricsRegistry.from_dict(metrics_dict) if metrics_dict is not None else None
    )
    trace = payload.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise ValueError(f"{path}: trace snapshot is not an object")
    return SlowQuery(event=event, metrics=metrics, trace=trace)
