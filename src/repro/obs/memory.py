"""Memory telemetry — opt-in tracemalloc attribution and byte gauges.

Work counters say how much the kernels *did*; this module says what
that work *cost in memory*, in three independent tiers:

* :func:`peak_rss_bytes` — the process high-water mark from
  ``getrusage`` (always available, ~µs to read);
* pool/cache byte accounting — :func:`scratch_pool_bytes` sizes the
  pooled :class:`~repro.pathing.flat.FlatScratch` /
  :class:`~repro.pathing.native.NativeScratch` buffers parked on a CSR
  snapshot (each class reports itself via ``nbytes()``), complementing
  the solver's ``prepared_cache_bytes`` gauge;
* :class:`MemoryTelemetry` — **opt-in** per-phase ``tracemalloc``
  attribution.  Tracemalloc instruments every allocation in the
  process (typically 2-4x slower), so it is never started implicitly:
  construct a telemetry object, attach it to the solver (or pass
  ``--memory`` on the CLI), and each query phase records its net
  allocated bytes and traced peak into the per-query registry as
  ``mem_<phase>_alloc_bytes`` counters and ``mem_<phase>_peak_bytes``
  gauges.

Everything here follows the observability discipline of DESIGN.md §3c:
disabled means one ``None`` check at the call site, nothing imported
or started until a user asks.
"""

from __future__ import annotations

import sys
import tracemalloc
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MemoryTelemetry",
    "peak_rss_bytes",
    "scratch_pool_bytes",
    "graph_pool_bytes",
]


def peak_rss_bytes() -> int:
    """Process peak resident-set size in bytes (0 where unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to bytes.  Platforms without :mod:`resource` (Windows)
    report 0 rather than failing — the gauge is advisory.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX only
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def scratch_pool_bytes(csr) -> dict[str, int]:
    """Bytes parked in one CSR snapshot's scratch pools.

    Sums ``nbytes()`` over the pooled flat and native scratch sets
    (idle buffers awaiting reuse — buffers currently checked out by a
    running search are owned by that search, not the pool).
    """
    return {
        "flat_scratch_pool_bytes": sum(
            s.nbytes() for s in getattr(csr, "_scratch_pool", ())
        ),
        "native_scratch_pool_bytes": sum(
            s.nbytes() for s in getattr(csr, "_native_pool", ())
        ),
    }


def graph_pool_bytes(*graphs) -> dict[str, int]:
    """Aggregate :func:`scratch_pool_bytes` over several graphs.

    Accepts :class:`~repro.graph.digraph.DiGraph`-likes (their cached
    CSR snapshot is used, if one was materialised) and ``None`` /
    graphs without a snapshot, which contribute nothing — so callers
    can pass the base graph and the lazily-built ``G_Q`` overlay
    unconditionally.
    """
    totals = {"flat_scratch_pool_bytes": 0, "native_scratch_pool_bytes": 0}
    for graph in graphs:
        if graph is None:
            continue
        csr = getattr(graph, "csr_cache", None)
        if csr is None:
            continue
        for key, value in scratch_pool_bytes(csr).items():
            totals[key] += value
    return totals


class MemoryTelemetry:
    """Per-phase tracemalloc attribution (explicitly opt-in).

    Lifecycle: :meth:`start` begins tracing (a no-op if something else
    — e.g. ``PYTHONTRACEMALLOC`` — already started it, and then
    :meth:`stop` leaves it running); :meth:`phase` wraps a unit of
    work and records its net allocations and traced peak into a
    registry; :meth:`record_gauges` stamps the process-level gauges.
    Phases are expected to be sequential, not nested — the traced peak
    is a process-global high-water mark that each phase resets on
    entry, so nested phases would attribute the inner peak to both.
    """

    def __init__(self) -> None:
        self._started_here = False

    @property
    def active(self) -> bool:
        """Whether tracemalloc is currently tracing."""
        return tracemalloc.is_tracing()

    def start(self) -> "MemoryTelemetry":
        """Begin tracing (no-op if something else already started it)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        return self

    def stop(self) -> None:
        """Stop tracing, but only if :meth:`start` actually started it."""
        if self._started_here:
            tracemalloc.stop()
            self._started_here = False

    def __enter__(self) -> "MemoryTelemetry":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @contextmanager
    def phase(self, name: str, registry: "MetricsRegistry | None") -> Iterator[None]:
        """Attribute the body's allocations to ``name`` in ``registry``.

        Records ``mem_<name>_alloc_bytes`` (counter: net bytes still
        allocated when the phase ends, clamped at 0) and
        ``mem_<name>_peak_bytes`` (gauge: traced high-water mark during
        the phase).  A no-op when tracing is off or ``registry`` is
        ``None``.
        """
        if registry is None or not tracemalloc.is_tracing():
            yield
            return
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        try:
            yield
        finally:
            after, peak = tracemalloc.get_traced_memory()
            registry.inc(f"mem_{name}_alloc_bytes", max(0, after - before))
            registry.set_gauge(f"mem_{name}_peak_bytes", peak)

    def record_gauges(self, registry: "MetricsRegistry | None") -> None:
        """Stamp process-level memory gauges into ``registry``.

        ``process_peak_rss_bytes`` always; ``tracemalloc_current_bytes``
        / ``tracemalloc_peak_bytes`` when tracing is active.
        """
        if registry is None:
            return
        registry.set_gauge("process_peak_rss_bytes", peak_rss_bytes())
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            registry.set_gauge("tracemalloc_current_bytes", current)
            registry.set_gauge("tracemalloc_peak_bytes", peak)
