"""The query-lifecycle metrics registry.

The paper's efficiency story is about *where the work goes* — CompSP
vs TestLB vs SPT growth (Sections 4–5) — so end-to-end wall clock
alone cannot attribute a speed-up (or a regression) to a phase.
:class:`MetricsRegistry` is the package's one sink for that
attribution:

* **phases** — wall-clock accumulators keyed by phase name
  (``prepare`` / ``comp_sp`` / ``spt_grow`` / ``test_lb`` /
  ``division`` / ``search_other`` / ``warmup`` / ``landmark_build``),
  each recording total seconds and call count.  Hot loops accumulate
  into locals and flush once (:meth:`MetricsRegistry.observe_phase`);
  coarse phases use the :meth:`MetricsRegistry.phase_timer` context
  manager;
* **counters** — monotonically increasing event counts;
* **gauges** — size/peak measurements (heap peaks, scratch-array
  stamp generations, cache bytes).  Gauges record *peaks*: setting a
  gauge keeps the maximum seen, and merging two registries takes the
  per-gauge max;
* **histograms** — fixed-bucket latency distributions with quantile
  estimation (p50/p95/p99 for batch reports).

Everything is a plain python structure: a registry round-trips
through :meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.from_dict`
(the fork boundary ships snapshots exactly like
:class:`~repro.core.stats.SearchStats` rides back with each result),
and :meth:`MetricsRegistry.render_prom` emits Prometheus text
exposition with **no dependency** — :func:`parse_prom` is the matching
strict parser the CI smoke job uses.

The disabled path costs one ``None`` check per site, the same
discipline as :class:`~repro.core.trace.SearchTrace`: nothing in this
module is imported on a query's hot path unless a registry was
explicitly attached.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Iterator, Mapping, Sequence

__all__ = [
    "MetricsRegistry",
    "Histogram",
    "maybe_phase",
    "parse_prom",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "LOADTEST_LATENCY_BUCKETS_MS",
    "SEARCH_PHASES",
]

#: Latency buckets (milliseconds) for per-query histograms — roughly
#: logarithmic from sub-millisecond dict-kernel queries on the small
#: registry graphs up to multi-second cold landmark builds.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


def log_buckets(lo: float, hi: float, per_decade: int = 5) -> tuple[float, ...]:
    """Log-spaced histogram bucket bounds covering ``[lo, hi]``.

    Returns strictly increasing bounds starting at ``lo`` with
    ``per_decade`` buckets per factor of 10, extended until the last
    bound is at least ``hi`` (so nothing inside the declared range can
    fall into the implicit ``+Inf`` overflow bucket, where a quantile
    collapses to the largest finite bound).  Bounds are rounded to six
    significant digits so persisted histograms stay readable.
    """
    if not (math.isfinite(lo) and lo > 0.0):
        raise ValueError(f"log_buckets lo must be finite and > 0, got {lo}")
    if not (math.isfinite(hi) and hi > lo):
        raise ValueError(f"log_buckets hi must be finite and > lo, got {hi}")
    if int(per_decade) != per_decade or per_decade < 1:
        raise ValueError(f"per_decade must be an integer >= 1, got {per_decade}")
    per_decade = int(per_decade)
    count = math.ceil(per_decade * math.log10(hi / lo)) + 1
    bounds = tuple(
        float(f"{lo * 10.0 ** (i / per_decade):.6g}") for i in range(count)
    )
    if list(bounds) != sorted(set(bounds)):
        raise ValueError(
            f"per_decade={per_decade} too fine: rounded bounds collide"
        )
    return bounds


#: Log-spaced buckets for load-test tail latencies: 50 µs up to two
#: minutes, five buckets per decade.  Under open-loop load the queue
#: wait dwarfs the service time, so :data:`DEFAULT_LATENCY_BUCKETS_MS`
#: (top bound 5 s) would collapse a loaded run's p99.9 into the
#: overflow bucket; these reach far enough that every honest tail
#: quantile stays in a finite bucket.
LOADTEST_LATENCY_BUCKETS_MS: tuple[float, ...] = log_buckets(0.05, 120_000.0, 5)

#: The fine-grained phases recorded *inside* the iteratively bounding
#: driver; the solver derives ``search_other`` as the driver residue so
#: the recorded phases tile the query's elapsed time.
SEARCH_PHASES: tuple[str, ...] = ("comp_sp", "spt_grow", "test_lb", "division")


class Histogram:
    """A fixed-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper bounds; one implicit ``+Inf``
    overflow bucket follows.  ``counts[i]`` is the number of
    observations ``<= buckets[i]`` *exclusive of earlier buckets*
    (non-cumulative storage; :meth:`render` and quantiles cumulate on
    demand).
    """

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        self.buckets: tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.counts: list[int] = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation.

        Bucket bounds are **inclusive** (Prometheus ``le``):
        ``bisect_left`` sends a value exactly equal to a bound into
        that bound's bucket, not the next one.
        """
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1), interpolated in-bucket.

        Pinned edge-case behaviour (tested explicitly — treat any
        change as a breaking one):

        * ``q`` outside ``(0, 1]`` raises :class:`ValueError` — in
          particular **q = 0 raises** rather than returning a minimum
          (a fixed-bucket histogram has no honest minimum to give);
        * an **empty histogram** returns ``nan`` for every valid ``q``;
        * observations **above the top bucket** land in the implicit
          ``+Inf`` overflow bucket, and any quantile that falls there
          is reported at the largest *finite* bound — the honest
          answer a fixed-bucket histogram can give (``inf`` when the
          bucket layout is empty, i.e. overflow is the only bucket);
        * a rank landing exactly on a bucket's cumulative boundary
          reports that bucket's **upper** bound (``q = 1.0`` with a
          single in-bucket observation reports the bucket's ``le``,
          never the next bucket's);
        * in-bucket interpolation is linear from the previous bound
          (0 for the first bucket — observations are assumed
          non-negative, as all recorded series here are).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.total == 0:
            return math.nan
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                if i >= len(self.buckets):  # overflow bucket
                    return self.buckets[-1] if self.buckets else math.inf
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                return lo + (hi - lo) * (rank - seen) / count
            seen += count
        return self.buckets[-1] if self.buckets else math.inf  # pragma: no cover

    def merge(self, other: "Histogram | Mapping") -> None:
        """Bucket-wise addition; bucket layouts must match."""
        if isinstance(other, Mapping):
            other = Histogram.from_dict(other)
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum

    def as_dict(self) -> dict:
        """Picklable snapshot."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Histogram":
        """Inverse of :meth:`as_dict`."""
        hist = cls(data["buckets"])
        hist.counts = list(data["counts"])
        hist.total = int(data["total"])
        hist.sum = float(data["sum"])
        return hist


class MetricsRegistry:
    """Counters, gauges, phase timers, and histograms for one scope.

    A registry is *per scope*, not global: the solver keeps one for
    its lifetime, every query records into a fresh per-query registry
    whose snapshot rides on the :class:`~repro.core.result.QueryResult`,
    and :func:`~repro.server.pool.run_batch` merges the per-query
    snapshots (plus the parent's pre-fork ``warmup``) into the
    caller's aggregate — the same shape as ``SearchStats`` threading.
    """

    __slots__ = ("counters", "gauges", "phases", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [seconds_total, calls_total]
        self.phases: dict[str, list] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record a gauge *peak*: keeps the maximum value seen."""
        if value > self.gauges.get(name, -math.inf):
            self.gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets)
        hist.observe(value)

    def observe_phase(self, name: str, seconds: float, calls: int = 1) -> None:
        """Add ``seconds``/``calls`` to phase ``name`` (flush of a hot loop)."""
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = [seconds, calls]
        else:
            entry[0] += seconds
            entry[1] += calls

    @contextmanager
    def phase_timer(self, name: str) -> Iterator[None]:
        """Context manager timing one coarse phase."""
        start = perf_counter()
        try:
            yield
        finally:
            self.observe_phase(name, perf_counter() - start)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def phase_seconds(self, names: Sequence[str] | None = None) -> float:
        """Total recorded seconds over ``names`` (or every phase)."""
        if names is None:
            return sum(entry[0] for entry in self.phases.values())
        return sum(self.phases[n][0] for n in names if n in self.phases)

    def merge(self, other: "MetricsRegistry | Mapping") -> "MetricsRegistry":
        """Fold another registry (or an :meth:`as_dict` snapshot) in.

        Counters and phases add; gauges take the max (they record
        peaks); histograms add bucket-wise.  Returns self.
        """
        if isinstance(other, Mapping):
            other = MetricsRegistry.from_dict(other)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            self.set_gauge(name, value)
        for name, (seconds, calls) in other.phases.items():
            self.observe_phase(name, seconds, calls)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(hist.as_dict())
            else:
                mine.merge(hist)
        return self

    def merge_stats(self, stats) -> "MetricsRegistry":
        """Fold a :class:`~repro.core.stats.SearchStats` into the counters.

        Used by the exposition surfaces (``kpj metrics``) so one
        document carries the work counters next to the phase timers.
        """
        for name, value in stats.as_dict().items():
            if value:
                self.inc(name, value)
        return self

    def as_dict(self) -> dict:
        """Picklable snapshot (inverse: :meth:`from_dict`)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "phases": {name: list(entry) for name, entry in self.phases.items()},
            "histograms": {
                name: hist.as_dict() for name, hist in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        reg = cls()
        reg.counters.update(data.get("counters", {}))
        reg.gauges.update(data.get("gauges", {}))
        for name, entry in data.get("phases", {}).items():
            reg.phases[name] = [float(entry[0]), int(entry[1])]
        for name, hist in data.get("histograms", {}).items():
            reg.histograms[name] = Histogram.from_dict(hist)
        return reg

    def to_json(self) -> str:
        """Stable JSON encoding (sorted keys) of :meth:`as_dict`.

        The persistence form for run artifacts (bench reports,
        regression baselines); :meth:`from_json` inverts it exactly —
        a round-tripped registry merges, reports, and renders
        identically to the original.
        """
        import json

        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))

    def report(self) -> dict:
        """The structured run report (``--metrics json`` payload).

        Phases come with milliseconds and call counts; histograms with
        count/sum and estimated p50/p95/p99.
        """
        phases = {
            name: {"ms": seconds * 1000.0, "seconds": seconds, "calls": calls}
            for name, (seconds, calls) in sorted(self.phases.items())
        }
        histograms = {}
        for name, hist in sorted(self.histograms.items()):
            histograms[name] = {
                "count": hist.total,
                "sum": hist.sum,
                "p50": hist.quantile(0.50),
                "p95": hist.quantile(0.95),
                "p99": hist.quantile(0.99),
            }
        return {
            "phases": phases,
            "phase_total_ms": self.phase_seconds() * 1000.0,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": histograms,
        }

    def render_text(self) -> str:
        """Aligned human-readable report (``--metrics text``)."""
        lines = ["metrics:"]
        if self.phases:
            width = max(len(n) for n in self.phases)
            lines.append("  phases (ms / calls):")
            for name, (seconds, calls) in sorted(self.phases.items()):
                lines.append(f"    {name:<{width}}  {seconds * 1e3:10.3f}  {calls}")
        if self.counters:
            width = max(len(n) for n in self.counters)
            lines.append("  counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name:<{width}}  {value:g}")
        if self.gauges:
            width = max(len(n) for n in self.gauges)
            lines.append("  gauges:")
            for name, value in sorted(self.gauges.items()):
                lines.append(f"    {name:<{width}}  {value:g}")
        for name, hist in sorted(self.histograms.items()):
            lines.append(
                f"  {name}: n={hist.total}  p50={hist.quantile(0.5):.3f}"
                f"  p95={hist.quantile(0.95):.3f}  p99={hist.quantile(0.99):.3f}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    def render_prom(self, prefix: str = "kpj") -> str:
        """Prometheus text-format exposition, no client library needed.

        Phases become ``<prefix>_phase_seconds_total`` /
        ``<prefix>_phase_calls_total`` with a ``phase`` label; counters
        get a ``_total`` suffix; histograms emit the standard
        ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.  Output is
        deterministically ordered so CI can diff two expositions.
        """
        out: list[str] = []
        if self.phases:
            out.append(f"# TYPE {prefix}_phase_seconds_total counter")
            for name, (seconds, _) in sorted(self.phases.items()):
                out.append(
                    f'{prefix}_phase_seconds_total{{phase="{name}"}} {seconds:.9f}'
                )
            out.append(f"# TYPE {prefix}_phase_calls_total counter")
            for name, (_, calls) in sorted(self.phases.items()):
                out.append(f'{prefix}_phase_calls_total{{phase="{name}"}} {calls}')
        for name, value in sorted(self.counters.items()):
            metric = f"{prefix}_{name}_total"
            out.append(f"# TYPE {metric} counter")
            out.append(f"{metric} {value:g}")
        for name, value in sorted(self.gauges.items()):
            metric = f"{prefix}_{name}"
            out.append(f"# TYPE {metric} gauge")
            out.append(f"{metric} {value:g}")
        for name, hist in sorted(self.histograms.items()):
            metric = f"{prefix}_{name}"
            out.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                out.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
            out.append(f'{metric}_bucket{{le="+Inf"}} {hist.total}')
            out.append(f"{metric}_sum {hist.sum:.9f}")
            out.append(f"{metric}_count {hist.total}")
        return "\n".join(out) + "\n"


def maybe_phase(registry: MetricsRegistry | None, name: str):
    """``registry.phase_timer(name)`` or a no-op context when disabled.

    The one-``None``-check idiom for coarse (per-query, not per-edge)
    phases; hot loops accumulate locals and flush via
    :meth:`MetricsRegistry.observe_phase` instead.
    """
    if registry is None:
        return nullcontext()
    return registry.phase_timer(name)


def parse_prom(text: str, require_non_negative: bool = True) -> dict:
    """Strict parser for :meth:`MetricsRegistry.render_prom` output.

    Returns ``{(metric_name, labels): value}`` with ``labels`` a
    ``tuple`` of sorted ``(key, value)`` pairs.  Raises
    :class:`ValueError` on malformed lines, non-finite (NaN/inf)
    samples, or — by default — negative values: a negative or NaN
    timer means an instrumentation bug, and the CI smoke job treats it
    as a hard failure.
    """
    samples: dict[tuple[str, tuple], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no metric name in {raw!r}")
        labels: tuple = ()
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels in {raw!r}")
            name, _, label_blob = name_part[:-1].partition("{")
            pairs = []
            for item in label_blob.split(","):
                key, eq, val = item.partition("=")
                if not eq or len(val) < 2 or val[0] != '"' or val[-1] != '"':
                    raise ValueError(f"line {lineno}: bad label {item!r}")
                pairs.append((key.strip(), val[1:-1]))
            labels = tuple(sorted(pairs))
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparseable value {value_part!r}"
            ) from None
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"line {lineno}: non-finite sample {raw!r}")
        if require_non_negative and value < 0:
            raise ValueError(f"line {lineno}: negative sample {raw!r}")
        key = (name, labels)
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {name} {labels}")
        samples[key] = value
    return samples
