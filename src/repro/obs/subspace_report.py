"""Subspace-tree introspection: the explored search tree, per depth.

The paper's efficiency argument (Sections 4–5) is about the *shape*
of the subspace tree: ``IterBound`` wins because most subspaces are
pruned by a cheap lower bound instead of paying a shortest-path
computation each.  :class:`SubspaceTreeReport` reconstructs that tree
for one query — how many subspaces were tested, expanded, or pruned
at each prefix depth, and which bound family did the pruning — from
either of the two narrations the engines emit:

* :meth:`SubspaceTreeReport.from_spans` — the
  :mod:`repro.obs.tracing` span snapshot riding on a traced
  :class:`~repro.core.result.QueryResult` (``test_lb``/``division``
  spans carry depth, bound, τ, verdict, children/pruned counts);
* :meth:`SubspaceTreeReport.from_search_trace` — the
  :class:`~repro.core.trace.SearchTrace` event list ``kpj explain``
  already records.

Both adapters normalise into one event stream and share a single
``_build`` path, so ``kpj explain --tree`` and ``kpj trace`` print
the same reconstruction.  Span-built reports additionally know the
division fan-out and the end-of-search queue leftovers, which makes
their totals equal the :class:`~repro.core.stats.SearchStats`
subspace counters exactly (asserted by the tracing tests under both
kernels); SearchTrace-built reports leave those totals ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["DepthRow", "SubspaceTreeReport"]

#: test_lb verdicts, in the order Alg. 4 distinguishes them.
_VERDICTS = ("hit", "miss", "retire")

#: SearchTrace event kind -> normalised verdict.
_TRACE_KINDS = {"test-hit": "hit", "test-miss": "miss", "retire": "retire"}


@dataclass
class DepthRow:
    """Per-depth tallies of the explored subspace tree.

    ``depth`` is the subspace prefix length minus one (the root
    subspace of Alg. 4 sits at depth 0).  ``tested`` counts ``TestLB``
    invocations; ``hits``/``misses``/``retired`` split them by
    verdict; ``expanded`` counts subspaces whose path was output and
    divided; ``children``/``born_pruned`` count division offspring and
    the offspring discarded immediately because ``CompLB`` proved them
    empty (span-built reports only).
    """

    depth: int
    tested: int = 0
    hits: int = 0
    misses: int = 0
    retired: int = 0
    expanded: int = 0
    children: int = 0
    born_pruned: int = 0


@dataclass
class SubspaceTreeReport:
    """The reconstructed subspace tree of one iteratively bounding query."""

    rows: dict[int, DepthRow] = field(default_factory=dict)
    #: Which bound family drove the pruning (``"landmark"``,
    #: ``"global"``, ``"spt_p"``, ``"spt_i"``); ``None`` when the
    #: narration did not record it.
    bound_kind: str | None = None
    #: Subspaces still queued (bound-only) when the k-th path was
    #: confirmed; ``None`` when unknown (SearchTrace-built reports).
    leftover: int | None = None
    #: Whether division fan-out was recorded (span-built reports).
    has_divisions: bool = False
    #: True when the source ring buffer never evicted — totals are
    #: exact, not lower bounds.
    complete: bool = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spans(cls, trace: Mapping | None) -> "SubspaceTreeReport":
        """Build from a span snapshot (``QueryResult.trace``)."""
        report = cls()
        if trace is None:
            return report
        if hasattr(trace, "as_dict") and not isinstance(trace, Mapping):
            trace = trace.as_dict()  # accept a live SpanTracer too
        report.complete = not trace.get("evicted", 0)
        events: list[tuple] = []
        for span in trace.get("spans", ()):
            name = span.get("name")
            attrs = span.get("attrs") or {}
            if name == "test_lb":
                events.append(("test", int(attrs.get("depth", 0)),
                               str(attrs.get("verdict", "miss"))))
            elif name == "division":
                report.has_divisions = True
                events.append(("division", int(attrs.get("depth", 0)),
                               int(attrs.get("children", 0)),
                               int(attrs.get("pruned", 0))))
            elif name == "iter_bound":
                if "leftover" in attrs:
                    report.leftover = int(attrs["leftover"])
                if attrs.get("bound_kind") is not None:
                    report.bound_kind = str(attrs["bound_kind"])
        report._build(events)
        return report

    @classmethod
    def from_search_trace(cls, trace) -> "SubspaceTreeReport":
        """Build from a :class:`~repro.core.trace.SearchTrace`.

        Depth is derived from the recorded prefix; division fan-out
        and queue leftovers are not part of the ``SearchTrace``
        narration, so :attr:`subspaces_created` /
        :attr:`subspaces_pruned` stay ``None``.
        """
        report = cls()
        events: list[tuple] = []
        for event in trace.events:
            depth = max(len(event.prefix) - 1, 0)
            if event.kind == "output":
                events.append(("division", depth, 0, 0))
            elif event.kind in _TRACE_KINDS:
                events.append(("test", depth, _TRACE_KINDS[event.kind]))
        report._build(events)
        return report

    def _build(self, events: Iterable[tuple]) -> None:
        """The one shared reconstruction path for both narrations."""
        rows = self.rows
        for event in events:
            kind, depth = event[0], event[1]
            row = rows.get(depth)
            if row is None:
                row = rows[depth] = DepthRow(depth)
            if kind == "test":
                row.tested += 1
                verdict = event[2]
                if verdict == "hit":
                    row.hits += 1
                elif verdict == "retire":
                    row.retired += 1
                else:
                    row.misses += 1
            else:  # division (== one output expanded)
                row.expanded += 1
                row.children += event[2]
                row.born_pruned += event[3]

    # ------------------------------------------------------------------
    # Totals (the SearchStats-matching view)
    # ------------------------------------------------------------------
    @property
    def lb_tests(self) -> int:
        """Total ``TestLB`` invocations (== ``SearchStats.lb_tests``)."""
        return sum(row.tested for row in self.rows.values())

    @property
    def lb_test_failures(self) -> int:
        """Tests that did not produce a path (misses + retirements)."""
        return sum(row.misses + row.retired for row in self.rows.values())

    @property
    def outputs(self) -> int:
        """Paths output (each output divides its subspace once)."""
        return sum(row.expanded for row in self.rows.values())

    @property
    def subspaces_created(self) -> int | None:
        """Root + division offspring (== ``SearchStats.subspaces_created``).

        ``None`` when the narration lacks division fan-out.
        """
        if not self.has_divisions:
            return None
        return 1 + sum(row.children for row in self.rows.values())

    @property
    def subspaces_pruned(self) -> int | None:
        """Discarded without a path (== ``SearchStats.subspaces_pruned``).

        Born-pruned division offspring, plus retirements, plus the
        bound-only queue entries left when the search stopped.
        ``None`` when fan-out or leftovers were not recorded.
        """
        if not self.has_divisions or self.leftover is None:
            return None
        return (
            sum(row.born_pruned + row.retired for row in self.rows.values())
            + self.leftover
        )

    @property
    def pruned_expanded_ratio(self) -> float | None:
        """Pruned-vs-expanded — the paper's Figure-style pruning claim."""
        pruned = self.subspaces_pruned
        expanded = self.outputs
        if pruned is None or expanded == 0:
            return None
        return pruned / expanded

    @property
    def max_depth(self) -> int:
        """Deepest prefix the search touched."""
        return max(self.rows, default=0)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Aligned per-depth table plus the totals line."""
        lines = ["subspace tree:"]
        if self.bound_kind is not None:
            lines[0] = f"subspace tree (bound: {self.bound_kind}):"
        if not self.rows:
            lines.append("  (no subspace events recorded)")
            return "\n".join(lines)
        header = (
            f"  {'depth':>5} {'tested':>7} {'hit':>5} {'miss':>5} "
            f"{'retire':>7} {'expanded':>9}"
        )
        if self.has_divisions:
            header += f" {'children':>9} {'born-pruned':>12}"
        lines.append(header)
        for depth in sorted(self.rows):
            row = self.rows[depth]
            line = (
                f"  {depth:>5} {row.tested:>7} {row.hits:>5} {row.misses:>5} "
                f"{row.retired:>7} {row.expanded:>9}"
            )
            if self.has_divisions:
                line += f" {row.children:>9} {row.born_pruned:>12}"
            lines.append(line)
        totals = [
            f"tests={self.lb_tests}",
            f"failures={self.lb_test_failures}",
            f"outputs={self.outputs}",
        ]
        if self.subspaces_created is not None:
            totals.append(f"created={self.subspaces_created}")
        if self.subspaces_pruned is not None:
            totals.append(f"pruned={self.subspaces_pruned}")
        ratio = self.pruned_expanded_ratio
        if ratio is not None:
            totals.append(f"pruned/expanded={ratio:.2f}")
        if self.leftover is not None:
            totals.append(f"leftover={self.leftover}")
        if not self.complete:
            totals.append("(ring evicted spans: totals are lower bounds)")
        lines.append("  totals: " + "  ".join(totals))
        return "\n".join(lines)
