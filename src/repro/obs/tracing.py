"""Span tracing — per-query timelines with parent/child structure.

:class:`~repro.obs.metrics.MetricsRegistry` answers *how much* time
each phase costs in aggregate; this module answers *why one query was
slow*: which subspaces were divided, which ``TestLB`` calls missed the
threshold, how the ``τ = α·τ`` schedule interacted with tree growth.
A :class:`SpanTracer` records **spans** — named intervals with
monotonic timestamps, parent/child nesting, and per-span attributes —
into a bounded ring buffer, and exports them in two forms:

* :func:`chrome_trace` — Chrome trace-event JSON (the ``"X"``
  complete-event flavour) loadable in ``chrome://tracing`` or
  Perfetto, with one ``pid`` lane per worker process;
* :func:`render_tree` — a human-readable indented tree
  (``kpj trace`` / ``kpj query --trace``).

Discipline is identical to :class:`~repro.core.trace.SearchTrace` and
the metrics registry: tracing is strictly opt-in and the disabled path
costs one ``None`` check per site — nothing here is imported or
allocated on a hot path unless a tracer was explicitly attached (a
unit test asserts the no-allocation property).  Tracers are *per
scope*: the solver keeps one for its lifetime, every sampled query
records into a fresh per-query tracer whose :meth:`SpanTracer.as_dict`
snapshot rides back on the :class:`~repro.core.result.QueryResult`
(a plain dict, so it crosses the batch pool's fork boundary), and
:func:`~repro.server.pool.run_batch` re-roots the worker snapshots
under its batch span via :meth:`SpanTracer.absorb`.

Span taxonomy (see DESIGN.md §3d for the full contract):

==============  =========  ==================================================
name            cat        attributes
==============  =========  ==================================================
``query``       query      ``algorithm``, ``kernel``, ``k``, ``paths``
``prepare``     phase      ``cache`` (``"hit"``/``"miss"``)
``search``      search     —
``iter_bound``  search     ``bound_kind``, ``leftover``, ``results``
``iterate``     search     ``depth``, ``lb``, ``verdict``
``comp_sp``     phase      —
``spt_grow``    phase      ``tau``
``test_lb``     phase      ``depth``, ``lb``, ``tau``, ``verdict``
``division``    phase      ``depth``, ``children``, ``pruned``
``batch``       batch      ``queries``, ``workers``
``warmup``      phase      —
==============  =========  ==================================================
"""

from __future__ import annotations

import math
import os
from collections import deque
from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Iterator, Mapping

__all__ = [
    "SpanTracer",
    "maybe_span",
    "chrome_trace",
    "validate_chrome_trace",
    "render_tree",
    "folded_stacks",
    "phase_durations",
    "DEFAULT_CAPACITY",
]

#: Default ring-buffer bound — large enough that a single query on the
#: registry datasets never evicts, small enough that a long-lived
#: solver tracer stays a few MB.
DEFAULT_CAPACITY = 65_536


class SpanTracer:
    """Bounded span sink for one scope (a query, a batch, a solver).

    Spans are plain dicts — ``{"id", "parent", "name", "cat", "ts",
    "dur", "pid", "attrs"}`` — appended to a ring buffer on
    completion, so :meth:`as_dict` is a shallow copy and the snapshot
    pickles across the pool's fork boundary unchanged.  ``ts`` is
    :func:`time.perf_counter` (``CLOCK_MONOTONIC``: one machine-wide
    clock, so parent- and worker-process spans share a timeline) and
    ``dur`` is in seconds.

    Parameters
    ----------
    capacity:
        Ring-buffer bound; once full, the *oldest* completed span is
        evicted per append (:attr:`evicted` counts them).  Tree
        reconstruction treats spans whose parent was evicted as roots.
    sample_every:
        Sampling stride for :meth:`sample` — the solver traces one
        query in every ``sample_every`` (1 = every query).
    """

    __slots__ = ("capacity", "sample_every", "evicted", "_spans", "_stack",
                 "_next_id", "_pid", "_seen")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sample_every: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        #: Completed spans dropped by the ring buffer.
        self.evicted = 0
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._stack: list[dict] = []
        self._next_id = 0
        self._pid = os.getpid()
        self._seen = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def sample(self) -> bool:
        """Sampling decision for the next unit of work (1-in-N)."""
        decision = self._seen % self.sample_every == 0
        self._seen += 1
        return decision

    def begin(self, name: str, cat: str = "span", **attrs) -> dict:
        """Open a span; returns the token :meth:`end` expects.

        The span nests under the innermost still-open span of this
        tracer.  It is buffered only on :meth:`end` (children complete
        first; reconstruction orders by ``ts``, not buffer position).
        """
        span = {
            "id": self._next_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "cat": cat,
            "ts": perf_counter(),
            "dur": 0.0,
            "pid": self._pid,
            "attrs": dict(attrs) if attrs else {},
        }
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, span: dict, **attrs) -> None:
        """Close ``span`` (and any forgotten children still open)."""
        now = perf_counter()
        span["dur"] = now - span["ts"]
        if attrs:
            span["attrs"].update(attrs)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top["dur"] = now - top["ts"]  # implicitly closed straggler
            self._push(top)
        self._push(span)

    @contextmanager
    def span(self, name: str, cat: str = "span", **attrs) -> Iterator[dict]:
        """Context-manager form of :meth:`begin`/:meth:`end`.

        Yields the span dict so the body can set late attributes:
        ``with tracer.span("prepare") as sp: ...; sp["attrs"]["x"] = 1``.
        """
        span = self.begin(name, cat, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def add(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "span",
        attrs: Mapping | None = None,
    ) -> dict:
        """Record an already-timed span under the current open parent.

        The hot-loop form: the iteratively bounding driver takes its
        own ``perf_counter`` pair (shared with the metrics phase
        accumulators) and hands the completed interval in — no context
        manager, no stack traffic.
        """
        span = {
            "id": self._next_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "cat": cat,
            "ts": start,
            "dur": end - start,
            "pid": self._pid,
            "attrs": dict(attrs) if attrs else {},
        }
        self._next_id += 1
        self._push(span)
        return span

    def absorb(self, snapshot: Mapping | None, parent: dict | None = None) -> None:
        """Fold another tracer's :meth:`as_dict` snapshot in.

        Span ids are re-based to stay unique; spans whose parent is
        missing from the snapshot (evicted in the source ring, or
        genuine roots) are re-parented under ``parent`` — this is how
        :func:`~repro.server.pool.run_batch` roots each worker's query
        tree under its batch span.  Original ``pid``/timestamps are
        kept, so a Chrome export shows one lane per worker on the
        shared monotonic timeline.
        """
        if snapshot is None:
            return
        spans = snapshot.get("spans", ())
        self.evicted += int(snapshot.get("evicted", 0))
        if not spans:
            return
        offset = self._next_id
        present = {s["id"] for s in spans}
        top = 0
        new_parent = parent["id"] if parent is not None else None
        for s in spans:
            t = dict(s)
            t["attrs"] = dict(s.get("attrs") or {})
            if t["id"] > top:
                top = t["id"]
            p = t.get("parent")
            if p is None or p not in present:
                t["parent"] = new_parent
            else:
                t["parent"] = p + offset
            t["id"] += offset
            self._push(t)
        self._next_id = offset + top + 1

    def _push(self, span: dict) -> None:
        if len(self._spans) == self.capacity:
            self.evicted += 1
        self._spans.append(span)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    @property
    def spans(self) -> list[dict]:
        """Completed spans, in completion order."""
        return list(self._spans)

    def as_dict(self) -> dict:
        """Picklable snapshot: completed spans plus still-open ones.

        Open spans are included as copies with ``dur`` measured up to
        now (flagged ``"open": True``), so a snapshot taken mid-search
        — or after an exception unwound past an ``end`` — still
        renders a coherent tree.  The tracer itself is not mutated.
        """
        spans = list(self._spans)
        if self._stack:
            now = perf_counter()
            for open_span in self._stack:
                t = dict(open_span)
                t["attrs"] = dict(open_span["attrs"])
                t["dur"] = now - t["ts"]
                t["attrs"]["open"] = True
                spans.append(t)
        return {"spans": spans, "evicted": self.evicted}


def maybe_span(tracer: SpanTracer | None, name: str, cat: str = "span", **attrs):
    """``tracer.span(...)`` or a no-op context when tracing is off.

    The one-``None``-check idiom for coarse (per-query) spans, the
    tracing twin of :func:`~repro.obs.metrics.maybe_phase`.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, cat, **attrs)


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def _snapshot(trace: "SpanTracer | Mapping") -> Mapping:
    if isinstance(trace, SpanTracer):
        return trace.as_dict()
    return trace


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        if isinstance(value, float) and not math.isfinite(value):
            return repr(value)
        return value
    return repr(value)


def chrome_trace(trace: "SpanTracer | Mapping") -> dict:
    """Export a tracer (or snapshot) as a Chrome trace-event document.

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps relative to the earliest span; ``cat``
    carries the phase taxonomy so Perfetto can filter by category, and
    span attributes land in ``args``.  ``pid`` and ``tid`` are the
    recording process id, which gives each pool worker its own lane.
    Load the JSON in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    spans = _snapshot(trace).get("spans", [])
    epoch = min((s["ts"] for s in spans), default=0.0)
    events = []
    for s in sorted(spans, key=lambda s: (s["ts"], s["id"])):
        pid = int(s.get("pid") or 0)
        events.append(
            {
                "name": str(s["name"]),
                "cat": str(s.get("cat") or "span"),
                "ph": "X",
                "ts": (s["ts"] - epoch) * 1e6,
                "dur": max(float(s["dur"]), 0.0) * 1e6,
                "pid": pid,
                "tid": pid,
                "args": {
                    str(k): _json_safe(v)
                    for k, v in (s.get("attrs") or {}).items()
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc) -> int:
    """Strict schema check for :func:`chrome_trace` output.

    Returns the number of events; raises :class:`ValueError` on any
    deviation from the trace-event contract this package emits
    (complete events only, finite non-negative microsecond times,
    integer pid/tid, JSON-scalar args).  The CI observability smoke
    job and the trace tests run generated documents through this — a
    clean pass is the "loads in Perfetto" assertion.
    """
    if not isinstance(doc, Mapping):
        raise ValueError(f"trace document must be a mapping, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no traceEvents list")
    if not events:
        raise ValueError("trace document has zero events")
    for i, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"event {i}: not a mapping")
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in event:
                raise ValueError(f"event {i}: missing {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"event {i}: bad name {event['name']!r}")
        if not isinstance(event["cat"], str) or not event["cat"]:
            raise ValueError(f"event {i}: bad cat {event['cat']!r}")
        if event["ph"] != "X":
            raise ValueError(f"event {i}: expected complete event, got {event['ph']!r}")
        for key in ("ts", "dur"):
            value = event[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"event {i}: non-numeric {key}")
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"event {i}: bad {key} {value!r}")
        for key in ("pid", "tid"):
            if isinstance(event[key], bool) or not isinstance(event[key], int):
                raise ValueError(f"event {i}: non-integer {key}")
        args = event["args"]
        if not isinstance(args, Mapping):
            raise ValueError(f"event {i}: args not a mapping")
        for k, v in args.items():
            if not isinstance(k, str):
                raise ValueError(f"event {i}: non-string arg key {k!r}")
            if v is not None and not isinstance(v, (bool, int, float, str)):
                raise ValueError(f"event {i}: non-scalar arg {k}={v!r}")
            if isinstance(v, float) and not math.isfinite(v):
                raise ValueError(f"event {i}: non-finite arg {k}={v!r}")
    return len(events)


def render_tree(trace: "SpanTracer | Mapping", limit: int | None = None) -> str:
    """Human-readable indented span tree (``kpj query --trace``).

    Children sort by start time under their parent; spans whose parent
    was evicted from the ring render as roots.  ``limit`` caps the
    number of lines (a truncation notice follows).
    """
    snapshot = _snapshot(trace)
    spans = sorted(snapshot.get("spans", []), key=lambda s: (s["ts"], s["id"]))
    if not spans:
        return "(no spans)"
    by_id = {s["id"]: s for s in spans}
    children: dict[int | None, list[dict]] = {}
    for s in spans:
        parent = s["parent"]
        if parent is not None and parent not in by_id:
            parent = None  # evicted parent: promote to root
        children.setdefault(parent, []).append(s)

    lines: list[str] = []
    truncated = [0]

    def emit(span: dict, depth: int) -> None:
        if limit is not None and len(lines) >= limit:
            truncated[0] += 1
            return
        attrs = span.get("attrs") or {}
        blob = "".join(
            f"  {k}={v:.4g}" if isinstance(v, float) else f"  {k}={v}"
            for k, v in attrs.items()
        )
        lines.append(
            f"{'  ' * depth}{span['name']:<{max(10, 12 - 2 * depth)}}"
            f" {span['dur'] * 1e3:9.3f}ms{blob}"
        )
        for child in children.get(span["id"], ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    if truncated[0] or (limit is not None and len(lines) >= limit):
        hidden = len(spans) - len(lines)
        if hidden > 0:
            lines.append(f"... {hidden} more spans")
    if snapshot.get("evicted"):
        lines.append(f"({snapshot['evicted']} spans evicted by the ring buffer)")
    return "\n".join(lines)


def folded_stacks(trace: "SpanTracer | Mapping") -> str:
    """Export a tracer (or snapshot) in folded-stack flamegraph format.

    One line per unique span ancestry — ``query;search;test_lb 1234``
    — where the value is the stack's aggregate **self time** in
    integer microseconds (span duration minus child durations), the
    number ``flamegraph.pl``, speedscope, and inferno all consume
    directly.  Spans whose parent was evicted from the ring buffer
    root their own stack, mirroring :func:`render_tree`.  Every span
    contributes at least 1µs so sub-microsecond leaves stay visible in
    the rendered graph; lines are sorted for deterministic output.
    """
    spans = sorted(
        _snapshot(trace).get("spans", []), key=lambda s: (s["ts"], s["id"])
    )
    if not spans:
        return ""
    by_id = {s["id"]: s for s in spans}
    child_time: dict[int, float] = {}
    for s in spans:
        parent = s["parent"]
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + max(
                float(s["dur"]), 0.0
            )

    def stack_of(span: dict) -> str:
        names: list[str] = []
        node: dict | None = span
        while node is not None:
            names.append(str(node["name"]).replace(";", "_"))
            parent = node["parent"]
            node = by_id.get(parent) if parent is not None else None
        return ";".join(reversed(names))

    totals: dict[str, int] = {}
    for s in spans:
        self_time = max(float(s["dur"]), 0.0) - child_time.get(s["id"], 0.0)
        micros = max(1, int(round(max(self_time, 0.0) * 1e6)))
        stack = stack_of(s)
        totals[stack] = totals.get(stack, 0) + micros
    return "\n".join(f"{stack} {value}" for stack, value in sorted(totals.items()))


def phase_durations(trace: "SpanTracer | Mapping") -> dict[str, float]:
    """Total seconds per *leaf* phase span, keyed by span name.

    Only ``cat == "phase"`` spans count — the leaves of the taxonomy
    (``prepare``/``comp_sp``/``spt_grow``/``test_lb``/``division``/…)
    — so container spans (``query``, ``search``, ``iterate``) never
    double-count their children.  This is what the perf-regression
    harness feeds its per-phase percentiles from.
    """
    totals: dict[str, float] = {}
    for s in _snapshot(trace).get("spans", ()):
        if s.get("cat") != "phase":
            continue
        name = s["name"]
        totals[name] = totals.get(name, 0.0) + max(float(s["dur"]), 0.0)
    return totals
