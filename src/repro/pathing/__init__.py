"""Shortest-path kernels: heaps, Dijkstra, A*, shortest-path trees.

Two substrates back the same entry points: the default pure-CPython
dict kernels, and the flat CSR kernels of :mod:`repro.pathing.flat`
selected via ``kernel="flat"`` or :func:`use_kernel`.
"""

from repro.pathing.astar import astar_path, bounded_astar_path
from repro.pathing.bidirectional import (
    bidirectional_distance,
    bidirectional_shortest_path,
)
from repro.pathing.dijkstra import (
    constrained_shortest_path,
    multi_source_distances,
    shortest_path,
    single_source_distances,
)
from repro.pathing.flat import (
    FlatScratch,
    flat_bounded_astar_path,
    flat_constrained_shortest_path,
    flat_multi_source_distances,
    flat_shortest_path,
    flat_single_source_distances,
    flat_spt_arrays,
)
from repro.pathing.heap import AddressableHeap, LazyHeap
from repro.pathing.kernels import KERNELS, active_kernel, use_kernel
from repro.pathing.spt import (
    PartialSPT,
    ShortestPathTree,
    build_partial_spt,
    build_spt_to_target,
)

__all__ = [
    "KERNELS",
    "active_kernel",
    "use_kernel",
    "FlatScratch",
    "flat_bounded_astar_path",
    "flat_constrained_shortest_path",
    "flat_multi_source_distances",
    "flat_shortest_path",
    "flat_single_source_distances",
    "flat_spt_arrays",
    "astar_path",
    "bounded_astar_path",
    "bidirectional_distance",
    "bidirectional_shortest_path",
    "constrained_shortest_path",
    "multi_source_distances",
    "shortest_path",
    "single_source_distances",
    "AddressableHeap",
    "LazyHeap",
    "PartialSPT",
    "ShortestPathTree",
    "build_partial_spt",
    "build_spt_to_target",
]
