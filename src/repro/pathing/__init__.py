"""Shortest-path kernels: heaps, Dijkstra, A*, shortest-path trees."""

from repro.pathing.astar import astar_path, bounded_astar_path
from repro.pathing.bidirectional import (
    bidirectional_distance,
    bidirectional_shortest_path,
)
from repro.pathing.dijkstra import (
    constrained_shortest_path,
    multi_source_distances,
    shortest_path,
    single_source_distances,
)
from repro.pathing.heap import AddressableHeap, LazyHeap
from repro.pathing.spt import (
    PartialSPT,
    ShortestPathTree,
    build_partial_spt,
    build_spt_to_target,
)

__all__ = [
    "astar_path",
    "bounded_astar_path",
    "bidirectional_distance",
    "bidirectional_shortest_path",
    "constrained_shortest_path",
    "multi_source_distances",
    "shortest_path",
    "single_source_distances",
    "AddressableHeap",
    "LazyHeap",
    "PartialSPT",
    "ShortestPathTree",
    "build_partial_spt",
    "build_spt_to_target",
]
