"""A* search with pluggable heuristics (goal-directed Dijkstra).

The paper uses A* in three places: ``CompSP`` (computing the shortest
path inside a subspace, Section 4.2), ``TestLB`` (bounded lower-bound
testing, Alg. 5), and the construction of the partial / incremental
shortest-path trees (Algs. 6–7).  The kernels here cover the first
two; the tree builders live in :mod:`repro.pathing.spt` and
:mod:`repro.core.spt_incremental` because they keep extra state.

A heuristic is any callable ``h(node) -> float`` that never
overestimates the remaining distance to the target.  With the landmark
bounds of :mod:`repro.landmarks.index` the heuristic is consistent, so
a node is settled at most once with its exact distance — the property
Lemma 5.1 relies on.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Collection

from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import reconstruct_path
from repro.pathing.kernels import resolve_kernel

__all__ = ["astar_path", "bounded_astar_path"]

INF = float("inf")


def astar_path(
    graph: DiGraph,
    source: int,
    target: int,
    heuristic: Callable[[int], float],
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
    kernel: str | None = None,
) -> tuple[tuple[int, ...], float] | None:
    """A* from ``source`` to ``target`` under subspace constraints.

    Semantics match
    :func:`repro.pathing.dijkstra.constrained_shortest_path` (same
    ``blocked`` / ``banned_first_hops`` / ``initial_distance``
    contract) but the queue is ordered by ``g + h``, shrinking the
    explored area when the heuristic is informative.  ``kernel``
    selects the substrate (``"dict"``/``"flat"``/``"native"``;
    ``None`` = ambient).
    """
    result = bounded_astar_path(
        graph,
        source,
        target,
        heuristic,
        bound=INF,
        blocked=blocked,
        banned_first_hops=banned_first_hops,
        initial_distance=initial_distance,
        stats=stats,
        kernel=kernel,
    )
    return result


def bounded_astar_path(
    graph: DiGraph,
    source: int,
    target: int,
    heuristic: Callable[[int], float],
    bound: float,
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
    info: dict | None = None,
    kernel: str | None = None,
) -> tuple[tuple[int, ...], float] | None:
    """A* that refuses to enqueue nodes whose ``g + h`` exceeds ``bound``.

    This is the paper's ``TestLB`` kernel (Alg. 5): with a finite
    ``bound`` ``τ`` it returns the constrained shortest path when its
    length is ``<= τ`` and ``None`` otherwise — and in the latter case
    it has only explored nodes with estimated distance ``<= τ``
    (Lemma 5.1).  With ``bound = inf`` it degenerates to plain A*
    (``CompSP``).

    When ``info`` is given, ``info["pruned"]`` is set to whether any
    relaxation was rejected *because of the bound*.  A failed search
    that pruned nothing explored everything reachable, proving the
    subspace empty — the iteratively-bounding driver uses this to
    retire dead subspaces instead of growing ``τ`` forever.

    With ``kernel="flat"`` the identical search runs over the graph's
    cached CSR arrays (:func:`repro.pathing.flat.flat_bounded_astar_path`)
    with pooled scratch buffers; results and ``info`` semantics match
    the dict substrate exactly.  ``kernel="native"`` runs the compiled
    counterpart (:func:`repro.pathing.native.native_bounded_astar_path`)
    — callable heuristics, which cannot cross the JIT boundary, fall
    back to the flat kernel with identical results.

    Returns ``(path, length)`` — lengths include ``initial_distance``
    — or ``None``.
    """
    chosen = resolve_kernel(kernel)
    if chosen == "native":
        from repro.graph.csr import shared_csr
        from repro.pathing.native import native_bounded_astar_path

        if stats is not None:
            stats.native_kernel_calls += 1
        return native_bounded_astar_path(
            shared_csr(graph),
            source,
            target,
            heuristic,
            bound,
            blocked=blocked,
            banned_first_hops=banned_first_hops,
            initial_distance=initial_distance,
            stats=stats,
            info=info,
        )
    if chosen == "flat":
        from repro.graph.csr import shared_csr
        from repro.pathing.flat import flat_bounded_astar_path

        if stats is not None:
            stats.flat_kernel_calls += 1
        return flat_bounded_astar_path(
            shared_csr(graph),
            source,
            target,
            heuristic,
            bound,
            blocked=blocked,
            banned_first_hops=banned_first_hops,
            initial_distance=initial_distance,
            stats=stats,
            info=info,
        )
    if stats is not None:
        stats.dict_kernel_calls += 1
    if info is not None:
        info["pruned"] = False
    if target == source:
        return (source,), initial_distance
    adj = graph.adjacency
    g: dict[int, float] = {source: initial_distance}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    blocked_set = blocked if isinstance(blocked, (set, frozenset)) else set(blocked)
    banned = (
        banned_first_hops
        if isinstance(banned_first_hops, (set, frozenset))
        else set(banned_first_hops)
    )
    start_f = initial_distance + heuristic(source)
    if start_f > bound:
        if info is not None:
            info["pruned"] = True
        return None
    heap: list[tuple[float, int]] = [(start_f, source)]
    if stats is not None:
        stats.heap_pushes += 1
    while heap:
        _, u = heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        if u in settled:
            continue
        settled.add(u)
        if stats is not None:
            stats.nodes_settled += 1
        du = g[u]
        if u == target:
            return reconstruct_path(parent, source, target), du
        at_source = u == source
        for v, w in adj[u]:
            if v in blocked_set or v in settled:
                continue
            if at_source and v in banned:
                continue
            nd = du + w
            if nd < g.get(v, INF):
                estimate = nd + heuristic(v)
                if estimate > bound:
                    if info is not None:
                        info["pruned"] = True
                    continue
                g[v] = nd
                parent[v] = u
                heappush(heap, (estimate, v))
                if stats is not None:
                    stats.edges_relaxed += 1
                    stats.heap_pushes += 1
    return None
