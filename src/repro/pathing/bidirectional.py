"""Bidirectional Dijkstra.

A classic point-to-point accelerator: run Dijkstra simultaneously from
the source (forward) and from the target (backward over reverse
edges), stopping when the frontiers' combined radius proves the best
meeting point optimal.  Not used inside the KPJ algorithms themselves
(their searches are one-to-category and prefix-constrained), but part
of the shortest-path substrate: it is the natural tool for the
pairwise distance probes used in dataset analytics, and serves as yet
another independent implementation to cross-check the unidirectional
kernels in tests.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import reconstruct_path

__all__ = ["bidirectional_shortest_path", "bidirectional_distance"]

INF = float("inf")


def bidirectional_distance(graph: DiGraph, source: int, target: int) -> float:
    """Shortest distance from ``source`` to ``target`` (``inf`` if none)."""
    found = bidirectional_shortest_path(graph, source, target)
    return found[1] if found is not None else INF


def bidirectional_shortest_path(
    graph: DiGraph, source: int, target: int
) -> tuple[tuple[int, ...], float] | None:
    """Shortest path via simultaneous forward/backward Dijkstra.

    Returns ``(path, length)`` or ``None`` when ``target`` is
    unreachable.  Terminates when the sum of the two frontier radii
    reaches the best path seen, the standard stopping criterion.
    """
    if source == target:
        return (source,), 0.0
    forward_adj = graph.adjacency
    backward_adj = graph.reverse_adjacency()

    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    parent_f: dict[int, int] = {}
    parent_b: dict[int, int] = {}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]

    best = INF
    meeting = -1

    def scan(heap, dist, parent, settled, other_dist, adjacency):
        nonlocal best, meeting
        d, u = heappop(heap)
        if u in settled:
            return d
        settled.add(u)
        for v, w in adjacency[u]:
            if v in settled:
                continue
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
            other = other_dist.get(v)
            if other is not None and nd + other < best:
                best = nd + other
                meeting = v
        return d

    radius_f = radius_b = 0.0
    while heap_f and heap_b:
        if heap_f[0][0] <= heap_b[0][0]:
            radius_f = scan(heap_f, dist_f, parent_f, settled_f, dist_b, forward_adj)
        else:
            radius_b = scan(heap_b, dist_b, parent_b, settled_b, dist_f, backward_adj)
        if radius_f + radius_b >= best:
            break
    if meeting < 0:
        return None
    forward_half = reconstruct_path(parent_f, source, meeting)
    backward_half = reconstruct_path(parent_b, target, meeting)
    return forward_half + tuple(reversed(backward_half[:-1])), best
