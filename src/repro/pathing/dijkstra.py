"""Dijkstra's algorithm and constrained variants.

These are the workhorse kernels.  By default they operate directly on
the raw adjacency lists of a :class:`~repro.graph.digraph.DiGraph`
(lists of ``(v, w)`` tuples) with ``heapq`` and lazy deletion — the
fastest arrangement available in pure CPython.  Every entry point also
accepts ``kernel="flat"`` to run the equivalent search from
:mod:`repro.pathing.flat` over the graph's cached CSR arrays instead
(scipy-accelerated where available), or ``kernel="native"`` for the
compiled tier of :mod:`repro.pathing.native` (numba-JIT when
installed, flat fallback otherwise); ``kernel=None`` defers to the
ambient selection of :mod:`repro.pathing.kernels`.

The constrained variant is what subspace search needs: a set of
*blocked* nodes (the prefix ``P_{s,u}`` minus its endpoint, which may
not be re-entered) and a set of *banned first hops* out of the start
node (the excluded edge set ``X_u`` of a subspace).

Cutoff semantics are **inclusive**: a node whose shortest distance is
exactly ``cutoff`` is settled and reported; only nodes strictly beyond
it keep ``inf``.  Both substrates share this boundary behaviour.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Collection, Sequence

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.pathing.kernels import resolve_kernel

__all__ = [
    "single_source_distances",
    "multi_source_distances",
    "shortest_path",
    "constrained_shortest_path",
    "reconstruct_path",
]

INF = float("inf")


def single_source_distances(
    graph: DiGraph, source: int, cutoff: float = INF, kernel: str | None = None
) -> list[float]:
    """Distances from ``source`` to every node (``inf`` if unreachable).

    ``cutoff`` stops the search once the frontier exceeds that value;
    nodes at distance exactly ``cutoff`` are still settled (inclusive
    boundary), nodes strictly beyond it keep distance ``inf``.
    ``kernel`` selects the search substrate
    (``"dict"``/``"flat"``/``"native"``; ``None`` = ambient).
    """
    return multi_source_distances(graph, (source,), cutoff=cutoff, kernel=kernel)


def multi_source_distances(
    graph: DiGraph,
    sources: Sequence[int],
    cutoff: float = INF,
    kernel: str | None = None,
) -> list[float]:
    """Distances from the nearest of ``sources`` to every node.

    Used to stratify query workloads (distance from each node to a
    destination category equals a multi-source run on the reverse
    graph) and to compute Eq. (2)'s per-landmark target distances.
    The ``cutoff`` boundary is inclusive, as in
    :func:`single_source_distances`.
    """
    chosen = resolve_kernel(kernel)
    if chosen == "native":
        from repro.graph.csr import shared_csr
        from repro.pathing.native import native_multi_source_distances

        return native_multi_source_distances(
            shared_csr(graph), sources, cutoff=cutoff
        ).tolist()
    if chosen == "flat":
        from repro.graph.csr import shared_csr
        from repro.pathing.flat import flat_multi_source_distances

        return flat_multi_source_distances(
            shared_csr(graph), sources, cutoff=cutoff
        ).tolist()
    adj = graph.adjacency
    dist = [INF] * graph.n
    heap: list[tuple[float, int]] = []
    for s in sources:
        if dist[s] > 0.0:
            dist[s] = 0.0
            heap.append((0.0, s))
    heap.sort()
    while heap:
        d, u = heappop(heap)
        if d > dist[u] or d > cutoff:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v] and nd <= cutoff:
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist


def shortest_path(
    graph: DiGraph, source: int, target: int, kernel: str | None = None
) -> tuple[tuple[int, ...], float] | None:
    """Shortest path from ``source`` to ``target``.

    Returns ``(path, length)`` or ``None`` if ``target`` is
    unreachable.  With ``kernel="flat"`` (or a ``"native"`` run that
    falls back to it) equal-length ties may resolve to a different
    (equally shortest) path than the dict kernel.
    """
    chosen = resolve_kernel(kernel)
    if chosen == "native":
        from repro.graph.csr import shared_csr
        from repro.pathing.native import native_shortest_path

        return native_shortest_path(shared_csr(graph), source, target)
    if chosen == "flat":
        from repro.graph.csr import shared_csr
        from repro.pathing.flat import flat_shortest_path

        return flat_shortest_path(shared_csr(graph), source, target)
    return constrained_shortest_path(graph, source, target, kernel="dict")


def constrained_shortest_path(
    graph: DiGraph,
    source: int,
    target: int,
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
    kernel: str | None = None,
) -> tuple[tuple[int, ...], float] | None:
    """Dijkstra from ``source`` to ``target`` under subspace constraints.

    Parameters
    ----------
    blocked:
        Nodes that may not appear on the path (the interior of a
        subspace prefix).  ``source`` and ``target`` must not be in it
        — a blocked endpoint is a caller bug (the search could only
        ever produce a constraint-violating path or a silent miss), so
        it raises :class:`~repro.exceptions.QueryError` instead of
        returning ``None``.
    banned_first_hops:
        Successors of ``source`` that may not be the first hop (the
        excluded edge set ``X_u``).
    initial_distance:
        Added to every reported length (the prefix weight
        ``w(P_{s,u})``), so returned lengths are full-path lengths.
    stats:
        Optional :class:`~repro.core.stats.SearchStats`; settled-node,
        relaxation, and kernel-dispatch counters are bumped when
        provided.
    kernel:
        Search substrate (``"dict"``/``"flat"``/``"native"``;
        ``None`` = ambient).

    Returns
    -------
    ``(path, length)`` where ``path`` starts at ``source`` and ends at
    ``target``, or ``None`` when no path survives the constraints.

    Raises
    ------
    QueryError
        If ``source`` or ``target`` is in ``blocked``.
    """
    if blocked:
        if source in blocked:
            raise QueryError(
                f"search source {source} is in the blocked set; a blocked "
                "endpoint can never lie on a constraint-satisfying path"
            )
        if target in blocked:
            raise QueryError(
                f"search target {target} is in the blocked set; a blocked "
                "endpoint can never lie on a constraint-satisfying path"
            )
    chosen = resolve_kernel(kernel)
    if chosen == "native":
        from repro.graph.csr import shared_csr
        from repro.pathing.native import native_constrained_shortest_path

        if stats is not None:
            stats.native_kernel_calls += 1
        return native_constrained_shortest_path(
            shared_csr(graph),
            source,
            target,
            blocked=blocked,
            banned_first_hops=banned_first_hops,
            initial_distance=initial_distance,
            stats=stats,
        )
    if chosen == "flat":
        from repro.graph.csr import shared_csr
        from repro.pathing.flat import flat_constrained_shortest_path

        if stats is not None:
            stats.flat_kernel_calls += 1
        return flat_constrained_shortest_path(
            shared_csr(graph),
            source,
            target,
            blocked=blocked,
            banned_first_hops=banned_first_hops,
            initial_distance=initial_distance,
            stats=stats,
        )
    if stats is not None:
        stats.dict_kernel_calls += 1
    if source == target:
        return (source,), initial_distance
    adj = graph.adjacency
    dist: dict[int, float] = {source: initial_distance}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    blocked_set = blocked if isinstance(blocked, (set, frozenset)) else set(blocked)
    banned = (
        banned_first_hops
        if isinstance(banned_first_hops, (set, frozenset))
        else set(banned_first_hops)
    )
    heap: list[tuple[float, int]] = [(initial_distance, source)]
    if stats is not None:
        stats.heap_pushes += 1
    while heap:
        d, u = heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        if u in settled:
            continue
        settled.add(u)
        if stats is not None:
            stats.nodes_settled += 1
        if u == target:
            return reconstruct_path(parent, source, target), d
        at_source = u == source
        for v, w in adj[u]:
            if v in blocked_set or v in settled:
                continue
            if at_source and v in banned:
                continue
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
                if stats is not None:
                    stats.edges_relaxed += 1
                    stats.heap_pushes += 1
    return None


def reconstruct_path(
    parent: dict[int, int], source: int, target: int
) -> tuple[int, ...]:
    """Walk a parent map back from ``target`` to ``source``."""
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return tuple(path)
