"""Flat-array search kernels over CSR graphs.

The dict kernels of :mod:`repro.pathing.dijkstra` and
:mod:`repro.pathing.astar` keep per-search state in dicts and iterate
adjacency as lists of tuples — the layout pure CPython likes best for
small, constrained searches.  The kernels here are their flat-array
counterparts, operating on :class:`~repro.graph.csr.CSRGraph`'s
``indptr``/``indices``/``weights`` arrays:

* The *unconstrained whole-graph* kernels — single-source /
  multi-source distances, point-to-point shortest path, and the full
  shortest-path-tree arrays — are delegated to
  ``scipy.sparse.csgraph.dijkstra`` when scipy is importable (a C
  inner loop over exactly the CSR arrays we already hold: several
  times faster than the dict kernel).  Without scipy they fall back to
  a python loop over the same flat arrays, so the flat kernel is
  always available and always returns identical distances.
* The *constrained* kernels (subspace searches with blocked nodes and
  banned first hops, plain and bounded A*) are python loops whose
  inner iteration indexes the flat adjacency arrays directly and
  whose per-node state lives in preallocated, generation-stamped
  scratch buffers (:class:`FlatScratch`) that are pooled on the
  snapshot and reused across calls — no per-call allocation
  proportional to ``n``, no dict hashing on the hot path.

Distance parity with the dict kernels is exact, not approximate: both
relax ``d[v] = d[u] + w`` along the same shortest paths in the same
order, so the floating-point sums coincide bit-for-bit (the property
tests assert this).  Cutoff semantics are shared too: a node whose
distance is exactly ``cutoff`` **is** settled (``<=``, not ``<``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Collection, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "HAVE_SCIPY",
    "FlatScratch",
    "acquire_scratch",
    "release_scratch",
    "StampedNodeMask",
    "acquire_node_mask",
    "release_node_mask",
    "acquire_inf_array",
    "release_inf_array",
    "flat_single_source_distances",
    "flat_multi_source_distances",
    "flat_shortest_path",
    "flat_spt_arrays",
    "flat_constrained_shortest_path",
    "flat_bounded_astar_path",
]

INF = float("inf")

try:  # scipy is optional: the python fallback keeps the kernels exact.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False


class FlatScratch:
    """Preallocated per-search buffers, reused across kernel calls.

    ``dist``/``parent`` entries are only meaningful where ``stamp``
    equals the current generation ``gen``; :meth:`begin` starts a new
    search by bumping the generation instead of clearing ``O(n)``
    memory.  Instances are pooled on the CSR snapshot
    (:func:`acquire_scratch` / :func:`release_scratch`), so nested or
    back-to-back searches on one graph never fight over buffers and
    never reallocate.
    """

    __slots__ = ("n", "dist", "parent", "stamp", "gen")

    def __init__(self, n: int) -> None:
        self.n = n
        self.dist: list[float] = [INF] * n
        self.parent: list[int] = [-1] * n
        self.stamp: list[int] = [0] * n
        self.gen = 0

    def begin(self) -> int:
        """Start a new search; returns the fresh generation tag."""
        self.gen += 1
        return self.gen

    def nbytes(self) -> int:
        """Nominal buffer footprint: 8 bytes per slot across the three
        ``O(n)`` lists (pointer-array cost; boxed-object overhead of
        the CPython floats/ints is deliberately excluded so the figure
        is deterministic).  Feeds the memory-telemetry pool gauges.
        """
        return self.n * 3 * 8


def acquire_scratch(csr: CSRGraph) -> FlatScratch:
    """Check a scratch buffer out of the snapshot's pool (or make one)."""
    pool = csr._scratch_pool
    if pool:
        return pool.pop()
    return FlatScratch(csr.n)


def release_scratch(csr: CSRGraph, scratch: FlatScratch) -> None:
    """Return a scratch buffer to the snapshot's pool for reuse."""
    csr._scratch_pool.append(scratch)


class StampedNodeMask:
    """A reusable node-set membership mask, generation-stamped.

    ``fill(nodes)`` makes exactly ``nodes`` members in ``O(|nodes|)``
    — no clearing, no per-call allocation — by bumping the generation
    and stamping the given ids.  The iterative-bounding engine keeps
    one per query for the subspace ``blocked`` sets: each of the
    thousands of ``TestLB`` calls re-stamps it from the prefix instead
    of materialising a fresh set.  The flat A* kernel recognises the
    type and reads ``stamp``/``gen`` directly in its inner loop.
    """

    __slots__ = ("stamp", "gen")

    def __init__(self, n: int) -> None:
        self.stamp: list[int] = [0] * n
        self.gen = 0

    def fill(self, nodes) -> "StampedNodeMask":
        """Reset membership to exactly ``nodes``; returns self."""
        self.gen = gen = self.gen + 1
        stamp = self.stamp
        for v in nodes:
            stamp[v] = gen
        return self

    def __contains__(self, v: int) -> bool:
        return self.stamp[v] == self.gen


def acquire_node_mask(csr: CSRGraph) -> StampedNodeMask:
    """Check a node mask out of the snapshot's pool (or make one)."""
    pool = csr._mask_pool
    if pool:
        return pool.pop()
    return StampedNodeMask(csr.n)


def release_node_mask(csr: CSRGraph, mask: StampedNodeMask) -> None:
    """Return a node mask to the snapshot's pool for reuse."""
    csr._mask_pool.append(mask)


def acquire_inf_array(csr: CSRGraph) -> list[float]:
    """An all-``inf`` float list of length ``n`` from the pool.

    The incremental-SPT engine uses one as its dense heuristic vector
    (settled nodes carry their exact distance, everything else stays
    ``inf`` = "outside the tree, prune").  The caller must return it
    via :func:`release_inf_array` with the list of indices it wrote,
    which restores the all-``inf`` invariant in ``O(|touched|)``.
    """
    pool = csr._inf_pool
    if pool:
        return pool.pop()
    return [INF] * csr.n


def release_inf_array(csr: CSRGraph, arr: list[float], touched) -> None:
    """Reset ``touched`` entries to ``inf`` and return ``arr`` to the pool."""
    for v in touched:
        arr[v] = INF
    csr._inf_pool.append(arr)


# ----------------------------------------------------------------------
# Whole-graph kernels (scipy-accelerated)
# ----------------------------------------------------------------------
def _sparse_matrix(csr: CSRGraph):
    """The scipy ``csr_matrix`` sharing the snapshot's arrays, cached."""
    if csr._spmat is None:
        mat = _csr_matrix(
            (csr.weights, csr.indices, csr.indptr), shape=(csr.n, csr.n)
        )
        object.__setattr__(csr, "_spmat", mat)
    return csr._spmat


def flat_single_source_distances(
    csr: CSRGraph, source: int, cutoff: float = INF
) -> np.ndarray:
    """Distances from ``source`` to every node as a ``float64`` array.

    Nodes farther than ``cutoff`` keep ``inf``; a node at exactly
    ``cutoff`` is settled (inclusive boundary, matching the dict
    kernel).
    """
    return flat_multi_source_distances(csr, (source,), cutoff=cutoff)


def flat_multi_source_distances(
    csr: CSRGraph, sources: Sequence[int], cutoff: float = INF
) -> np.ndarray:
    """Distances from the nearest of ``sources`` to every node."""
    srcs = sorted(set(int(s) for s in sources))
    if HAVE_SCIPY and csr.m > 0:
        return _scipy_dijkstra(
            _sparse_matrix(csr),
            directed=True,
            indices=srcs if len(srcs) > 1 else srcs[0],
            min_only=len(srcs) > 1,
            limit=cutoff,
        )
    return _py_multi_source(csr, srcs, cutoff)


def _py_multi_source(
    csr: CSRGraph, sources: Sequence[int], cutoff: float
) -> np.ndarray:
    """Fallback python loop over the flat arrays (scipy-free)."""
    indptr, heads, wts = csr.adjacency_lists()
    dist = np.full(csr.n, INF)
    heap: list[tuple[float, int]] = []
    for s in sources:
        if dist[s] > 0.0:
            dist[s] = 0.0
            heap.append((0.0, s))
    heap.sort()
    dl = dist.tolist()
    while heap:
        d, u = heappop(heap)
        if d > dl[u] or d > cutoff:
            continue
        for i in range(indptr[u], indptr[u + 1]):
            v = heads[i]
            nd = d + wts[i]
            if nd < dl[v] and nd <= cutoff:
                dl[v] = nd
                heappush(heap, (nd, v))
    return np.asarray(dl)


def flat_shortest_path(
    csr: CSRGraph, source: int, target: int
) -> tuple[tuple[int, ...], float] | None:
    """Shortest path ``source -> target``; ``None`` if unreachable.

    Equal-length ties may be broken differently from the dict kernel
    (both answers are shortest paths of identical length).
    """
    if source == target:
        return (source,), 0.0
    if HAVE_SCIPY and csr.m > 0:
        dist, pred = _scipy_dijkstra(
            _sparse_matrix(csr),
            directed=True,
            indices=source,
            return_predecessors=True,
        )
        if not np.isfinite(dist[target]):
            return None
        path = [target]
        node = target
        while node != source:
            node = int(pred[node])
            path.append(node)
        path.reverse()
        return tuple(path), float(dist[target])
    return flat_constrained_shortest_path(csr, source, target)


def flat_spt_arrays(
    csr: CSRGraph, target: int
) -> tuple[list[float], list[int]]:
    """Full shortest-path-tree arrays toward ``target``.

    Runs over the cached reverse orientation of ``csr`` and returns
    ``(dist, next_hop)`` lists: ``dist[v]`` is the exact distance from
    ``v`` to ``target`` (``inf`` if it cannot reach it) and
    ``next_hop[v]`` is ``v``'s successor toward ``target`` (``-1`` at
    the target and at unreachable nodes) — the contract of
    :class:`repro.pathing.spt.ShortestPathTree`.
    """
    rev = csr.reverse()
    if HAVE_SCIPY and rev.m > 0:
        dist, pred = _scipy_dijkstra(
            _sparse_matrix(rev),
            directed=True,
            indices=target,
            return_predecessors=True,
        )
        next_hop = np.where(pred < 0, -1, pred)
        return dist.tolist(), next_hop.astype(np.int64).tolist()
    # Fallback: python Dijkstra over the reverse flat arrays.
    indptr, heads, wts = rev.adjacency_lists()
    n = rev.n
    dist_l = [INF] * n
    next_hop_l = [-1] * n
    dist_l[target] = 0.0
    heap: list[tuple[float, int]] = [(0.0, target)]
    while heap:
        d, u = heappop(heap)
        if d > dist_l[u]:
            continue
        for i in range(indptr[u], indptr[u + 1]):
            v = heads[i]
            nd = d + wts[i]
            if nd < dist_l[v]:
                dist_l[v] = nd
                next_hop_l[v] = u
                heappush(heap, (nd, v))
    return dist_l, next_hop_l


# ----------------------------------------------------------------------
# Constrained kernels (python loop, flat adjacency, pooled scratch)
# ----------------------------------------------------------------------
def flat_constrained_shortest_path(
    csr: CSRGraph,
    source: int,
    target: int,
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
) -> tuple[tuple[int, ...], float] | None:
    """Constrained Dijkstra on the flat arrays.

    Same contract as
    :func:`repro.pathing.dijkstra.constrained_shortest_path` (blocked
    nodes, banned first hops, ``initial_distance`` added to reported
    lengths); the inner loop indexes the CSR adjacency directly and
    per-node state lives in pooled scratch buffers.
    """
    return flat_bounded_astar_path(
        csr,
        source,
        target,
        None,
        INF,
        blocked=blocked,
        banned_first_hops=banned_first_hops,
        initial_distance=initial_distance,
        stats=stats,
    )


def flat_bounded_astar_path(
    csr: CSRGraph,
    source: int,
    target: int,
    heuristic: Callable[[int], float] | Sequence[float] | None,
    bound: float,
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
    info: dict | None = None,
    collect_dists: bool = False,
) -> tuple[tuple[int, ...], float] | None:
    """Bounded A* (the ``TestLB`` kernel) on the flat arrays.

    Same contract as :func:`repro.pathing.astar.bounded_astar_path`;
    ``heuristic=None`` means the zero heuristic (plain Dijkstra).
    ``info["pruned"]`` reports whether the ``bound`` rejected any
    relaxation, exactly like the dict kernel.

    Two flat-engine extensions keep the per-call setup O(1):

    * ``heuristic`` may be a *dense sequence* — ``h[v]`` is then read
      by index instead of through a Python call per relaxation (this
      is how the iterative-bounding engine supplies the precomputed
      landmark bound vector, or the incremental tree's distance
      array);
    * ``blocked`` is any iterable of node ids (a subspace prefix works
      as-is, head included): the nodes are pre-stamped "settled" in
      the pooled scratch, ``O(|blocked|)`` setup with **zero** per-edge
      membership cost, and the search source is re-opened afterwards.

    With ``collect_dists=True`` (and ``info`` given) a successful
    search additionally reports ``info["tail_dists"]`` — the settled
    distance of every path node, aligned with the returned path.
    Entry ``i`` is exactly the prefix weight of ``path[: i + 1]``
    (the same left-to-right float accumulation a caller would redo
    with per-edge weight lookups), which lets the iterative-bounding
    engine divide subspaces without touching adjacency again.
    """
    if info is not None:
        info["pruned"] = False
        if collect_dists:
            info["tail_dists"] = None
    if target == source:
        if info is not None and collect_dists:
            info["tail_dists"] = [initial_distance]
        return (source,), initial_distance
    h = heuristic
    if h is None:
        h_arr = None
    elif callable(h):
        h_arr = None
    else:
        h_arr = h
        h = None
    if h_arr is not None:
        start_f = initial_distance + h_arr[source]
    elif h is not None:
        start_f = initial_distance + h(source)
    else:
        start_f = initial_distance
    if start_f > bound:
        if info is not None:
            info["pruned"] = True
        return None
    rows = csr.row_lists()
    scratch = acquire_scratch(csr)
    settled_count = 0
    relaxed_count = 0
    pop_count = 0
    bound_pruned = False  # batched into info["pruned"] in the finally
    try:
        gen = scratch.begin()
        dist = scratch.dist
        parent = scratch.parent
        stamp = scratch.stamp
        settled_gen = -gen  # stamp value marking "settled this search"
        banned = (
            banned_first_hops
            if isinstance(banned_first_hops, (set, frozenset, StampedNodeMask))
            else set(banned_first_hops)
        )
        # Blocked nodes are pre-stamped "settled": the relaxation loop's
        # existing settled check then rejects them for free, with no
        # per-edge membership test.  They are never pushed, so never
        # popped or counted.  Stamping the source back to ``gen``
        # afterwards makes passing a whole path prefix (head included)
        # equivalent to blocking ``prefix[:-1]``.
        for b in blocked:
            stamp[b] = settled_gen
        dist[source] = initial_distance
        stamp[source] = gen
        heap: list[tuple[float, int]] = [(start_f, source)]
        while heap:
            _, u = heappop(heap)
            pop_count += 1
            if stamp[u] == settled_gen:
                continue
            stamp[u] = settled_gen
            settled_count += 1
            du = dist[u]
            if u == target:
                path = [target]
                node = target
                while node != source:
                    node = parent[node]
                    path.append(node)
                path.reverse()
                if info is not None and collect_dists:
                    info["tail_dists"] = [dist[x] for x in path]
                return tuple(path), du
            at_source = u == source
            for v, w in rows[u]:
                st = stamp[v]
                if st == settled_gen:
                    continue
                if at_source and v in banned:
                    continue
                nd = du + w
                if st != gen or nd < dist[v]:
                    if h_arr is not None:
                        estimate = nd + h_arr[v]
                    elif h is not None:
                        estimate = nd + h(v)
                    else:
                        estimate = nd
                    if estimate > bound:
                        bound_pruned = True
                        continue
                    dist[v] = nd
                    parent[v] = u
                    stamp[v] = gen
                    heappush(heap, (estimate, v))
                    relaxed_count += 1
        return None
    finally:
        release_scratch(csr, scratch)
        if info is not None and bound_pruned:
            info["pruned"] = True
        if stats is not None:
            stats.nodes_settled += settled_count
            stats.edges_relaxed += relaxed_count
            # Every push is either the initial source push or one of
            # the counted relaxations, so pushes = relaxed + 1 here.
            stats.heap_pushes += relaxed_count + 1
            stats.heap_pops += pop_count
