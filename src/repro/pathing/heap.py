"""Priority queues used by the search algorithms.

Two implementations:

* :class:`LazyHeap` — a plain binary heap with *lazy deletion*: stale
  entries are skipped on pop.  This is the fastest decrease-key
  strategy in CPython for Dijkstra/A* style workloads and is what the
  search kernels use.
* :class:`AddressableHeap` — a binary heap with an explicit position
  index supporting true ``decrease_key`` and ``remove``.  The subspace
  priority queue of the best-first algorithms uses it, because those
  entries are re-keyed (a subspace is re-inserted with a tightened
  bound) and the paper's analysis counts each subspace at most twice.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generic, Hashable, TypeVar

__all__ = ["LazyHeap", "AddressableHeap"]

K = TypeVar("K", bound=Hashable)


class LazyHeap:
    """Binary min-heap of ``(priority, item)`` with lazy decrease-key.

    ``push`` may insert the same item several times with different
    priorities; ``pop`` returns each item at most once, at its smallest
    priority, by consulting a ``settled`` set maintained by the caller
    — or, with :meth:`pop_unique`, an internal seen-set.
    """

    __slots__ = ("_heap", "_seen")

    def __init__(self) -> None:
        self._heap: list[tuple[float, Any]] = []
        self._seen: set[Any] = set()

    def push(self, priority: float, item: Any) -> None:
        """Insert ``item`` with the given priority (duplicates allowed)."""
        heappush(self._heap, (priority, item))

    def pop(self) -> tuple[float, Any]:
        """Pop the smallest entry, including stale duplicates."""
        return heappop(self._heap)

    def pop_unique(self) -> tuple[float, Any] | None:
        """Pop the smallest entry whose item has not been popped before.

        Returns ``None`` when only stale entries remain.
        """
        heap = self._heap
        seen = self._seen
        while heap:
            priority, item = heappop(heap)
            if item not in seen:
                seen.add(item)
                return priority, item
        return None

    def peek(self) -> tuple[float, Any] | None:
        """Smallest entry without removing it (may be stale)."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class AddressableHeap(Generic[K]):
    """Binary min-heap with position tracking per key.

    Supports ``push`` (insert or update), ``decrease_key``, ``remove``
    and ``pop``; every operation is ``O(log n)``.  Keys must be
    hashable and unique within the heap.
    """

    __slots__ = ("_keys", "_priorities", "_positions")

    def __init__(self) -> None:
        self._keys: list[K] = []
        self._priorities: list[float] = []
        self._positions: dict[K, int] = {}

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def push(self, key: K, priority: float) -> None:
        """Insert ``key``, or update its priority if already present."""
        pos = self._positions.get(key)
        if pos is None:
            self._keys.append(key)
            self._priorities.append(priority)
            self._positions[key] = len(self._keys) - 1
            self._sift_up(len(self._keys) - 1)
            return
        old = self._priorities[pos]
        self._priorities[pos] = priority
        if priority < old:
            self._sift_up(pos)
        elif priority > old:
            self._sift_down(pos)

    def decrease_key(self, key: K, priority: float) -> bool:
        """Lower ``key``'s priority; no-op (returns False) if not lower."""
        pos = self._positions[key]
        if priority >= self._priorities[pos]:
            return False
        self._priorities[pos] = priority
        self._sift_up(pos)
        return True

    def pop(self) -> tuple[K, float]:
        """Remove and return the ``(key, priority)`` with smallest priority."""
        if not self._keys:
            raise IndexError("pop from empty heap")
        key = self._keys[0]
        priority = self._priorities[0]
        self._delete_at(0)
        return key, priority

    def peek(self) -> tuple[K, float]:
        """Smallest ``(key, priority)`` without removal."""
        if not self._keys:
            raise IndexError("peek on empty heap")
        return self._keys[0], self._priorities[0]

    def remove(self, key: K) -> float:
        """Remove an arbitrary key, returning its priority."""
        pos = self._positions[key]
        priority = self._priorities[pos]
        self._delete_at(pos)
        return priority

    def priority_of(self, key: K) -> float:
        """Current priority of ``key`` (KeyError if absent)."""
        return self._priorities[self._positions[key]]

    def __contains__(self, key: K) -> bool:
        return key in self._positions

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _delete_at(self, pos: int) -> None:
        keys, prios, positions = self._keys, self._priorities, self._positions
        last = len(keys) - 1
        del positions[keys[pos]]
        if pos != last:
            keys[pos] = keys[last]
            prios[pos] = prios[last]
            positions[keys[pos]] = pos
        keys.pop()
        prios.pop()
        if pos < len(keys):
            self._sift_down(pos)
            self._sift_up(pos)

    def _sift_up(self, pos: int) -> None:
        keys, prios, positions = self._keys, self._priorities, self._positions
        key, prio = keys[pos], prios[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if prios[parent] <= prio:
                break
            keys[pos] = keys[parent]
            prios[pos] = prios[parent]
            positions[keys[pos]] = pos
            pos = parent
        keys[pos] = key
        prios[pos] = prio
        positions[key] = pos

    def _sift_down(self, pos: int) -> None:
        keys, prios, positions = self._keys, self._priorities, self._positions
        size = len(keys)
        key, prio = keys[pos], prios[pos]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and prios[right] < prios[child]:
                child = right
            if prios[child] >= prio:
                break
            keys[pos] = keys[child]
            prios[pos] = prios[child]
            positions[keys[pos]] = pos
            pos = child
        keys[pos] = key
        prios[pos] = prio
        positions[key] = pos

    def check_invariant(self) -> bool:
        """Verify the heap property and index consistency (for tests)."""
        prios = self._priorities
        for pos in range(1, len(prios)):
            if prios[(pos - 1) >> 1] > prios[pos]:
                return False
        return all(
            self._keys[pos] == key and 0 <= pos < len(self._keys)
            for key, pos in self._positions.items()
        ) and len(self._positions) == len(self._keys)
