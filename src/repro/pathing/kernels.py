"""Kernel selection: dict-based vs flat-array search substrates.

Every search entry point (``single_source_distances``,
``shortest_path``, ``constrained_shortest_path``, the A* kernels, the
SPT builders) accepts ``kernel="dict"`` or ``kernel="flat"``.  Passing
``None`` (the default) defers to the *ambient* kernel, a context
variable that :class:`~repro.core.kpj.KPJSolver` sets for the duration
of a query — which is how every registry algorithm, ``da`` through
``iter-bound-spti``, runs on either substrate without threading a
parameter through each implementation.

``dict`` is the pure-CPython arrangement (dict state, tuple adjacency)
and remains the default; ``flat`` routes to
:mod:`repro.pathing.flat`'s CSR kernels (scipy-accelerated where
available); ``native`` routes to :mod:`repro.pathing.native`'s
compiled tier — numba-JIT kernels over the same CSR buffers plus the
batched multi-source ``CompSP`` driver — degrading gracefully to the
flat kernels when numba is absent.  The active choice is recorded per
search in :class:`~repro.core.stats.SearchStats` dispatch counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["KERNELS", "DEFAULT_KERNEL", "active_kernel", "resolve_kernel", "use_kernel"]

#: Names accepted by every ``kernel=`` parameter.
KERNELS = ("dict", "flat", "native")

DEFAULT_KERNEL = "dict"

_ACTIVE: ContextVar[str] = ContextVar("repro_kernel", default=DEFAULT_KERNEL)


def active_kernel() -> str:
    """The ambient kernel used when a call site passes ``kernel=None``."""
    return _ACTIVE.get()


def resolve_kernel(kernel: str | None) -> str:
    """Validate an explicit choice or fall back to the ambient kernel.

    Raises
    ------
    ValueError
        For a name outside :data:`KERNELS`.
    """
    if kernel is None:
        return _ACTIVE.get()
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose one of: {', '.join(KERNELS)}"
        )
    return kernel


@contextmanager
def use_kernel(kernel: str):
    """Set the ambient kernel for the dynamic extent of a ``with`` block."""
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose one of: {', '.join(KERNELS)}"
        )
    token = _ACTIVE.set(kernel)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
