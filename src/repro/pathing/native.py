"""Compiled ``native`` kernel tier: numba-JIT searches over CSR buffers.

The flat kernels (:mod:`repro.pathing.flat`) already run over
:class:`~repro.graph.csr.CSRGraph` arrays, but their inner loops are
interpreted CPython.  This module compiles the same loops with numba's
``@njit`` — single-source Dijkstra, the constrained/bounded ``TestLB``
A* with tail-distance reporting, the incremental-SPT settle step — and
adds the **batched multi-source CompSP** entry point
(:func:`native_batch_compsp` / :meth:`NativeIncrementalSPT.batch_test`)
that runs a whole speculative run of per-subspace searches in one
kernel call for the iteratively bounding driver.

Three operating modes, decided once at import:

* **numba present** — every kernel below is JIT-compiled
  (``cache=True``, so the compilation artefacts persist in numba's
  cache directory between processes).  First-call compilation cost is
  paid during solver construction via :func:`warmup_jit`, never inside
  a query phase.
* **numba absent** (the graceful fallback) — ``@njit`` becomes the
  identity decorator.  The *unconstrained* wrappers then delegate to
  the flat kernels (scipy-accelerated where available) rather than
  interpret ndarray loops, while the batched CompSP driver keeps
  running with flat leaves — so ``kernel="native"`` is always
  available and always returns the same paths, merely without the
  compiled speedup.
* **forced arrays** (``REPRO_NATIVE_ARRAYS=1`` or tests toggling
  ``_FORCE_ARRAYS``) — the ndarray kernels run *interpreted*.  Slow,
  but it lets the full correctness net exercise the exact kernel code
  paths (including the batched mega-kernel) on machines without numba.

Parity with the dict/flat kernels is exact: the array heap orders
entries by ``(priority, node)`` — precisely ``heapq``'s tuple order —
edges relax in CSR order, and distances accumulate with the same
``float64`` sums, so returned paths are byte-identical (the property
tests and fuzz corpus assert this across all three kernels).
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Collection, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.pathing.flat import (
    flat_bounded_astar_path,
    flat_multi_source_distances,
    flat_shortest_path,
    flat_spt_arrays,
)

__all__ = [
    "HAVE_NUMBA",
    "use_array_engine",
    "warmup_jit",
    "NativeScratch",
    "acquire_native_scratch",
    "release_native_scratch",
    "CompSPOutcome",
    "native_multi_source_distances",
    "native_shortest_path",
    "native_constrained_shortest_path",
    "native_bounded_astar_path",
    "native_spt_arrays",
    "native_batch_compsp",
    "NativeIncrementalSPT",
]

INF = float("inf")

try:  # numba is optional; REPRO_DISABLE_NUMBA forces the fallback.
    if os.environ.get("REPRO_DISABLE_NUMBA"):
        raise ImportError("numba disabled via REPRO_DISABLE_NUMBA")
    from numba import njit as _numba_njit

    HAVE_NUMBA = True
except ImportError:
    _numba_njit = None
    HAVE_NUMBA = False

#: Test hook: run the ndarray kernels interpreted even without numba,
#: so the exact compiled code paths stay testable everywhere.
_FORCE_ARRAYS = bool(os.environ.get("REPRO_NATIVE_ARRAYS"))


def use_array_engine() -> bool:
    """Whether the ndarray kernels (compiled or forced) should run."""
    return HAVE_NUMBA or _FORCE_ARRAYS


def njit(func):
    """``numba.njit(cache=True)`` — or the identity without numba."""
    if HAVE_NUMBA:
        return _numba_njit(cache=True)(func)
    return func


# ----------------------------------------------------------------------
# Array binary heap: heapq's (priority, node) tuple order, no tuples.
# ----------------------------------------------------------------------
@njit
def _heap_push(hp, hn, hs, prio, node):
    i = hs[0]
    hp[i] = prio
    hn[i] = node
    hs[0] = i + 1
    while i > 0:
        p = (i - 1) >> 1
        pp = hp[p]
        pn = hn[p]
        cp = hp[i]
        cn = hn[i]
        if cp < pp or (cp == pp and cn < pn):
            hp[i] = pp
            hn[i] = pn
            hp[p] = cp
            hn[p] = cn
            i = p
        else:
            break


@njit
def _heap_pop(hp, hn, hs):
    size = hs[0] - 1
    top_p = hp[0]
    top_n = hn[0]
    hp[0] = hp[size]
    hn[0] = hn[size]
    hs[0] = size
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        m = left
        right = left + 1
        if right < size and (
            hp[right] < hp[left] or (hp[right] == hp[left] and hn[right] < hn[left])
        ):
            m = right
        if hp[m] < hp[i] or (hp[m] == hp[i] and hn[m] < hn[i]):
            tp = hp[i]
            tn = hn[i]
            hp[i] = hp[m]
            hn[i] = hn[m]
            hp[m] = tp
            hn[m] = tn
            i = m
        else:
            break
    return top_p, top_n


# ----------------------------------------------------------------------
# Leaf kernels
# ----------------------------------------------------------------------
@njit
def _sssp_kernel(indptr, indices, weights, sources, cutoff, dist, hp, hn, hs):
    """Multi-source Dijkstra; mirrors ``flat._py_multi_source`` exactly
    (inclusive ``cutoff`` boundary, lazy deletion, no settle stamp)."""
    hs[0] = 0
    for i in range(sources.shape[0]):
        s = sources[i]
        if dist[s] > 0.0:
            dist[s] = 0.0
            _heap_push(hp, hn, hs, 0.0, s)
    while hs[0] > 0:
        d, u = _heap_pop(hp, hn, hs)
        if d > dist[u] or d > cutoff:
            continue
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v] and nd <= cutoff:
                dist[v] = nd
                _heap_push(hp, hn, hs, nd, v)


@njit
def _spt_kernel(indptr, indices, weights, target, dist, next_hop, hp, hn, hs):
    """Shortest-path-tree arrays over (reverse) CSR; mirrors the flat
    python fallback of ``flat_spt_arrays``."""
    hs[0] = 0
    dist[target] = 0.0
    _heap_push(hp, hn, hs, 0.0, target)
    while hs[0] > 0:
        d, u = _heap_pop(hp, hn, hs)
        if d > dist[u]:
            continue
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                next_hop[v] = u
                _heap_push(hp, hn, hs, nd, v)


@njit
def _bounded_astar_kernel(
    indptr,
    indices,
    weights,
    source,
    target,
    h,
    use_h,
    bound,
    init_dist,
    blocked,
    banned,
    dist,
    parent,
    stamp,
    genarr,
    hp,
    hn,
    hs,
    path_out,
    dists_out,
    collect,
    counters,
):
    """Bounded A* (``TestLB``), mirroring ``flat_bounded_astar_path``.

    Returns ``(path_len, pruned, length)``: ``path_len == 0`` means no
    path within ``bound`` (with ``pruned`` reporting whether the bound
    rejected any relaxation).  On a hit the node sequence is written to
    ``path_out[:path_len]`` and, with ``collect``, the settled prefix
    distances to ``dists_out[:path_len]``.  Work totals are added into
    ``counters``: settled → ``[0]``, relaxed → ``[1]``, heap pushes →
    ``[2]``, heap pops → ``[3]`` (the same sites the dict and flat
    kernels count, so the totals are cross-kernel parity-exact).
    """
    if target == source:
        path_out[0] = source
        if collect:
            dists_out[0] = init_dist
        return 1, False, init_dist
    if use_h:
        start_f = init_dist + h[source]
    else:
        start_f = init_dist
    if start_f > bound:
        return 0, True, 0.0
    gen = genarr[0] + 1
    genarr[0] = gen
    settled_tag = -gen
    pruned = False
    for i in range(blocked.shape[0]):
        stamp[blocked[i]] = settled_tag
    dist[source] = init_dist
    stamp[source] = gen
    hs[0] = 0
    _heap_push(hp, hn, hs, start_f, source)
    settled = 0
    relaxed = 0
    pushes = 1
    pops = 0
    while hs[0] > 0:
        _f, u = _heap_pop(hp, hn, hs)
        pops += 1
        if stamp[u] == settled_tag:
            continue
        stamp[u] = settled_tag
        settled += 1
        du = dist[u]
        if u == target:
            plen = 0
            node = target
            path_out[plen] = node
            plen += 1
            while node != source:
                node = parent[node]
                path_out[plen] = node
                plen += 1
            lo = 0
            hi = plen - 1
            while lo < hi:
                tmp = path_out[lo]
                path_out[lo] = path_out[hi]
                path_out[hi] = tmp
                lo += 1
                hi -= 1
            if collect:
                for i in range(plen):
                    dists_out[i] = dist[path_out[i]]
            counters[0] += settled
            counters[1] += relaxed
            counters[2] += pushes
            counters[3] += pops
            return plen, pruned, du
        at_source = u == source
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            st = stamp[v]
            if st == settled_tag:
                continue
            if at_source:
                is_banned = False
                for j in range(banned.shape[0]):
                    if banned[j] == v:
                        is_banned = True
                        break
                if is_banned:
                    continue
            nd = du + weights[e]
            if st != gen or nd < dist[v]:
                if use_h:
                    estimate = nd + h[v]
                else:
                    estimate = nd
                if estimate > bound:
                    pruned = True
                    continue
                dist[v] = nd
                parent[v] = u
                stamp[v] = gen
                _heap_push(hp, hn, hs, estimate, v)
                relaxed += 1
                pushes += 1
    counters[0] += settled
    counters[1] += relaxed
    counters[2] += pushes
    counters[3] += pops
    return 0, pruned, 0.0


@njit
def _spti_settle_kernel(
    indptr,
    indices,
    weights,
    tb,
    use_tb,
    target,
    tau,
    dist,
    parent,
    stamp,
    h,
    hp,
    hn,
    hs,
    state,
    settled_order,
    dest_mask,
    dest_nodes,
    dest_dists,
):
    """Alg. 7's settle loop, mirroring ``FlatIncrementalSPT._settle_until``.

    ``state`` is ``[gen, n_settled, n_dest, dest_dirty, heap_pushes,
    heap_pops, _, _]`` (pushes/pops are lifetime totals over the
    tree's queue, the same sites the dict and flat trees count);
    returns ``(found, relaxed)`` where ``found`` is the settled
    ``target`` (or ``-1``).  Settling writes exact distances into
    ``h`` in place — the vector doubles as the reverse search's
    heuristic.
    """
    gen = state[0]
    settled_tag = -gen
    n_settled = state[1]
    n_dest = state[2]
    relaxed = 0
    pops = 0
    found = -1
    while hs[0] > 0:
        if hp[0] > tau:
            break
        _key, u = _heap_pop(hp, hn, hs)
        pops += 1
        if stamp[u] == settled_tag:
            continue
        du = dist[u]
        stamp[u] = settled_tag
        h[u] = du
        settled_order[n_settled] = u
        n_settled += 1
        if dest_mask[u]:
            dest_nodes[n_dest] = u
            dest_dists[n_dest] = du
            n_dest += 1
            state[3] = 1
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            st = stamp[v]
            if st == settled_tag:
                continue
            nd = du + weights[e]
            if st != gen or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                stamp[v] = gen
                if use_tb:
                    _heap_push(hp, hn, hs, nd + tb[v], v)
                else:
                    _heap_push(hp, hn, hs, nd, v)
                relaxed += 1
        if u == target:
            found = u
            break
    state[1] = n_settled
    state[2] = n_dest
    state[4] += relaxed  # pushes pair 1:1 with relaxations here
    state[5] += pops
    return found, relaxed


@njit
def _batch_test_kernel(
    # forward graph — incremental-tree growth
    f_indptr,
    f_indices,
    f_weights,
    tb,
    use_tb,
    t_dist,
    t_parent,
    t_stamp,
    h,
    t_hp,
    t_hn,
    t_hs,
    t_state,
    settled_order,
    dest_mask,
    dest_nodes,
    dest_dists,
    # reverse graph — the TestLB searches
    r_indptr,
    r_indices,
    r_weights,
    goal,
    s_dist,
    s_parent,
    s_stamp,
    s_gen,
    s_hp,
    s_hn,
    s_hs,
    # the speculative request run (one Alg. 8 division round)
    srcs,
    taus,
    init_dists,
    blocked_flat,
    blocked_ptr,
    banned_flat,
    banned_ptr,
    # outputs
    statuses,
    pruned_out,
    lengths,
    path_flat,
    path_ptr,
    dists_flat,
    counters,
):
    """Batched multi-source ``CompSP``: grow-then-test per request, all
    inside one compiled call.

    Requests execute **in order** and the loop stops right after the
    first result that deviates from the speculative miss-and-pruned
    assumption (a hit, or a miss that pruned nothing) — every executed
    request therefore belongs to the exact sequential τ-schedule and
    no work is ever discarded.  Returns the executed count; per-request
    results land in the output arrays.  ``counters`` accumulates
    ``[search_settled, search_relaxed, search_pushes, search_pops,
    tree_relaxed]``; the tree's own push/pop totals accrue in
    ``t_state[4]``/``t_state[5]``.
    """
    nreq = srcs.shape[0]
    executed = 0
    pw = 0
    path_ptr[0] = 0
    for r in range(nreq):
        tau = taus[r]
        if t_hs[0] > 0 and t_hp[0] <= tau:
            _found, grelax = _spti_settle_kernel(
                f_indptr,
                f_indices,
                f_weights,
                tb,
                use_tb,
                -1,
                tau,
                t_dist,
                t_parent,
                t_stamp,
                h,
                t_hp,
                t_hn,
                t_hs,
                t_state,
                settled_order,
                dest_mask,
                dest_nodes,
                dest_dists,
            )
            counters[4] += grelax
        blocked = blocked_flat[blocked_ptr[r] : blocked_ptr[r + 1]]
        banned = banned_flat[banned_ptr[r] : banned_ptr[r + 1]]
        plen, was_pruned, length = _bounded_astar_kernel(
            r_indptr,
            r_indices,
            r_weights,
            srcs[r],
            goal,
            h,
            True,
            tau,
            init_dists[r],
            blocked,
            banned,
            s_dist,
            s_parent,
            s_stamp,
            s_gen,
            s_hp,
            s_hn,
            s_hs,
            path_flat[pw:],
            dists_flat[pw:],
            True,
            counters,
        )
        statuses[r] = plen
        pruned_out[r] = 1 if was_pruned else 0
        lengths[r] = length
        pw += plen
        path_ptr[r + 1] = pw
        executed = r + 1
        if plen > 0 or not was_pruned:
            break
    return executed


# ----------------------------------------------------------------------
# Pooled ndarray scratch
# ----------------------------------------------------------------------
class NativeScratch:
    """Preallocated ndarray buffers for the compiled kernels.

    The typed counterpart of :class:`repro.pathing.flat.FlatScratch`:
    generation-stamped dist/parent/stamp state, the parallel-array
    heap, and path/tail-distance output buffers.  Pooled per CSR
    snapshot (:func:`acquire_native_scratch`), so back-to-back kernel
    calls never reallocate.
    """

    __slots__ = (
        "dist",
        "parent",
        "stamp",
        "gen",
        "hp",
        "hn",
        "hs",
        "path",
        "dists",
        "counters",
    )

    def __init__(self, n: int, m: int) -> None:
        self.dist = np.full(n, INF)
        self.parent = np.full(n, -1, dtype=np.int64)
        self.stamp = np.zeros(n, dtype=np.int64)
        self.gen = np.zeros(1, dtype=np.int64)
        cap = m + n + 2  # relaxations + sources bound every push count
        self.hp = np.empty(cap, dtype=np.float64)
        self.hn = np.empty(cap, dtype=np.int64)
        self.hs = np.zeros(1, dtype=np.int64)
        self.path = np.empty(n + 1, dtype=np.int64)
        self.dists = np.empty(n + 1, dtype=np.float64)
        # Work-counter accumulator handed to the kernels:
        # [settled, relaxed, heap_pushes, heap_pops, tree_relaxed, …];
        # callers zero the slots they read before each kernel call.
        self.counters = np.zeros(8, dtype=np.int64)

    def nbytes(self) -> int:
        """Exact ndarray footprint of this scratch set, in bytes.

        Feeds the memory-telemetry pool gauges
        (:func:`repro.obs.memory.scratch_pool_bytes`).
        """
        return (
            self.dist.nbytes
            + self.parent.nbytes
            + self.stamp.nbytes
            + self.gen.nbytes
            + self.hp.nbytes
            + self.hn.nbytes
            + self.hs.nbytes
            + self.path.nbytes
            + self.dists.nbytes
            + self.counters.nbytes
        )


def acquire_native_scratch(csr: CSRGraph) -> NativeScratch:
    """Check an ndarray scratch out of the snapshot's pool (or make one)."""
    pool = csr._native_pool
    if pool:
        return pool.pop()
    return NativeScratch(csr.n, csr.m)


def release_native_scratch(csr: CSRGraph, scratch: NativeScratch) -> None:
    """Return an ndarray scratch to the snapshot's pool for reuse."""
    csr._native_pool.append(scratch)


_EMPTY_IDX = np.empty(0, dtype=np.int64)
_NO_H = np.empty(0, dtype=np.float64)


def _as_index_array(nodes) -> np.ndarray:
    if isinstance(nodes, np.ndarray):
        return nodes
    count = len(nodes)
    if count == 0:
        return _EMPTY_IDX
    return np.fromiter(nodes, dtype=np.int64, count=count)


def _as_h_array(heuristic, n: int) -> tuple[np.ndarray, bool]:
    """Densify a non-callable heuristic for the kernels (None → zero)."""
    if heuristic is None:
        return _NO_H, False
    if isinstance(heuristic, np.ndarray):
        return heuristic, True
    return np.asarray(heuristic, dtype=np.float64), True


# ----------------------------------------------------------------------
# Wrappers (flat-kernel delegation when the array engine is off)
# ----------------------------------------------------------------------
def native_multi_source_distances(
    csr: CSRGraph, sources: Sequence[int], cutoff: float = INF
) -> np.ndarray:
    """Distances from the nearest of ``sources``; compiled when possible."""
    if not use_array_engine():
        return flat_multi_source_distances(csr, sources, cutoff=cutoff)
    srcs = np.asarray(sorted(set(int(s) for s in sources)), dtype=np.int64)
    indptr, indices, weights = csr.typed_arrays()
    dist = np.full(csr.n, INF)
    scratch = acquire_native_scratch(csr)
    try:
        _sssp_kernel(
            indptr, indices, weights, srcs, cutoff, dist,
            scratch.hp, scratch.hn, scratch.hs,
        )
    finally:
        release_native_scratch(csr, scratch)
    return dist


def native_shortest_path(
    csr: CSRGraph, source: int, target: int
) -> tuple[tuple[int, ...], float] | None:
    """Point-to-point shortest path (ties as the dict kernel breaks them)."""
    if not use_array_engine():
        return flat_shortest_path(csr, source, target)
    return native_constrained_shortest_path(csr, source, target)


def native_constrained_shortest_path(
    csr: CSRGraph,
    source: int,
    target: int,
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
) -> tuple[tuple[int, ...], float] | None:
    """Constrained Dijkstra — ``native_bounded_astar_path`` at ``inf``."""
    return native_bounded_astar_path(
        csr,
        source,
        target,
        None,
        INF,
        blocked=blocked,
        banned_first_hops=banned_first_hops,
        initial_distance=initial_distance,
        stats=stats,
    )


def native_bounded_astar_path(
    csr: CSRGraph,
    source: int,
    target: int,
    heuristic,
    bound: float,
    blocked: Collection[int] = (),
    banned_first_hops: Collection[int] = (),
    initial_distance: float = 0.0,
    stats=None,
    info: dict | None = None,
    collect_dists: bool = False,
) -> tuple[tuple[int, ...], float] | None:
    """Bounded A* on the compiled kernel; contract of
    :func:`~repro.pathing.flat.flat_bounded_astar_path`.

    Callable heuristics cannot cross the JIT boundary, so they (and
    the no-numba, no-force case) delegate to the flat kernel — results
    are identical either way.
    """
    if callable(heuristic) or not use_array_engine():
        return flat_bounded_astar_path(
            csr,
            source,
            target,
            heuristic,
            bound,
            blocked=blocked,
            banned_first_hops=banned_first_hops,
            initial_distance=initial_distance,
            stats=stats,
            info=info,
            collect_dists=collect_dists,
        )
    if info is not None:
        info["pruned"] = False
        if collect_dists:
            info["tail_dists"] = None
    h_arr, use_h = _as_h_array(heuristic, csr.n)
    blocked_arr = _as_index_array(blocked)
    banned_arr = _as_index_array(banned_first_hops)
    indptr, indices, weights = csr.typed_arrays()
    scratch = acquire_native_scratch(csr)
    try:
        scratch.counters[0:4] = 0
        plen, pruned, length = _bounded_astar_kernel(
            indptr,
            indices,
            weights,
            source,
            target,
            h_arr,
            use_h,
            bound,
            initial_distance,
            blocked_arr,
            banned_arr,
            scratch.dist,
            scratch.parent,
            scratch.stamp,
            scratch.gen,
            scratch.hp,
            scratch.hn,
            scratch.hs,
            scratch.path,
            scratch.dists,
            collect_dists,
            scratch.counters,
        )
        if stats is not None:
            stats.nodes_settled += int(scratch.counters[0])
            stats.edges_relaxed += int(scratch.counters[1])
            stats.heap_pushes += int(scratch.counters[2])
            stats.heap_pops += int(scratch.counters[3])
        if info is not None and pruned:
            info["pruned"] = True
        if plen == 0:
            return None
        path = tuple(int(x) for x in scratch.path[:plen])
        if info is not None and collect_dists:
            info["tail_dists"] = [float(x) for x in scratch.dists[:plen]]
        return path, float(length)
    finally:
        release_native_scratch(csr, scratch)


def native_spt_arrays(
    csr: CSRGraph, target: int
) -> tuple[list[float], list[int]]:
    """Full SPT arrays toward ``target``; contract of
    :func:`~repro.pathing.flat.flat_spt_arrays` (equal-distance ties
    may differ between substrates, as with scipy)."""
    if not use_array_engine():
        return flat_spt_arrays(csr, target)
    rev = csr.reverse()
    indptr, indices, weights = rev.typed_arrays()
    n = rev.n
    dist = np.full(n, INF)
    next_hop = np.full(n, -1, dtype=np.int64)
    scratch = acquire_native_scratch(rev)
    try:
        _spt_kernel(
            indptr, indices, weights, target, dist, next_hop,
            scratch.hp, scratch.hn, scratch.hs,
        )
    finally:
        release_native_scratch(rev, scratch)
    return dist.tolist(), next_hop.tolist()


# ----------------------------------------------------------------------
# Batched multi-source CompSP
# ----------------------------------------------------------------------
class CompSPOutcome:
    """One request's result from a batched CompSP call.

    ``path`` is ``None`` on a miss (with ``pruned`` reporting whether
    the bound rejected anything); on a hit ``length`` and
    ``tail_dists`` carry the kernel's settled data.  ``g0``/``g1`` and
    ``t0``/``t1`` are ``perf_counter`` stamps around the grow hook and
    the search — ``None`` when the batch ran unclocked.
    """

    __slots__ = ("path", "length", "tail_dists", "pruned", "g0", "g1", "t0", "t1")

    def __init__(self) -> None:
        self.path = None
        self.length = INF
        self.tail_dists = None
        self.pruned = False
        self.g0 = self.g1 = self.t0 = self.t1 = None


_EMPTY: frozenset[int] = frozenset()


def native_batch_compsp(
    csr: CSRGraph,
    goal: int,
    pairs,
    h=None,
    stats=None,
    grow=None,
    clocked: bool = False,
) -> list[CompSPOutcome]:
    """Run a speculative run of ``TestLB`` requests, stopping at the
    first deviation from the predicted miss.

    ``pairs`` is ``[(subspace, tau), ...]`` — the requests of one
    Alg. 8 division round, in the exact sequential τ-schedule order.
    Each request first invokes ``grow(tau)`` (the Alg. 7 enlargement,
    when given) and then the bounded search; the loop stops **after**
    the first request whose result is a hit or an unpruned miss, so
    every executed request — and every tree enlargement — belongs to
    the sequential schedule and nothing is ever discarded or replayed.

    With ``clocked`` each outcome carries per-request timestamps so
    the driver can attribute ``spt_grow``/``test_lb`` phases exactly
    as in sequential mode; unclocked batches skip the clock reads.

    This is the generic (per-request) form; the
    :class:`NativeIncrementalSPT` owner upgrades unclocked batches to
    the single compiled :func:`_batch_test_kernel` call via
    :meth:`~NativeIncrementalSPT.batch_test`.
    """
    outcomes: list[CompSPOutcome] = []
    info: dict = {}
    for subspace, tau in pairs:
        out = CompSPOutcome()
        if grow is not None:
            if clocked:
                out.g0 = perf_counter()
                grow(tau)
                out.g1 = perf_counter()
            else:
                grow(tau)
        if stats is not None:
            stats.native_kernel_calls += 1
        prefix = subspace.prefix
        if clocked:
            out.t0 = perf_counter()
        hit = native_bounded_astar_path(
            csr,
            prefix[-1],
            goal,
            h,
            tau,
            blocked=prefix if len(prefix) > 1 else _EMPTY,
            banned_first_hops=subspace.banned,
            initial_distance=subspace.prefix_weight,
            stats=stats,
            info=info,
            collect_dists=True,
        )
        if clocked:
            out.t1 = perf_counter()
        out.pruned = bool(info.get("pruned"))
        if hit is not None:
            out.path, out.length = hit
            out.tail_dists = info.get("tail_dists")
        outcomes.append(out)
        if hit is not None or not out.pruned:
            break
    return outcomes


class NativeIncrementalSPT:
    """Alg. 7 on typed ndarrays, feeding the compiled kernels.

    The ndarray twin of
    :class:`~repro.core.flat_engine.FlatIncrementalSPT`: same settle
    order, same float sums, same public surface (``h``,
    ``build_initial``, ``grow``, ``dest_arrays`` …), but its state
    lives in a pooled :class:`NativeScratch` so
    :func:`_spti_settle_kernel` and :func:`_batch_test_kernel` can run
    over it without marshalling.  ``target_bounds`` must already be
    densified to an ndarray (or ``None``); callable bounds cannot
    cross the JIT boundary, and the engine falls back to the flat tree
    for those.
    """

    __slots__ = (
        "h",
        "_csr",
        "_indptr",
        "_indices",
        "_weights",
        "_source",
        "_tb",
        "_use_tb",
        "_scratch",
        "_state",
        "_settled_order",
        "_dest_mask",
        "_dest_nodes",
        "_dest_dists",
        "_dest_cache",
        "_stats",
        "_metrics",
        "_heap_peak",
    )

    def __init__(
        self,
        csr: CSRGraph,
        source: int,
        tb_arr: np.ndarray | None,
        destinations: frozenset[int],
        stats=None,
        metrics=None,
    ) -> None:
        self._csr = csr
        self._indptr, self._indices, self._weights = csr.typed_arrays()
        n = csr.n
        self._source = source
        if tb_arr is None:
            self._tb = _NO_H
            self._use_tb = False
        else:
            self._tb = tb_arr
            self._use_tb = True
        self._scratch = acquire_native_scratch(csr)
        sc = self._scratch
        gen = int(sc.gen[0]) + 1
        sc.gen[0] = gen
        # [gen, n_settled, n_dest, dest_dirty, heap_pushes, heap_pops,
        # _, _] — the push/pop slots are lifetime totals folded into
        # stats as deltas by _settle/batch_test.
        self._state = np.zeros(8, dtype=np.int64)
        self._state[0] = gen
        self.h = np.full(n, INF)
        self._settled_order = np.empty(n, dtype=np.int64)
        dest = np.fromiter(destinations, dtype=np.int64, count=len(destinations))
        self._dest_mask = np.zeros(n, dtype=np.bool_)
        if dest.size:
            self._dest_mask[dest] = True
        self._dest_nodes = np.empty(dest.size, dtype=np.int64)
        self._dest_dists = np.empty(dest.size, dtype=np.float64)
        self._dest_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._stats = stats
        self._metrics = metrics
        self._heap_peak = 1
        sc.dist[source] = 0.0
        sc.stamp[source] = gen
        sc.hs[0] = 0
        key = 0.0 + self._tb[source] if self._use_tb else 0.0
        _heap_push(sc.hp, sc.hn, sc.hs, key, source)
        if stats is not None:
            stats.heap_pushes += 1

    def _settle(self, target: int, tau: float) -> int:
        sc = self._scratch
        before = int(self._state[1])
        pushes_before = int(self._state[4])
        pops_before = int(self._state[5])
        found, relaxed = _spti_settle_kernel(
            self._indptr,
            self._indices,
            self._weights,
            self._tb,
            self._use_tb,
            target,
            tau,
            sc.dist,
            sc.parent,
            sc.stamp,
            self.h,
            sc.hp,
            sc.hn,
            sc.hs,
            self._state,
            self._settled_order,
            self._dest_mask,
            self._dest_nodes,
            self._dest_dists,
        )
        if self._state[3]:
            self._dest_cache = None
            self._state[3] = 0
        if self._stats is not None:
            self._stats.nodes_settled += int(self._state[1]) - before
            self._stats.edges_relaxed += int(relaxed)
            self._stats.heap_pushes += int(self._state[4]) - pushes_before
            self._stats.heap_pops += int(self._state[5]) - pops_before
        if self._metrics is not None and int(sc.hs[0]) > self._heap_peak:
            self._heap_peak = int(sc.hs[0])
        return int(found)

    def build_initial(self, target: int) -> tuple[tuple[int, ...], float] | None:
        """Phase one: settle until ``target`` is reached."""
        u = self._settle(target, INF)
        if u < 0:
            return None
        parent = self._scratch.parent
        path = [int(u)]
        node = u
        while node != self._source:
            node = int(parent[node])
            path.append(node)
        path.reverse()
        return tuple(path), float(self.h[target])

    def grow(self, tau: float) -> None:
        """Phase two (Alg. 7): settle every node with key ≤ ``tau``."""
        sc = self._scratch
        if sc.hs[0] > 0 and sc.hp[0] <= tau:
            self._settle(-1, tau)

    def __contains__(self, v: int) -> bool:
        return self._scratch.stamp[v] == -int(self._state[0])

    def __len__(self) -> int:
        return int(self._state[1])

    def distance(self, v: int) -> float | None:
        """Exact ``ds(v)`` if settled, else ``None``."""
        d = self.h[v]
        return None if d == INF else float(d)

    def heuristic(self, v: int) -> float:
        """``_SPTIHeuristic`` equivalent: exact ``ds`` or ``inf``."""
        return self.h[v]

    @property
    def num_settled_destinations(self) -> int:
        """``|D|`` — destinations already in the tree."""
        return int(self._state[2])

    def dest_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The settled destinations as ``(nodes, distances)`` array views.

        Rebuilt lazily only when new destinations settled since the
        last call — Alg. 8's vectorised reduction runs over these.
        """
        cache = self._dest_cache
        if cache is None:
            c = int(self._state[2])
            cache = (self._dest_nodes[:c], self._dest_dists[:c])
            self._dest_cache = cache
        return cache

    def batch_test(
        self, rcsr: CSRGraph, goal: int, pairs, stats=None
    ) -> list[CompSPOutcome]:
        """The single-call batched CompSP over this tree.

        Flattens the request run into typed arrays and executes grow +
        bounded search for every request inside one
        :func:`_batch_test_kernel` invocation (the JIT boundary is
        crossed once per division round, not once per subspace).  Stop
        semantics and results are identical to
        :func:`native_batch_compsp`; outcomes carry no timestamps.
        """
        nreq = len(pairs)
        srcs = np.empty(nreq, dtype=np.int64)
        taus = np.empty(nreq, dtype=np.float64)
        init_d = np.empty(nreq, dtype=np.float64)
        blocked_ptr = np.zeros(nreq + 1, dtype=np.int64)
        banned_ptr = np.zeros(nreq + 1, dtype=np.int64)
        blocked_parts = []
        banned_parts = []
        for i, (subspace, tau) in enumerate(pairs):
            prefix = subspace.prefix
            srcs[i] = prefix[-1]
            taus[i] = tau
            init_d[i] = subspace.prefix_weight
            b = (
                np.fromiter(prefix, dtype=np.int64, count=len(prefix))
                if len(prefix) > 1
                else _EMPTY_IDX
            )
            blocked_parts.append(b)
            blocked_ptr[i + 1] = blocked_ptr[i] + b.size
            banned = subspace.banned
            x = (
                np.fromiter(banned, dtype=np.int64, count=len(banned))
                if banned
                else _EMPTY_IDX
            )
            banned_parts.append(x)
            banned_ptr[i + 1] = banned_ptr[i] + x.size
        blocked_flat = (
            np.concatenate(blocked_parts) if blocked_ptr[-1] else _EMPTY_IDX
        )
        banned_flat = (
            np.concatenate(banned_parts) if banned_ptr[-1] else _EMPTY_IDX
        )
        r_indptr, r_indices, r_weights = rcsr.typed_arrays()
        n1 = rcsr.n + 1
        statuses = np.zeros(nreq, dtype=np.int64)
        pruned = np.zeros(nreq, dtype=np.int64)
        lengths = np.zeros(nreq, dtype=np.float64)
        path_flat = np.empty(nreq * n1, dtype=np.int64)
        path_ptr = np.zeros(nreq + 1, dtype=np.int64)
        dists_flat = np.empty(nreq * n1, dtype=np.float64)
        counters = np.zeros(8, dtype=np.int64)
        sc = self._scratch
        settled_before = int(self._state[1])
        pushes_before = int(self._state[4])
        pops_before = int(self._state[5])
        search = acquire_native_scratch(rcsr)
        try:
            executed = _batch_test_kernel(
                self._indptr,
                self._indices,
                self._weights,
                self._tb,
                self._use_tb,
                sc.dist,
                sc.parent,
                sc.stamp,
                self.h,
                sc.hp,
                sc.hn,
                sc.hs,
                self._state,
                self._settled_order,
                self._dest_mask,
                self._dest_nodes,
                self._dest_dists,
                r_indptr,
                r_indices,
                r_weights,
                goal,
                search.dist,
                search.parent,
                search.stamp,
                search.gen,
                search.hp,
                search.hn,
                search.hs,
                srcs,
                taus,
                init_d,
                blocked_flat,
                blocked_ptr,
                banned_flat,
                banned_ptr,
                statuses,
                pruned,
                lengths,
                path_flat,
                path_ptr,
                dists_flat,
                counters,
            )
        finally:
            release_native_scratch(rcsr, search)
        executed = int(executed)
        if self._state[3]:
            self._dest_cache = None
            self._state[3] = 0
        if stats is not None:
            stats.native_kernel_calls += executed
            stats.nodes_settled += (
                int(self._state[1]) - settled_before + int(counters[0])
            )
            stats.edges_relaxed += int(counters[4]) + int(counters[1])
            stats.heap_pushes += (
                int(self._state[4]) - pushes_before + int(counters[2])
            )
            stats.heap_pops += (
                int(self._state[5]) - pops_before + int(counters[3])
            )
        if self._metrics is not None and int(sc.hs[0]) > self._heap_peak:
            self._heap_peak = int(sc.hs[0])
        outcomes: list[CompSPOutcome] = []
        for r in range(executed):
            out = CompSPOutcome()
            out.pruned = bool(pruned[r])
            plen = int(statuses[r])
            if plen > 0:
                lo = int(path_ptr[r])
                out.path = tuple(int(x) for x in path_flat[lo : lo + plen])
                out.length = float(lengths[r])
                out.tail_dists = [float(x) for x in dists_flat[lo : lo + plen]]
            outcomes.append(out)
        return outcomes

    def close(self) -> None:
        """Return the pooled scratch; the tree must not be used after."""
        metrics = self._metrics
        if metrics is not None:
            metrics.set_gauge("spt_heap_peak", self._heap_peak)
            metrics.set_gauge("spt_settled_peak", int(self._state[1]))
            metrics.set_gauge("flat_scratch_stamp_gen", int(self._state[0]))
        if self._scratch is not None:
            release_native_scratch(self._csr, self._scratch)
            self._scratch = None


# ----------------------------------------------------------------------
# JIT warm-up
# ----------------------------------------------------------------------
_WARMED = False


def warmup_jit() -> bool:
    """Compile every kernel on a toy graph; idempotent.

    Called during solver construction and pre-fork pool warm-up so the
    one-time numba compilation cost lands under the ``warmup`` phase
    instead of the first query's ``comp_sp``.  Returns ``True`` only
    when compilation actually ran now (``False`` without numba or when
    already warmed).
    """
    global _WARMED
    if not HAVE_NUMBA or _WARMED:
        return False
    _WARMED = True
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([1, 0], dtype=np.int64)
    weights = np.array([1.0, 1.0], dtype=np.float64)
    n = 2
    dist = np.full(n, INF)
    hp = np.empty(8, dtype=np.float64)
    hn = np.empty(8, dtype=np.int64)
    hs = np.zeros(1, dtype=np.int64)
    _sssp_kernel(
        indptr, indices, weights, np.array([0], dtype=np.int64), INF, dist,
        hp, hn, hs,
    )
    _spt_kernel(
        indptr, indices, weights, 0, np.full(n, INF),
        np.full(n, -1, dtype=np.int64), hp, hn, hs,
    )
    h = np.zeros(n, dtype=np.float64)
    t_dist = np.full(n, INF)
    t_parent = np.full(n, -1, dtype=np.int64)
    t_stamp = np.zeros(n, dtype=np.int64)
    t_state = np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.int64)
    t_hp = np.empty(8, dtype=np.float64)
    t_hn = np.empty(8, dtype=np.int64)
    t_hs = np.zeros(1, dtype=np.int64)
    t_dist[0] = 0.0
    t_stamp[0] = 1
    _heap_push(t_hp, t_hn, t_hs, 0.0, 0)
    hvec = np.full(n, INF)
    _spti_settle_kernel(
        indptr, indices, weights, h, True, -1, INF,
        t_dist, t_parent, t_stamp, hvec, t_hp, t_hn, t_hs, t_state,
        np.empty(n, dtype=np.int64), np.zeros(n, dtype=np.bool_),
        np.empty(1, dtype=np.int64), np.empty(1, dtype=np.float64),
    )
    s_dist = np.full(n, INF)
    s_parent = np.full(n, -1, dtype=np.int64)
    s_stamp = np.zeros(n, dtype=np.int64)
    s_gen = np.zeros(1, dtype=np.int64)
    _bounded_astar_kernel(
        indptr, indices, weights, 0, 1, hvec, True, INF, 0.0,
        _EMPTY_IDX, _EMPTY_IDX, s_dist, s_parent, s_stamp, s_gen,
        hp, hn, hs, np.empty(n + 1, dtype=np.int64),
        np.empty(n + 1, dtype=np.float64), True, np.zeros(8, dtype=np.int64),
    )
    _batch_test_kernel(
        indptr, indices, weights, h, True,
        t_dist, t_parent, t_stamp, hvec, t_hp, t_hn, t_hs, t_state,
        np.empty(n, dtype=np.int64), np.zeros(n, dtype=np.bool_),
        np.empty(1, dtype=np.int64), np.empty(1, dtype=np.float64),
        indptr, indices, weights, 1,
        s_dist, s_parent, s_stamp, s_gen, hp, hn, hs,
        np.array([0], dtype=np.int64), np.array([INF], dtype=np.float64),
        np.array([0.0], dtype=np.float64),
        _EMPTY_IDX, np.zeros(2, dtype=np.int64),
        _EMPTY_IDX, np.zeros(2, dtype=np.int64),
        np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.float64), np.empty(n + 1, dtype=np.int64),
        np.zeros(2, dtype=np.int64), np.empty(n + 1, dtype=np.float64),
        np.zeros(8, dtype=np.int64),
    )
    return True
