"""Shortest-path trees.

Three flavours appear in the paper:

* The **full SPT** rooted at the (virtual) target — DA-SPT builds one
  per query (Section 3); it stores, for every node, the exact distance
  to the target and the next hop toward it.
* The **partial SPT** ``SPT_P`` (Alg. 6) — a by-product of the very
  first shortest-path computation: an A* run *backward* from the
  destination set toward the source; only the nodes settled before the
  source are kept, and for those the distance to the destination set
  is exact (Prop. 5.1).
* The **incremental SPT** ``SPT_I`` (Alg. 7) grows *forward* from the
  source on demand; it keeps live queue state between enlargements and
  therefore lives with its consumer in
  :mod:`repro.core.spt_incremental`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Sequence

from repro.graph.digraph import DiGraph

__all__ = [
    "ShortestPathTree",
    "build_spt_to_target",
    "canonical_next_hops",
    "PartialSPT",
    "build_partial_spt",
]

INF = float("inf")


class ShortestPathTree:
    """Full shortest-path tree toward a single target node.

    ``dist[v]`` is the exact distance from ``v`` to the target
    (``inf`` if the target is unreachable from ``v``); ``next_hop[v]``
    is ``v``'s successor on a shortest path (``-1`` at the target and
    at unreachable nodes).
    """

    __slots__ = ("target", "dist", "next_hop")

    def __init__(self, target: int, dist: list[float], next_hop: list[int]) -> None:
        self.target = target
        self.dist = dist
        self.next_hop = next_hop

    def distance(self, v: int) -> float:
        """Exact distance from ``v`` to the target."""
        return self.dist[v]

    def path_from(self, v: int) -> tuple[int, ...] | None:
        """The tree path ``v -> ... -> target``; ``None`` if unreachable."""
        if self.dist[v] == INF:
            return None
        path = [v]
        node = v
        while node != self.target:
            node = self.next_hop[node]
            path.append(node)
        return tuple(path)

    def __contains__(self, v: int) -> bool:
        return self.dist[v] != INF


def canonical_next_hops(graph: DiGraph, target: int, dist) -> list[int]:
    """Deterministic tree successors recomputed from exact distances.

    Every kernel's Dijkstra produces the same ``dist`` vector, but the
    successor it records for a node is an accident of relaxation order
    — with zero-weight or equal-weight ties the scipy/compiled builds
    and the dict build pick different (equally shortest) trees, and
    downstream consumers that branch on tree *shape* (DA-SPT's Pascoal
    simplicity check) then do kernel-dependent amounts of work.  This
    pass rebuilds ``next_hop`` as a pure function of
    ``(graph, target, dist)``: nodes are finalised in ``(dist, id)``
    order from the target outward, and each node adopts the
    first-finalised successor among its tight edges (``dist[v] ==
    w + dist[u]`` — exact, because every kernel computes ``dist[v]``
    as that very sum for at least one edge).  Successors always point
    at earlier-finalised nodes, so the tree is acyclic even across
    zero-weight cycles, and identical for every kernel.
    """
    radj = graph.reverse_adjacency()
    n = graph.n
    next_hop = [-1] * n
    done = [False] * n
    heap: list[tuple[float, int]] = [(0.0, target)]
    while heap:
        d, u = heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v, w in radj[u]:
            if not done[v] and next_hop[v] == -1 and dist[v] == d + w:
                next_hop[v] = u
                heappush(heap, (dist[v], v))
    next_hop[target] = -1
    return next_hop


def build_spt_to_target(
    graph: DiGraph, target: int, stats=None, kernel: str | None = None
) -> ShortestPathTree:
    """Dijkstra on the reverse graph from ``target``: the full SPT.

    This is the expensive per-query step of DA-SPT; its cost is what
    Figures 7(e)–7(f) show dominating when the k shortest paths are
    short.  With ``kernel="flat"`` the tree arrays are produced by the
    CSR kernel (scipy-accelerated where available); distances are
    identical, but per-node ``stats.nodes_settled`` increments are not
    recorded on that path (the C loop has no counter hook) — the
    kernel-dispatch counter is bumped instead.  ``kernel="native"``
    produces the arrays with the compiled kernel
    (:func:`repro.pathing.native.native_spt_arrays`) under the same
    contract.

    Whatever kernel ran, the successor pointers are normalised by
    :func:`canonical_next_hops` so the returned *tree* — not just the
    distance vector — is identical everywhere; work counters measured
    downstream of the tree stay comparable across kernels.
    """
    from repro.pathing.kernels import resolve_kernel

    chosen = resolve_kernel(kernel)
    if chosen == "native":
        from repro.graph.csr import shared_csr
        from repro.pathing.native import native_spt_arrays

        if stats is not None:
            stats.native_kernel_calls += 1
        dist, _ = native_spt_arrays(shared_csr(graph), target)
        return ShortestPathTree(target, dist, canonical_next_hops(graph, target, dist))
    if chosen == "flat":
        from repro.graph.csr import shared_csr
        from repro.pathing.flat import flat_spt_arrays

        if stats is not None:
            stats.flat_kernel_calls += 1
        dist, _ = flat_spt_arrays(shared_csr(graph), target)
        return ShortestPathTree(target, dist, canonical_next_hops(graph, target, dist))
    if stats is not None:
        stats.dict_kernel_calls += 1
    radj = graph.reverse_adjacency()
    n = graph.n
    dist = [INF] * n
    dist[target] = 0.0
    heap: list[tuple[float, int]] = [(0.0, target)]
    settled = [False] * n
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if stats is not None:
            stats.nodes_settled += 1
        for v, w in radj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return ShortestPathTree(target, dist, canonical_next_hops(graph, target, dist))


class PartialSPT:
    """The paper's ``SPT_P`` (Section 5.2).

    Holds exact distances-to-destination-set for the nodes settled by
    the backward A* of Alg. 6 (:func:`build_partial_spt`).  For any
    other node the caller falls back to the landmark estimate — the
    tree value always dominates it (Prop. 5.1), and for lower bounds
    larger is better.
    """

    __slots__ = ("dist_to_targets", "next_hop", "source_path")

    def __init__(
        self,
        dist_to_targets: dict[int, float],
        next_hop: dict[int, int],
        source_path: tuple[int, ...] | None,
    ) -> None:
        self.dist_to_targets = dist_to_targets
        self.next_hop = next_hop
        self.source_path = source_path

    def __contains__(self, v: int) -> bool:
        return v in self.dist_to_targets

    def __len__(self) -> int:
        return len(self.dist_to_targets)

    def distance(self, v: int) -> float | None:
        """Exact distance from ``v`` to the destination set, if settled."""
        return self.dist_to_targets.get(v)


def build_partial_spt(
    graph: DiGraph,
    source: int,
    destinations: Sequence[int],
    source_bound: Callable[[int], float],
    stats=None,
) -> PartialSPT:
    """Alg. 6 (``PartialSPT``): backward A* from ``destinations``.

    Runs on the reverse graph, seeded with every destination at
    distance 0, prioritised by ``dist-to-destinations + lb(source, w)``
    where ``source_bound(w)`` is a lower bound on the distance from
    the query source to ``w`` (landmark-estimated).  Stops as soon as
    the source is settled, which is exactly when the query's first
    shortest path is known — so the tree is a by-product of work the
    query had to do anyway.

    Returns the tree; ``source_path`` is the shortest path
    ``source -> ... -> destination`` (``None`` if unreachable).
    """
    radj = graph.reverse_adjacency()
    dist: dict[int, float] = {}
    next_hop: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = []
    for v in destinations:
        dist[v] = 0.0
        heappush(heap, (source_bound(v), v))
    source_path: tuple[int, ...] | None = None
    while heap:
        _, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if stats is not None:
            stats.nodes_settled += 1
        if u == source:
            path = [u]
            node = u
            while node in next_hop:
                node = next_hop[node]
                path.append(node)
            source_path = tuple(path)
            break
        du = dist[u]
        for v, w in radj[u]:
            if v in settled:
                continue
            nd = du + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                next_hop[v] = u
                heappush(heap, (nd + source_bound(v), v))
                if stats is not None:
                    stats.edges_relaxed += 1
    settled_dist = {v: dist[v] for v in settled}
    settled_hop = {v: next_hop[v] for v in settled if v in next_hop}
    return PartialSPT(settled_dist, settled_hop, source_path)
