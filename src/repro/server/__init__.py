"""Query-serving layer: batched, parallel, and resident execution.

:mod:`repro.server.pool` shards a query list across a fork-per-batch
process pool with the graph shipped once per worker; it backs
:meth:`repro.core.kpj.KPJSolver.solve_batch` and the ``kpj batch``
CLI subcommand.

:mod:`repro.server.service` is the long-lived tier: resident worker
processes over shared-memory CSR state
(:mod:`repro.server.shared`), with admission control, per-query
deadlines, and prepare coalescing.  ``kpj serve`` exposes it over
HTTP (:mod:`repro.server.http`); ``run_batch(engine="service")`` and
``kpj loadtest --target service`` route through it in-process.

All serving surfaces stamp ``QueryResult.timing`` offsets against the
shared :func:`repro.server.epoch.service_epoch`.
"""

from repro.server.epoch import service_epoch
from repro.server.pool import BatchQuery, run_batch
from repro.server.service import DeadlineExceeded, QueryService
from repro.server.shared import SharedCSR, active_segments

__all__ = [
    "BatchQuery",
    "DeadlineExceeded",
    "QueryService",
    "SharedCSR",
    "active_segments",
    "run_batch",
    "service_epoch",
]
