"""Query-serving layer: batched and parallel query execution.

:mod:`repro.server.pool` shards a query list across a process pool
with the graph shipped once per worker; it backs
:meth:`repro.core.kpj.KPJSolver.solve_batch` and the ``kpj batch``
CLI subcommand.
"""

from repro.server.pool import BatchQuery, run_batch

__all__ = ["BatchQuery", "run_batch"]
