"""The process-wide serving epoch.

Every serving surface — the fork-per-batch pool, the resident-worker
service, the load-test replay — stamps ``QueryResult.timing`` offsets
relative to **one** origin so histograms built from different targets
(or from successive batches) share a timeline.  Before this module the
pool rebased each batch onto its own start, which made
``enqueued_at_s`` reset to ~0 every batch: two batches' offsets were
incomparable and a load-test replay through ``run_batch`` produced
queue-wait distributions that could not be overlaid on the service
tier's.

``perf_counter`` is a single machine-wide monotonic clock on every
platform that can fork, so the epoch survives the fork boundary: a
worker's ``started_at_s`` minus the parent's ``enqueued_at_s`` is a
real queue wait, and both rebase against the same origin.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["service_epoch", "since_epoch"]

_EPOCH: float | None = None


def service_epoch() -> float:
    """The serving time origin, pinned at first use.

    The first call in a process fixes the origin; every later call
    (including from forked children, which inherit the pinned value)
    returns the same number, so offsets computed anywhere in the
    process family are mutually comparable.
    """
    global _EPOCH
    if _EPOCH is None:
        _EPOCH = perf_counter()
    return _EPOCH


def since_epoch(timestamp: float | None = None) -> float:
    """``timestamp`` (a ``perf_counter`` reading; default: now) as an
    offset from the serving epoch."""
    origin = service_epoch()
    if timestamp is None:
        timestamp = perf_counter()
    return timestamp - origin
