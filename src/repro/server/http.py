"""Minimal HTTP front-end for :class:`~repro.server.service.QueryService`.

``kpj serve`` binds this over asyncio streams — no web framework, no
dependency beyond the standard library.  The surface is deliberately
tiny and JSON-first:

* ``GET /healthz`` — liveness: worker count, pending depth;
* ``GET /metrics`` — Prometheus text exposition of the service
  registry (the same strict format ``kpj metrics`` emits, so
  :func:`repro.obs.metrics.parse_prom` round-trips it);
* ``GET /status`` — JSON service description: pids, shared segments,
  uptime, the full metrics report, aggregate §3g work counters;
* ``POST /query`` — one KPJ/KSP query; the body mirrors
  :class:`~repro.server.pool.BatchQuery` (``source`` required,
  ``category``/``destinations``/``k``/``algorithm``/``alpha``
  optional) plus ``timeout_s`` for a per-query deadline.  Responds
  with ``QueryResult.to_dict()`` — paths, stats, per-query metrics
  snapshot, query id, and the epoch-rebased serving timing.

Error mapping keeps the service's failure taxonomy visible to load
generators: admission shedding → ``429``, a lapsed deadline → ``504``,
any other ``QueryError`` (bad category, malformed body) → ``400``,
worker death mid-query → ``500``.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.exceptions import QueryError
from repro.server.service import DeadlineExceeded, QueryService

__all__ = ["run_server", "serve_forever"]


def _response(status: int, body: bytes, content_type: str) -> bytes:
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        429: "Too Many Requests",
        500: "Internal Server Error",
        504: "Gateway Timeout",
    }.get(status, "Error")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload) -> bytes:
    return _response(
        status, json.dumps(payload).encode("utf-8"), "application/json"
    )


async def _handle_query(service: QueryService, body: bytes) -> bytes:
    try:
        fields = json.loads(body.decode("utf-8")) if body else {}
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return _json_response(400, {"error": f"malformed JSON body: {exc}"})
    if not isinstance(fields, dict):
        return _json_response(400, {"error": "query body must be an object"})
    timeout_s = fields.pop("timeout_s", None)
    try:
        result = await service.asubmit(fields, timeout_s=timeout_s)
    except DeadlineExceeded as exc:
        return _json_response(504, {"error": str(exc)})
    except QueryError as exc:
        status = 429 if "service overloaded" in str(exc) else 400
        if "died mid-query" in str(exc):
            status = 500
        return _json_response(status, {"error": str(exc)})
    return _json_response(200, result.to_dict())


async def _handle(service: QueryService, reader, writer) -> None:
    try:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            return
        method, path = parts[0], parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        if method == "GET" and path == "/healthz":
            out = _json_response(
                200,
                {
                    "status": "ok",
                    "workers": service.workers,
                    "pending": service.pending,
                },
            )
        elif method == "GET" and path == "/metrics":
            out = _response(
                200,
                service.render_prom().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
        elif method == "GET" and path == "/status":
            out = _json_response(200, service.describe())
        elif path == "/query":
            if method != "POST":
                out = _json_response(405, {"error": "POST /query"})
            else:
                out = await _handle_query(service, body)
        else:
            out = _json_response(404, {"error": f"no route {path!r}"})
        writer.write(out)
        await writer.drain()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, OSError):  # pragma: no cover
            pass


async def serve_forever(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8321,
    ready=None,
    stop: asyncio.Event | None = None,
    announce=None,
) -> None:
    """Start the service on the running loop and serve HTTP until
    ``stop`` is set (or SIGINT/SIGTERM when ``stop`` is omitted).

    ``ready`` (a callable) receives the bound ``(host, port)`` once
    the socket is listening — tests use it to discover an ephemeral
    port.  Shutdown is clean: the listener closes first, then the
    service retires its workers and unlinks shared memory.
    """
    await service.start_async()
    try:
        server = await asyncio.start_server(
            lambda r, w: _handle(service, r, w), host, port
        )
    except BaseException:
        await service.astop()
        raise
    if stop is None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    if announce is not None:
        announce(
            f"serving on http://{bound[0]}:{bound[1]} "
            f"(workers={service.workers}, "
            f"kernel={getattr(service.solver, 'kernel', '?')})"
        )
    try:
        async with server:
            await stop.wait()
    finally:
        await service.astop()


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8321,
    announce=None,
) -> None:
    """Blocking entry point for ``kpj serve``."""
    asyncio.run(serve_forever(service, host, port, announce=announce))
