"""Batched parallel query serving over a process pool.

CPython's GIL rules out thread-level parallelism for the search
kernels, so throughput comes from processes.  The expensive state — the
frozen graph, the landmark index, the warmed prepared-category cache —
is shipped to each worker **once**, by forking after it is fully
materialised in the parent (copy-on-write, no pickling of the graph),
and only the small :class:`BatchQuery` / ``QueryResult`` objects cross
the process boundary per query.

Guarantees:

* results come back **in submission order**, regardless of which
  worker answered which query;
* answers are identical to sequential solving — workers run exactly
  the per-query code path of :meth:`KPJSolver.top_k` (per-query
  ``SearchStats`` cache counters reflect each worker's own cache);
* on platforms without the ``fork`` start method (Windows), or for
  ``workers <= 1``, the batch degrades gracefully to sequential
  in-process execution.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from time import perf_counter
from typing import Mapping, Sequence

from repro.exceptions import QueryError
from repro.obs.metrics import LOADTEST_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.tracing import SpanTracer
from repro.server.epoch import service_epoch

__all__ = ["BatchQuery", "run_batch"]

#: Module-global solver inherited by forked workers (set around the
#: pool's lifetime; never used by the sequential path).
_WORKER_SOLVER = None

#: This process's worker index (0..workers-1), assigned by
#: :func:`_init_worker` at pool start; ``None`` in the parent and on
#: the sequential path.
_WORKER_INDEX = None


def _init_worker(counter) -> None:
    """Pool initializer: claim the next worker index atomically.

    ``multiprocessing.Pool`` does not expose a worker ordinal, so the
    parent passes a shared counter and each worker takes a ticket
    under its lock.  The index keys the per-worker metric tags that
    make scheduling skew visible in ``kpj batch --metrics``.
    """
    global _WORKER_INDEX
    with counter.get_lock():
        _WORKER_INDEX = int(counter.value)
        counter.value += 1


@dataclass
class _WorkerFailure:
    """A query that raised, shipped back as a value instead of a raise.

    Letting the exception propagate through ``imap`` would abort the
    whole result stream and silently drop every other worker's
    stats/metrics/trace snapshots; wrapping it lets
    :func:`run_batch` merge the successful results first and re-raise
    after (the failure still fails the batch — nothing is swallowed).
    """

    error: Exception
    index: int | None = None


@dataclass(frozen=True)
class BatchQuery:
    """One KPJ/KSP query of a batch workload.

    ``category`` and ``destinations`` are mutually exclusive, exactly
    as in :meth:`KPJSolver.top_k`.
    """

    source: int
    category: str | None = None
    destinations: tuple[int, ...] | None = None
    k: int = 10
    algorithm: str = "iter-bound-spti"
    alpha: float = 1.1


def _coerce(query) -> BatchQuery:
    """Accept :class:`BatchQuery` instances or plain mappings."""
    if isinstance(query, BatchQuery):
        return query
    if isinstance(query, Mapping):
        try:
            query = dict(query)
            if "destinations" in query and query["destinations"] is not None:
                query["destinations"] = tuple(query["destinations"])
            return BatchQuery(**query)
        except TypeError as exc:
            raise QueryError(f"malformed batch query {query!r}: {exc}") from None
    raise QueryError(
        f"batch queries must be BatchQuery or mappings, got {type(query).__name__}"
    )


def _execute(solver, query: BatchQuery):
    """Answer one batch query against a solver."""
    return solver.top_k(
        query.source,
        category=query.category,
        destinations=query.destinations,
        k=query.k,
        algorithm=query.algorithm,
        alpha=query.alpha,
    )


def _worker_execute(query: BatchQuery):
    """Pool worker body: run one query against the forked solver.

    Successful results with a metrics snapshot are tagged with this
    worker's ``worker_<i>_queries`` counter (merging the snapshots
    sums the tags, so the parent-side registry shows how many queries
    each worker actually answered).  Exceptions come back as
    :class:`_WorkerFailure` values so sibling snapshots survive.
    """
    started = perf_counter()
    try:
        result = _execute(_WORKER_SOLVER, query)
    except Exception as exc:
        return _WorkerFailure(error=exc, index=_WORKER_INDEX)
    # The worker's half of the serving-side timing: when this query was
    # actually picked up.  perf_counter is one machine-wide monotonic
    # clock on fork platforms, so the parent can subtract its own
    # enqueue timestamp to get the queue wait.
    result.timing = {"started_at_s": started}
    if result.metrics is not None and _WORKER_INDEX is not None:
        counters = result.metrics["counters"]
        key = f"worker_{_WORKER_INDEX}_queries"
        counters[key] = counters.get(key, 0) + 1
    return result


def _warm_cache(solver, queries: Sequence[BatchQuery]) -> None:
    """Materialise per-destination-set artefacts before forking.

    Every distinct destination set of the workload gets its prepared
    entry (bounds, ``G_Q`` overlay, CSR export under the flat kernel)
    built in the parent, so each worker inherits a hot cache instead
    of rebuilding it ``workers`` times.  Invalid queries are left for
    the workers to report in order.  A ``native`` solver additionally
    compiles its JIT kernels here (idempotent), so every forked worker
    inherits warm machine code and no query pays compilation latency.
    """
    if getattr(solver, "kernel", None) == "native":
        from repro.pathing import native

        native.warmup_jit()
    seen: set = set()
    for q in queries:
        key = (q.category, q.destinations)
        if key in seen:
            continue
        seen.add(key)
        try:
            prepared = solver.prepare(
                category=q.category, destinations=q.destinations
            )
            prepared.csr_overlay()
        except QueryError:
            continue


def _warm_with_metrics(solver, batch: Sequence[BatchQuery], metrics) -> None:
    """Run the pre-fork warm-up, attributing its time to ``warmup``.

    The solver's registry is swapped for a scratch one for the
    duration, so the warm-up's cache counters and gauges are captured
    but its wall time lands under ``warmup`` — never under any
    query's ``prepare`` — keeping sequential and pooled batch totals
    comparable after the warm-up phase is set aside.
    """
    warm_reg = MetricsRegistry()
    saved = solver.metrics
    solver.metrics = warm_reg
    start = perf_counter()
    try:
        _warm_cache(solver, batch)
    finally:
        solver.metrics = saved
    warm_reg.observe_phase("warmup", perf_counter() - start)
    # prepare() already timed itself inside the warm-up interval;
    # dropping it avoids double-counted wall time.
    warm_reg.phases.pop("prepare", None)
    if saved is not None:
        saved.merge(warm_reg)
    if metrics is not None and metrics is not saved:
        metrics.merge(warm_reg)


def run_batch(
    solver, queries: Sequence, workers: int = 1, stats=None, metrics=None,
    tracer=None, engine: str = "pool", service=None,
) -> list:
    """Answer ``queries`` with ``solver``, sharded over ``workers``.

    Returns one :class:`~repro.core.result.QueryResult` per query, in
    submission order.  ``workers <= 1`` (or a single query, or a
    platform without ``fork``) runs sequentially in-process; larger
    values fork a pool after warming the solver's prepared-category
    cache for the workload's destination sets.

    When a :class:`~repro.core.stats.SearchStats` is passed as
    ``stats`` it receives the **aggregate** of the whole batch: every
    per-query counter merged across results (workers included — the
    counters ride back with each ``QueryResult``), plus the parent's
    prepared-cache activity from the pre-fork warm-up, which belongs
    to no individual query and would otherwise be invisible.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is passed as
    ``metrics`` the same aggregation applies to phase timers,
    counters, gauges, and histograms: each result carries its
    per-query snapshot (a plain dict, so it crosses the fork boundary
    like the stats do) and all snapshots are merged here, plus the
    warm-up under the dedicated ``warmup`` phase.  If the solver has
    no registry of its own, one is installed for the duration of the
    batch so the snapshots exist, and removed afterwards.

    When a :class:`~repro.obs.tracing.SpanTracer` is passed as
    ``tracer`` the whole call is recorded as one ``batch`` span, the
    pre-fork warm-up as a ``warmup`` phase span under it, and every
    sampled query's span snapshot — ``QueryResult.trace``, whether it
    was recorded in-process or shipped back from a worker — is
    re-rooted under the batch span with the recording process's
    ``pid`` intact.  ``perf_counter`` is one machine-wide monotonic
    clock on the platforms that can fork, so parent and worker spans
    share a timeline (the pool test asserts no timestamp inversions).
    If the solver has no tracer of its own, one (with the same
    sampling stride) is installed for the duration and removed after.

    Every completed result additionally carries serving-side timing
    (``QueryResult.timing``): ``enqueued_at_s``/``started_at_s``
    monotonic offsets from the process-wide
    :func:`~repro.server.epoch.service_epoch` and the derived
    ``queue_wait_s``, so queue wait is attributable separately from
    the service time post-hoc.  Offsets used to be rebased per batch,
    which reset them to ~0 on every call and made successive batches'
    (and the service tier's) timing histograms incomparable; one
    shared epoch keeps every serving surface on the same timeline.
    Workers stamp the start half; the parent merges the enqueue half
    after results cross the fork boundary — on the failure path too,
    like the snapshot merges below.  When ``metrics`` is passed, the
    queue waits are also recorded into a log-spaced ``queue_wait_ms``
    histogram.

    ``engine`` selects the serving tier: ``"pool"`` (default) is the
    fork-per-batch pool described above; ``"service"`` routes the
    batch through the resident-worker tier
    (:func:`repro.server.service.run_service_batch`) — either a
    private :class:`~repro.server.service.QueryService` spun for the
    call, or the long-lived one passed as ``service``.

    Pooled results are additionally tagged per worker: each query
    snapshot carries a ``worker_<i>_queries`` counter, so the merged
    registry shows how the workload actually spread across workers
    (scheduling skew is invisible in aggregate timers alone).  A query
    that raises still fails the batch with its original exception, but
    only **after** the successful queries' stats/metrics/trace
    snapshots have been merged — previously a single bad query dropped
    every sibling's observability data on the floor.
    """
    global _WORKER_SOLVER
    if engine == "service" or service is not None:
        from repro.server.service import run_service_batch

        return run_service_batch(
            solver, queries, workers=workers, stats=stats, metrics=metrics,
            tracer=tracer, service=service,
        )
    if engine != "pool":
        raise QueryError(
            f"unknown batch engine {engine!r}; choose 'pool' or 'service'"
        )
    batch = [_coerce(q) for q in queries]
    if not batch:
        return []
    workers = min(int(workers), len(batch))
    epoch = service_epoch()  # timing offsets are relative to it
    t_base = perf_counter()
    t_enqueue: float | None = None
    own_metrics = metrics is not None and solver.metrics is None
    if own_metrics:
        # Must be installed before the fork so workers inherit it and
        # produce per-query snapshots.
        solver.metrics = MetricsRegistry()
    own_tracer = tracer is not None and solver.tracer is None
    if own_tracer:
        solver.tracer = SpanTracer(
            capacity=tracer.capacity, sample_every=tracer.sample_every
        )
    batch_span = (
        tracer.begin("batch", cat="batch", queries=len(batch), workers=workers)
        if tracer is not None
        else None
    )
    try:
        results: list | None = None
        if workers > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                ctx = None
            if ctx is not None:
                before = solver.cache_info()
                t_warm = perf_counter()
                if solver.metrics is not None or metrics is not None:
                    _warm_with_metrics(solver, batch, metrics)
                else:
                    _warm_cache(solver, batch)
                if tracer is not None:
                    tracer.add("warmup", t_warm, perf_counter(), cat="phase")
                after = solver.cache_info()
                if stats is not None:
                    stats.prepared_cache_hits += after["hits"] - before["hits"]
                    stats.prepared_cache_misses += after["misses"] - before["misses"]
                _WORKER_SOLVER = solver
                try:
                    with ctx.Pool(
                        processes=workers,
                        initializer=_init_worker,
                        initargs=(ctx.Value("i", 0),),
                    ) as pool:
                        chunk = max(1, len(batch) // (4 * workers))
                        # Every query of the batch is enqueued when
                        # imap hands the iterable to the pool; workers
                        # stamp started_at_s when they pick one up.
                        t_enqueue = perf_counter()
                        results = list(
                            pool.imap(_worker_execute, batch, chunksize=chunk)
                        )
                finally:
                    _WORKER_SOLVER = None
        if results is None:
            results = []
            for query in batch:
                enqueued = perf_counter()
                try:
                    result = _execute(solver, query)
                except Exception as exc:
                    # Preserve the completed queries' snapshots; the
                    # merge below runs before the failure re-raises.
                    results.append(_WorkerFailure(error=exc))
                    break
                # Sequential: the query starts the instant it is
                # dequeued, so the queue wait is zero by construction.
                result.timing = {
                    "enqueued_at_s": enqueued, "started_at_s": enqueued,
                }
                results.append(result)
        # A failed query must still fail the batch — but only after
        # the successful results' observability snapshots are merged,
        # so one bad query no longer blinds the whole batch.
        failure = next((r for r in results if isinstance(r, _WorkerFailure)), None)
        completed = [r for r in results if not isinstance(r, _WorkerFailure)]
        # Merge the parent's enqueue half into each completed result's
        # timing and rebase onto the process-wide serving epoch — on
        # the failure path too, exactly like the snapshot merges below:
        # a bad query must not discard its siblings' queue-wait
        # attribution.  The epoch (not the batch start) is the origin
        # so offsets from successive batches and from the resident
        # service tier share one timeline.
        for result in completed:
            timing = dict(result.timing or {})
            enqueued = timing.get("enqueued_at_s")
            if enqueued is None:
                enqueued = t_enqueue if t_enqueue is not None else t_base
            started = timing.get("started_at_s", enqueued)
            queue_wait = max(0.0, started - enqueued)
            result.timing = {
                "enqueued_at_s": enqueued - epoch,
                "started_at_s": started - epoch,
                "queue_wait_s": queue_wait,
            }
            if metrics is not None:
                metrics.observe(
                    "queue_wait_ms",
                    queue_wait * 1e3,
                    buckets=LOADTEST_LATENCY_BUCKETS_MS,
                )
        if stats is not None:
            for result in completed:
                stats.merge(result.stats)
        if metrics is not None:
            for result in completed:
                if result.metrics is not None:
                    metrics.merge(result.metrics)
        if tracer is not None:
            # Re-root every query tree (local or worker-recorded)
            # under the batch span *before* ending it, so the batch
            # span's interval covers all of its children.
            for result in completed:
                if result.trace is not None:
                    tracer.absorb(result.trace, parent=batch_span)
            tracer.end(batch_span)
            batch_span = None
        if failure is not None:
            raise failure.error
        results = completed
    finally:
        if own_metrics:
            solver.metrics = None
        if own_tracer:
            solver.tracer = None
        if batch_span is not None:
            tracer.end(batch_span)  # error path: close the batch span
    return results
