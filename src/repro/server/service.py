"""Long-lived query service: resident workers over shared-memory CSR.

The fork-per-batch pool (:mod:`repro.server.pool`) re-pays warm-up —
JIT compilation, landmark residency, prepared-category construction —
on every batch, because nothing survives between pools.
:class:`QueryService` inverts that: worker processes are spawned
**once**, hold the CSR graph arrays in
:mod:`multiprocessing.shared_memory` segments (one physical copy for
the whole pool, mapped read-only — see :mod:`repro.server.shared`),
and keep a process-local :class:`~repro.core.kpj.PreparedCategory` LRU
warm across requests, so steady-state queries pay only their own
search.

Front-end structure (asyncio, one driver task per worker):

* **admission** — a bounded pending set; a submission that would
  exceed ``max_pending`` is shed immediately with a clean
  :class:`~repro.exceptions.QueryError` (counter
  ``service_rejected_overload``) instead of queueing without bound;
* **deadlines** — an admitted query carries an absolute deadline;
  cancellation is cooperative, checked at phase boundaries: before
  dispatch in the parent, and before the ``prepare`` and ``search``
  phases inside the worker (:class:`DeadlineExceeded`, counter
  ``service_deadline_exceeded``).  A search that has already started
  runs to completion — its result is returned, late;
* **coalescing** — requests route to workers by destination-set
  affinity (stable hash), and each driver tracks which prepare keys
  its worker holds warm: concurrent identical ``(category, k)``
  requests trigger exactly **one** explicit prepare op (counter
  ``service_prepares``); the rest ride the warm entry (counter
  ``service_prepares_coalesced``);
* **fault recovery** — a worker that dies mid-query fails that query
  with a clean :class:`~repro.exceptions.QueryError` (counter
  ``service_worker_deaths``) and is respawned by re-forking the
  parent, which still maps the same shared segments — the replacement
  inherits the graph state without re-exporting anything.

Telemetry is the stack every other surface already uses: a
:class:`~repro.obs.metrics.MetricsRegistry` holding the service
counters, log-spaced ``queue_wait_ms``/``service_ms`` histograms, the
one-time ``warmup`` phase, and the merge of every per-query snapshot
(§3g work counters included); Prometheus exposition via
:meth:`QueryService.render_prom`; per-query ids minted fork-safely by
the workers (:func:`repro.obs.log.new_query_id`).  ``QueryResult``
timing offsets are rebased onto the process-wide
:func:`~repro.server.epoch.service_epoch`, so histograms are
comparable across the pool and service targets.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from time import perf_counter, sleep as _sleep
from typing import Sequence

from repro.core.stats import SearchStats
from repro.exceptions import QueryError
from repro.obs.metrics import LOADTEST_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.server.epoch import service_epoch
from repro.server.pool import BatchQuery, _coerce, _execute
from repro.server.shared import SharedCSR

__all__ = ["DeadlineExceeded", "QueryService", "run_service_batch"]


class DeadlineExceeded(QueryError):
    """A query's deadline lapsed at a cooperative cancellation point."""


#: Solver and shared-CSR handle inherited by forked workers.  Set only
#: around :meth:`QueryService._spawn`; ``None`` otherwise.
_SERVICE_SOLVER = None
_SERVICE_SHARED = None


def _check_deadline(deadline: float | None, boundary: str) -> None:
    """Cooperative cancellation point: raise if the deadline lapsed."""
    if deadline is None:
        return
    now = perf_counter()
    if now > deadline:
        raise DeadlineExceeded(
            f"deadline exceeded at the {boundary} phase boundary "
            f"({(now - deadline) * 1e3:.1f} ms past budget)"
        )


def _serve_query(solver, query: BatchQuery, deadline: float | None):
    """Worker body for one query, with phase-boundary deadline checks.

    The explicit :meth:`~repro.core.kpj.KPJSolver.prepare` both makes
    the prepare/search boundary a real cancellation point and
    guarantees the query's own internal prepare is a cache hit — the
    steady-state the service exists to provide.
    """
    started = perf_counter()
    _check_deadline(deadline, "prepare")
    solver.prepare(category=query.category, destinations=query.destinations)
    _check_deadline(deadline, "search")
    result = _execute(solver, query)
    result.timing = {"started_at_s": started}
    return result


def _worker_main(conn, index: int) -> None:
    """Resident worker loop: serve ops off the pipe until shutdown.

    Runs in a forked child; the solver (graph, landmark index, warm
    prepared cache) and the shared-CSR handle arrive via fork
    inheritance, so nothing heavy ever crosses the pipe — only
    :class:`BatchQuery` requests and ``QueryResult`` responses.
    """
    solver = _SERVICE_SOLVER
    shared = _SERVICE_SHARED
    conn.send(("ready", {"pid": os.getpid(), "worker": index}))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if op == "shutdown":
            conn.send(("ok", None))
            break
        try:
            if op == "query":
                _, query, deadline = msg
                out = _serve_query(solver, query, deadline)
            elif op == "prepare":
                _, category, destinations = msg
                prepared = solver.prepare(
                    category=category, destinations=destinations
                )
                prepared.csr_overlay()
                out = solver.cache_info()
            elif op == "sleep":
                # Fault-injection/test helper: hold the worker busy.
                _sleep(msg[1])
                out = msg[1]
            elif op == "ping":
                csr = solver.graph.csr_cache
                out = {
                    "pid": os.getpid(),
                    "worker": index,
                    "segments": list(shared.segment_names) if shared else [],
                    "csr_readonly": bool(
                        csr is not None and not csr.indptr.flags.writeable
                    ),
                    "cache": solver.cache_info(),
                }
            else:
                raise QueryError(f"unknown service op {op!r}")
        except Exception as exc:
            try:
                conn.send(("err", exc))
            except Exception:
                conn.send(("err", QueryError(str(exc))))
        else:
            conn.send(("ok", out))


class _WorkerDied(Exception):
    """Internal: the pipe peer vanished mid-roundtrip."""

    def __init__(self, pid):
        super().__init__(f"worker pid {pid} died")
        self.pid = pid


@dataclass
class _Resident:
    """Parent-side handle for one resident worker process."""

    index: int
    process: multiprocessing.Process
    conn: object
    #: Prepare keys this worker holds warm (LRU order, parent's view).
    warm: OrderedDict = field(default_factory=OrderedDict)
    #: Serialises pipe roundtrips — the driver already sends one
    #: request at a time, but :meth:`QueryService.ping` may call from
    #: another thread and must not interleave messages.
    lock: threading.Lock = field(default_factory=threading.Lock)

    def call(self, message):
        """Blocking request/response roundtrip (runs in an executor
        thread).  Watches the process sentinel alongside the pipe so a
        SIGKILL'd worker surfaces as :class:`_WorkerDied` instead of a
        hang."""
        with self.lock:
            return self._call(message)

    def _call(self, message):
        try:
            self.conn.send(message)
            while True:
                ready = connection_wait([self.conn, self.process.sentinel])
                if self.conn in ready:
                    try:
                        return self.conn.recv()
                    except (EOFError, OSError):
                        raise _WorkerDied(self.process.pid) from None
                if self.process.sentinel in ready and not self.conn.poll():
                    raise _WorkerDied(self.process.pid)
        except (BrokenPipeError, OSError):
            raise _WorkerDied(self.process.pid) from None


@dataclass
class _Request:
    """One admitted unit of work queued for a driver."""

    op: str  # "query" | "sleep"
    query: BatchQuery | None
    key: tuple | None
    deadline: float | None
    enqueued: float
    future: asyncio.Future
    payload: float = 0.0  # sleep seconds


class QueryService:
    """The resident-worker serving tier.  See the module docstring.

    Two lifecycles:

    * ``start()`` / ``shutdown()`` — the service owns a background
      event-loop thread; ``submit``/``query``/``solve`` are plain
      synchronous calls usable from any thread (this is what
      ``run_batch(engine="service")`` and the load-test replay use);
    * ``await start_async()`` / ``await astop()`` — the service joins
      the caller's running loop; ``await asubmit(...)`` serves
      requests (this is what ``kpj serve``'s HTTP front-end uses).

    Parameters
    ----------
    solver:
        A fully built :class:`~repro.core.kpj.KPJSolver`.  Its frozen
        graph's CSR cache is moved into shared memory at start; if it
        has no :class:`MetricsRegistry`, one is installed (before the
        fork) so per-query snapshots exist for the service telemetry.
    workers:
        Resident processes to fork.
    max_pending:
        Admission bound: submissions beyond this many in-flight
        queries are shed with a ``QueryError``.
    default_timeout_s:
        Deadline applied to queries submitted without an explicit
        ``timeout_s``; ``None`` means no deadline.
    prewarm:
        Category names (or ``(category, destinations)`` pairs) whose
        prepared state is built in the parent before forking, so every
        worker starts warm and the cost lands in the one-time
        ``warmup`` phase.
    """

    def __init__(
        self,
        solver,
        workers: int = 2,
        max_pending: int = 64,
        default_timeout_s: float | None = None,
        prewarm: Sequence = (),
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise QueryError(f"service needs at least one worker, got {workers}")
        if max_pending < 1:
            raise QueryError(f"max_pending must be >= 1, got {max_pending}")
        self.solver = solver
        self.workers = int(workers)
        self.max_pending = int(max_pending)
        self.default_timeout_s = default_timeout_s
        self.prewarm = tuple(prewarm)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = SearchStats()
        self._shared: SharedCSR | None = None
        self._saved_csr = None
        self._residents: list[_Resident] = []
        self._queues: list[asyncio.Queue] = []
        self._drivers: list[asyncio.Task] = []
        self._prewarmed: set[tuple] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._own_metrics = False
        self._pending = 0
        self._started = False
        self._closed = False
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Spawn workers and the background event loop; blocks until
        every worker has completed its ready handshake."""
        self._prepare_start()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="kpj-service-loop", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self._start_drivers(), self._loop
        ).result(timeout=60)
        self._started = True
        return self

    async def start_async(self) -> "QueryService":
        """Like :meth:`start`, joining the caller's running loop."""
        self._prepare_start()
        self._loop = asyncio.get_running_loop()
        await self._start_drivers()
        self._started = True
        return self

    def _prepare_start(self) -> None:
        if self._started or self._closed:
            raise QueryError("service already started")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            raise QueryError(
                "the resident-worker service needs the fork start method; "
                "use run_batch(engine='pool') on this platform"
            ) from None
        service_epoch()  # pin the timing origin before anything enqueues
        t0 = perf_counter()
        self._warmup()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers + 2, thread_name_prefix="kpj-service"
        )
        for index in range(self.workers):
            self._residents.append(self._spawn(ctx, index))
        # One-time cost — JIT, shared-memory export, prewarm, forks —
        # lands under the same ``warmup`` phase the batch pool uses,
        # so "paid once at startup" is visible in the exposition.
        self.metrics.observe_phase("warmup", perf_counter() - t0)
        self._started_at = perf_counter()

    def _warmup(self) -> None:
        solver = self.solver
        if solver.metrics is None:
            # Installed before the fork so workers produce per-query
            # snapshots; removed again at shutdown.
            solver.metrics = MetricsRegistry()
            self._own_metrics = True
        if getattr(solver, "kernel", None) == "native":
            from repro.pathing import native

            native.warmup_jit()
        from repro.graph.csr import shared_csr

        # Export the in-process CSR into shared segments and point the
        # graph's cache at the shared views so every structure built
        # from here on (overlays, landmark residency, worker forks)
        # references shared pages.  The pre-service cache is restored
        # at teardown so the solver leaves the service as it entered.
        plain = shared_csr(solver.graph)
        self._shared = SharedCSR.export(plain)
        self._saved_csr = plain
        solver.graph.csr_cache = self._shared.graph
        for item in self.prewarm:
            category, destinations = (
                (item, None) if isinstance(item, str) else item
            )
            try:
                prepared = solver.prepare(
                    category=category, destinations=destinations
                )
                prepared.csr_overlay()
            except QueryError:
                continue
            self._prewarmed.add(self._prepare_key(category, destinations))

    def _spawn(self, ctx, index: int) -> _Resident:
        global _SERVICE_SOLVER, _SERVICE_SHARED
        parent_conn, child_conn = ctx.Pipe()
        _SERVICE_SOLVER = self.solver
        _SERVICE_SHARED = self._shared
        try:
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, index),
                name=f"kpj-service-worker-{index}",
                daemon=True,
            )
            process.start()
        finally:
            _SERVICE_SOLVER = None
            _SERVICE_SHARED = None
        child_conn.close()
        if not parent_conn.poll(60):
            process.terminate()
            raise QueryError(f"resident worker {index} failed to start")
        tag, _info = parent_conn.recv()
        if tag != "ready":  # pragma: no cover - protocol violation
            process.terminate()
            raise QueryError(f"resident worker {index} bad handshake: {tag!r}")
        warm = OrderedDict((key, None) for key in sorted(self._prewarmed))
        return _Resident(index=index, process=process, conn=parent_conn, warm=warm)

    async def _start_drivers(self) -> None:
        self._queues = [asyncio.Queue() for _ in range(self.workers)]
        self._drivers = [
            asyncio.ensure_future(self._drive(index))
            for index in range(self.workers)
        ]

    def shutdown(self) -> None:
        """Stop drivers, retire workers, unlink shared memory.

        Idempotent.  With an owned background loop the loop thread is
        stopped and joined; with an external loop (``start_async``)
        use :meth:`astop` instead.
        """
        if self._closed:
            return
        if self._loop is not None and self._thread is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self.astop(), self._loop
                ).result(timeout=60)
            finally:
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(timeout=30)
                self._loop.close()
                self._loop = None
                self._thread = None
        else:
            self._teardown()

    async def astop(self) -> None:
        """Async half of :meth:`shutdown` (for external loops)."""
        if self._closed:
            return
        self._closed = True
        for queue in self._queues:
            queue.put_nowait(None)
        if self._drivers:
            await asyncio.gather(*self._drivers, return_exceptions=True)
        self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        for resident in self._residents:
            try:
                resident.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
            resident.process.join(timeout=5)
            if resident.process.is_alive():  # pragma: no cover - stuck worker
                resident.process.terminate()
                resident.process.join(timeout=5)
            try:
                resident.conn.close()
            except OSError:
                pass
        self._residents = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._shared is not None:
            self._shared.unlink()
            self.solver.graph.csr_cache = self._saved_csr
        if self._own_metrics:
            self.solver.metrics = None
            self._own_metrics = False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def asubmit(self, query, timeout_s: float | None = None):
        """Admit one query and await its :class:`QueryResult`.

        Raises ``QueryError`` straight from admission when the pending
        bound is hit; deadline/worker failures surface when awaited.
        """
        request = self._admit(_coerce(query), "query", timeout_s)
        return await request.future

    def submit(self, query, timeout_s: float | None = None):
        """Thread-safe submission; returns a ``concurrent.futures``
        future resolving to the :class:`QueryResult`."""
        return self._submit_threadsafe(_coerce(query), "query", timeout_s)

    def query(self, query, timeout_s: float | None = None):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(query, timeout_s=timeout_s).result()

    def solve(self, queries: Sequence, timeout_s: float | None = None) -> list:
        """Submit a batch and return results in submission order."""
        futures = [self.submit(q, timeout_s=timeout_s) for q in queries]
        return [f.result() for f in futures]

    def sleep(self, seconds: float, worker: int = 0):
        """Test/fault-injection helper: occupy ``worker`` for
        ``seconds``; returns a future."""
        request = BatchQuery(source=0)
        return self._submit_threadsafe(
            request, "sleep", None, payload=float(seconds), route=worker
        )

    def _submit_threadsafe(self, query, op, timeout_s, payload=0.0, route=None):
        if self._loop is None or not self._started:
            raise QueryError("service is not running (call start() first)")

        async def _run():
            request = self._admit(query, op, timeout_s, payload, route)
            return await request.future

        return asyncio.run_coroutine_threadsafe(_run(), self._loop)

    def _admit(
        self, query, op, timeout_s, payload=0.0, route=None
    ) -> _Request:
        """Admission control; loop-thread only.  Raises on overflow."""
        if self._closed or not self._started:
            raise QueryError("service is not running (call start() first)")
        if self._pending >= self.max_pending:
            self.metrics.inc("service_rejected_overload")
            raise QueryError(
                f"service overloaded: {self._pending} queries pending "
                f"(max_pending={self.max_pending})"
            )
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        enqueued = perf_counter()
        request = _Request(
            op=op,
            query=query if op == "query" else None,
            key=self._query_key(query) if op == "query" else None,
            deadline=enqueued + timeout_s if timeout_s is not None else None,
            enqueued=enqueued,
            future=asyncio.get_running_loop().create_future(),
            payload=payload,
        )
        self._pending += 1
        index = self._route(query) if route is None else route % self.workers
        self._queues[index].put_nowait(request)
        return request

    @staticmethod
    def _prepare_key(category, destinations) -> tuple:
        if category is not None:
            return ("category", category)
        return ("destinations", tuple(destinations or ()))

    def _query_key(self, query: BatchQuery) -> tuple:
        return self._prepare_key(query.category, query.destinations)

    def _route(self, query: BatchQuery) -> int:
        """Destination-set affinity: identical prepare keys always land
        on the same worker, which is what makes coalescing local state.
        ``crc32`` (not ``hash``) so routing is stable across runs."""
        basis = repr(self._query_key(query)).encode()
        return zlib.crc32(basis) % self.workers

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    async def _drive(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            request = await queue.get()
            if request is None:
                break
            try:
                result = await self._dispatch(index, request)
            except Exception as exc:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            else:
                if not request.future.cancelled():
                    request.future.set_result(result)
            finally:
                self._pending -= 1

    async def _dispatch(self, index: int, request: _Request):
        resident = self._residents[index]
        if request.deadline is not None:
            now = perf_counter()
            if now > request.deadline:
                self.metrics.inc("service_deadline_exceeded")
                raise DeadlineExceeded(
                    f"deadline exceeded before dispatch: queued "
                    f"{(now - request.enqueued) * 1e3:.1f} ms against a "
                    f"{(request.deadline - request.enqueued) * 1e3:.1f} ms "
                    f"budget"
                )
        if request.op == "sleep":
            await self._roundtrip(resident, ("sleep", request.payload))
            return None
        query = request.query
        if request.key in resident.warm:
            resident.warm.move_to_end(request.key)
            self.metrics.inc("service_prepares_coalesced")
        else:
            self.metrics.inc("service_prepares")
            await self._roundtrip(
                resident, ("prepare", query.category, query.destinations)
            )
            resident.warm[request.key] = None
            bound = max(1, self.solver.prepared_cache_size)
            while len(resident.warm) > bound:
                resident.warm.popitem(last=False)
        result = await self._roundtrip(
            resident, ("query", query, request.deadline)
        )
        epoch = service_epoch()
        timing = dict(result.timing or {})
        started = timing.get("started_at_s", request.enqueued)
        queue_wait = max(0.0, started - request.enqueued)
        result.timing = {
            "enqueued_at_s": request.enqueued - epoch,
            "started_at_s": started - epoch,
            "queue_wait_s": queue_wait,
        }
        self.metrics.inc("service_queries")
        self.metrics.observe(
            "queue_wait_ms",
            queue_wait * 1e3,
            buckets=LOADTEST_LATENCY_BUCKETS_MS,
        )
        self.metrics.observe(
            "service_ms", result.elapsed_ms, buckets=LOADTEST_LATENCY_BUCKETS_MS
        )
        self.stats.merge(result.stats)
        if result.metrics is not None:
            self.metrics.merge(result.metrics)
        return result

    async def _roundtrip(self, resident: _Resident, message):
        loop = asyncio.get_running_loop()
        try:
            tag, payload = await loop.run_in_executor(
                self._executor, resident.call, message
            )
        except _WorkerDied as died:
            self.metrics.inc("service_worker_deaths")
            await loop.run_in_executor(
                self._executor, self._respawn, resident.index
            )
            raise QueryError(
                f"resident worker {resident.index} (pid {died.pid}) died "
                f"mid-query; respawned"
            ) from None
        if tag == "err":
            if isinstance(payload, DeadlineExceeded):
                self.metrics.inc("service_deadline_exceeded")
            raise payload
        return payload

    def _respawn(self, index: int) -> None:
        """Replace a dead worker; the fresh fork maps the same shared
        segments (the parent never dropped them)."""
        old = self._residents[index]
        try:
            old.conn.close()
        except OSError:
            pass
        old.process.join(timeout=5)
        ctx = multiprocessing.get_context("fork")
        self._residents[index] = self._spawn(ctx, index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Queries admitted but not yet resolved."""
        return self._pending

    def worker_pids(self) -> list[int]:
        """Current resident pids, by worker index."""
        return [r.process.pid for r in self._residents]

    def ping(self, worker: int = 0) -> dict:
        """Worker introspection roundtrip (pid, segment names, cache)."""
        resident = self._residents[worker]
        tag, payload = resident.call(("ping",))
        if tag == "err":
            raise payload
        return payload

    def shared_segments(self) -> tuple[str, ...]:
        """Names of the shared-memory segments backing the CSR."""
        return self._shared.segment_names if self._shared is not None else ()

    def render_prom(self, prefix: str = "kpj") -> str:
        """Prometheus exposition of the service registry."""
        return self.metrics.render_prom(prefix=prefix)

    def describe(self) -> dict:
        """JSON-ready service status (the ``/status`` endpoint body)."""
        return {
            "workers": self.workers,
            "worker_pids": self.worker_pids(),
            "pending": self._pending,
            "max_pending": self.max_pending,
            "uptime_s": (
                perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "segments": list(self.shared_segments()),
            "kernel": getattr(self.solver, "kernel", None),
            "metrics": self.metrics.report(),
            "work": self.stats.as_dict(),
        }


def run_service_batch(
    solver,
    queries: Sequence,
    workers: int = 1,
    stats=None,
    metrics=None,
    tracer=None,
    service: QueryService | None = None,
) -> list:
    """`run_batch` semantics over the service tier.

    Either routes through an already-running ``service`` or spins a
    private one for the call.  Results come back in submission order;
    a failed query fails the batch with its original exception, but
    only after the successful results' stats/metrics snapshots are
    merged — the same contract as the pool path.
    """
    batch = [_coerce(q) for q in queries]
    if not batch:
        return []
    own = service is None
    if own:
        service = QueryService(
            solver,
            workers=max(1, int(workers)),
            max_pending=len(batch) + max(1, int(workers)),
        )
        service.start()
    try:
        futures = [service.submit(q) for q in batch]
        results: list = []
        failure: Exception | None = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                if failure is None:
                    failure = exc
        if stats is not None:
            for result in results:
                stats.merge(result.stats)
        if metrics is not None:
            if own:
                # The service registry already merged every per-query
                # snapshot plus the one-time warmup and the service
                # counters/histograms — hand the whole thing over.
                metrics.merge(service.metrics)
            else:
                for result in results:
                    if result.metrics is not None:
                        metrics.merge(result.metrics)
        if tracer is not None:
            span = tracer.begin(
                "batch", cat="batch", queries=len(batch), workers=service.workers
            )
            for result in results:
                if result.trace is not None:
                    tracer.absorb(result.trace, parent=span)
            tracer.end(span)
        if failure is not None:
            raise failure
        return results
    finally:
        if own:
            service.shutdown()
