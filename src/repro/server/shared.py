"""Shared-memory residency for the CSR graph arrays.

The service tier keeps one physical copy of the graph's CSR triple
(``indptr``/``indices``/``weights`` — exactly what
:meth:`~repro.graph.csr.CSRGraph.typed_arrays` hands the kernels) in
named ``multiprocessing.shared_memory`` segments.  The parent exports
the arrays once at service start; every resident worker — including
workers respawned after a crash — maps the same segments, so worker
memory stays bounded by one graph regardless of pool size and a
respawn inherits the graph state instead of re-materialising it.

The numpy views built over the segments have ``writeable=False`` set,
which is the enforcement layer Python actually offers for "mapped
read-only": any kernel that tried to scribble on the shared graph
would raise instead of corrupting every sibling worker.

Lifecycle rules (they matter — get them wrong and you leak ``/dev/shm``
segments or unmap memory still referenced by live arrays):

* the **parent** creates the segments and is the only process that
  ever calls :meth:`SharedCSR.unlink` (at service shutdown).  Its own
  mapping stays open — the exported :class:`CSRGraph` views keep the
  buffer alive, and ``mmap`` refuses to unmap exported buffers anyway
  — but once unlinked the name is gone, which is what the
  no-leaked-segments assertion checks;
* **forked workers** inherit the parent's mapping for free and never
  register with the ``resource_tracker``;
* a process that *attaches* by name (:meth:`SharedCSR.attach`, used by
  tests and by any non-forked consumer) immediately unregisters the
  segments from its resource tracker: the parent owns unlinking, and a
  second registration would make the tracker unlink segments still in
  use when the attaching process exits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import count
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.exceptions import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["SharedCSR", "SharedCSRLayout", "active_segments"]

#: Per-process sequence number making segment names unique when one
#: process exports several graphs (e.g. a test spinning many services).
_EXPORT_SEQ = count()

#: Keep-alive registry for exported handles.  numpy views do not pin
#: the ``SharedMemory`` objects backing them: if an exported handle
#: were garbage-collected, ``SharedMemory.__del__`` would unmap the
#: segments and every view handed out (a frozen graph's ``csr_cache``,
#: a prepared overlay) would dangle — a segfault, not an exception.
#: Exports are therefore pinned for the life of the process; ``unlink``
#: still removes the *names* at shutdown, so nothing leaks in
#: ``/dev/shm``, and the mapping itself is reclaimed at process exit.
_EXPORTED: list = []

#: The three parts of the CSR triple, in layout order.
_PARTS = ("indptr", "indices", "weights")


@dataclass(frozen=True)
class SharedCSRLayout:
    """Picklable descriptor of an exported CSR: segment names + shape.

    Everything :meth:`SharedCSR.attach` needs to rebuild the read-only
    views in another process; dtypes are fixed by the
    ``typed_arrays`` contract (``int64``/``int64``/``float64``).
    """

    names: tuple[str, str, str]
    n: int
    m: int


class SharedCSR:
    """A CSR snapshot whose arrays live in named shared memory."""

    def __init__(
        self,
        layout: SharedCSRLayout,
        segments: tuple[shared_memory.SharedMemory, ...],
        graph: CSRGraph,
        owner: bool,
    ) -> None:
        self.layout = layout
        self._segments = segments
        self.graph = graph
        self._owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def export(cls, csr: CSRGraph, prefix: str = "kpj") -> "SharedCSR":
        """Copy ``csr``'s typed arrays into fresh shared segments.

        Returns the owning handle; its :attr:`graph` is a
        :class:`CSRGraph` over read-only views of the segments, ready
        to be installed as a frozen graph's ``csr_cache`` so that
        every overlay/landmark structure built afterwards references
        shared pages.
        """
        arrays = csr.typed_arrays()
        token = f"{prefix}_{os.getpid():x}_{next(_EXPORT_SEQ)}"
        names = tuple(f"{token}_{part}" for part in _PARTS)
        segments: list[shared_memory.SharedMemory] = []
        try:
            for name, array in zip(names, arrays):
                # A zero-edge graph has empty indices/weights; shm
                # segments cannot be zero-sized, so round up one byte.
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
                view[:] = array
                segments.append(seg)
        except BaseException:
            for seg in segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - race only
                    pass
            raise
        layout = SharedCSRLayout(names=names, n=csr.n, m=csr.m)
        graph = cls._views(layout, tuple(segments))
        handle = cls(layout, tuple(segments), graph, owner=True)
        _EXPORTED.append(handle)  # see the registry comment above
        return handle

    @classmethod
    def attach(cls, layout: SharedCSRLayout) -> "SharedCSR":
        """Map an already-exported CSR in this process, read-only.

        Raises :class:`GraphError` (wrapping ``FileNotFoundError``)
        when the segments are gone — i.e. after the owner unlinked
        them.  The attached process is unregistered from the resource
        tracker immediately: unlinking is the exporter's job alone.
        """
        segments: list[shared_memory.SharedMemory] = []
        try:
            for name in layout.names:
                seg = shared_memory.SharedMemory(name=name)
                segments.append(seg)
                # SharedMemory(name=...) registers with this process's
                # resource tracker, which would unlink the segment at
                # tracker shutdown even though the exporter still owns
                # it.  Undo the registration; only the owner unlinks.
                resource_tracker.unregister(seg._name, "shared_memory")
        except FileNotFoundError as exc:
            for seg in segments:
                seg.close()
            raise GraphError(
                f"shared CSR segment {exc.filename or '?'} is gone "
                "(service shut down?)"
            ) from None
        graph = cls._views(layout, tuple(segments))
        return cls(layout, tuple(segments), graph, owner=False)

    @staticmethod
    def _views(
        layout: SharedCSRLayout,
        segments: tuple[shared_memory.SharedMemory, ...],
    ) -> CSRGraph:
        shapes = (layout.n + 1, layout.m, layout.m)
        dtypes = (np.int64, np.int64, np.float64)
        views = []
        for seg, shape, dtype in zip(segments, shapes, dtypes):
            view = np.ndarray((shape,), dtype=dtype, buffer=seg.buf)
            view.flags.writeable = False
            views.append(view)
        return CSRGraph(indptr=views[0], indices=views[1], weights=views[2])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def segment_names(self) -> tuple[str, str, str]:
        """The three segment names (``*_indptr``/``*_indices``/``*_weights``)."""
        return self.layout.names

    def unlink(self) -> None:
        """Remove the segment names (owner only; idempotent).

        Existing mappings — the exporter's own views, forked workers —
        stay valid until their processes exit; new attaches fail.
        """
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        for seg in self._segments:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Unmap this process's views.

        After this the handle's :attr:`graph` arrays are dangling and
        must not be touched — only call once the attaching process is
        done with the graph.  The service itself never closes: the
        parent's views back live solver state for the whole process
        lifetime and the OS reclaims the mapping at exit.  The
        ``BufferError`` guard covers interpreters that refuse to unmap
        while exports exist rather than dangling them.
        """
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - interpreter-dependent
                pass


def active_segments(prefix: str = "kpj") -> list[str]:
    """Names of live shared-memory segments under ``prefix``.

    The leak check used by tests and the CI ``service-smoke`` job:
    after a service shuts down this must not list any of its segments.
    Linux exposes named segments in ``/dev/shm``; elsewhere the check
    degrades to an empty list (nothing to assert against).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(prefix + "_")
    )
