"""Result validation — the KPJ answer contract, checkable.

A downstream system integrating a top-k path engine wants to *verify*
answers cheaply rather than trust them: :func:`validate_result` checks
every structural property a correct KPJ answer must satisfy in
``O(total path length)`` and returns the violations; for small
instances :func:`validate_against_oracle` additionally compares the
lengths against the brute-force enumeration.

These checks are also what the package's own property-based tests
assert, so the contract is written down exactly once.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.result import QueryResult
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = [
    "validate_instance",
    "validate_result",
    "validate_against_oracle",
    "ValidationReport",
]


class ValidationReport:
    """Outcome of a validation: a (possibly empty) list of violations."""

    def __init__(self) -> None:
        self.violations: list[str] = []

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` listing the violations, if any."""
        if self.violations:
            raise AssertionError(
                "invalid query result:\n  " + "\n  ".join(self.violations)
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"ValidationReport({status})"


def validate_instance(
    n: int,
    edges: Sequence[tuple[int, int, float]],
    sources: Sequence[int],
    destinations: Sequence[int],
    k: int,
    allow_parallel_edges: bool = False,
) -> None:
    """Reject a malformed ``(graph spec, query)`` instance up front.

    The fuzzing harness (and any caller replaying an untrusted repro
    file) feeds raw edge lists and query parameters into the system;
    this is the single choke point that turns every malformed input —
    negative or non-finite weights, self-loops, duplicate edges,
    out-of-range node ids, empty endpoint sets, ``k <= 0`` — into a
    clean :class:`~repro.exceptions.QueryError` instead of a deep
    stack trace from whichever layer happens to trip over it first.

    ``allow_parallel_edges=True`` permits duplicate ``(u, v)`` pairs
    (the generator's parallel-edge shape; :meth:`DiGraph.freeze`
    collapses them to the minimum weight), while still rejecting
    everything else.
    """
    if n <= 0:
        raise QueryError(f"instance needs at least one node, got n={n}")
    seen_pairs: set[tuple[int, int]] = set()
    for u, v, w in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"edge ({u}, {v}) out of node range [0, {n})")
        if u == v:
            raise QueryError(f"self-loop on node {u} is not a valid edge")
        if not math.isfinite(w) or w < 0.0:
            raise QueryError(
                f"edge ({u}, {v}) has invalid weight {w!r}; "
                "weights must be finite and >= 0"
            )
        if (u, v) in seen_pairs and not allow_parallel_edges:
            raise QueryError(f"duplicate edge ({u}, {v}) in instance")
        seen_pairs.add((u, v))
    if not sources:
        raise QueryError("query needs at least one source node")
    if not destinations:
        raise QueryError("query needs at least one destination node")
    for role, nodes in (("source", sources), ("destination", destinations)):
        for node in nodes:
            if not 0 <= node < n:
                raise QueryError(f"{role} node {node} out of range [0, {n})")
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")


def validate_result(
    graph: DiGraph,
    result: QueryResult,
    sources: Sequence[int],
    destinations: Sequence[int],
    k: int,
    tolerance: float = 1e-9,
) -> ValidationReport:
    """Check the structural contract of a KPJ/GKPJ answer.

    Verifies that every path: starts in ``sources``, ends in
    ``destinations``, is a simple path of ``graph``, and carries its
    true weight as ``length``; that lengths are non-decreasing; that
    paths are pairwise distinct; and that at most ``k`` are returned.
    (Optimality itself needs an oracle — see
    :func:`validate_against_oracle`.)
    """
    report = ValidationReport()
    source_set = set(sources)
    destination_set = set(destinations)
    if len(result.paths) > k:
        report.add(f"{len(result.paths)} paths returned for k={k}")
    previous = float("-inf")
    seen: set[tuple[int, ...]] = set()
    for rank, path in enumerate(result.paths, start=1):
        where = f"path #{rank} {path.nodes}"
        if not path.nodes:
            report.add(f"{where}: empty")
            continue
        if path.nodes[0] not in source_set:
            report.add(f"{where}: starts at {path.nodes[0]}, not a source")
        if path.nodes[-1] not in destination_set:
            report.add(f"{where}: ends at {path.nodes[-1]}, not a destination")
        if len(set(path.nodes)) != len(path.nodes):
            report.add(f"{where}: revisits a node")
        try:
            weight = graph.path_weight(path.nodes)
        except Exception as exc:  # GraphError: missing hop
            report.add(f"{where}: not a path of the graph ({exc})")
        else:
            if abs(weight - path.length) > tolerance:
                report.add(
                    f"{where}: declared length {path.length} but edges sum "
                    f"to {weight}"
                )
        if path.length < previous - tolerance:
            report.add(f"{where}: lengths decrease ({previous} -> {path.length})")
        previous = path.length
        if path.nodes in seen:
            report.add(f"{where}: duplicate path")
        seen.add(path.nodes)
    return report


def validate_against_oracle(
    graph: DiGraph,
    result: QueryResult,
    sources: Sequence[int],
    destinations: Sequence[int],
    k: int,
    tolerance: float = 1e-9,
) -> ValidationReport:
    """Full validation including optimality, via brute-force enumeration.

    Exponential in the graph size — intended for small graphs (tests,
    debugging a production incident on an extracted subgraph).
    """
    from repro.baselines.brute_force import brute_force_topk

    report = validate_result(graph, result, sources, destinations, k, tolerance)
    pool = []
    for source in set(sources):
        pool.extend(brute_force_topk(graph, source, destinations, k))
    pool.sort()
    expected = [p.length for p in pool[:k]]
    got = list(result.lengths)
    if len(got) != len(expected):
        report.add(f"expected {len(expected)} paths, got {len(got)}")
    for rank, (a, b) in enumerate(zip(got, expected), start=1):
        if abs(a - b) > tolerance:
            report.add(f"rank {rank}: length {a}, oracle says {b}")
    return report
