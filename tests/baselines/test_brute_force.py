"""Unit tests for the brute-force enumeration oracle itself."""

from repro.baselines.brute_force import brute_force_topk, enumerate_simple_paths
from repro.graph.digraph import DiGraph


class TestEnumeration:
    def test_diamond_enumerates_both_routes(self, diamond_graph):
        paths = list(enumerate_simple_paths(diamond_graph, 0, (3,)))
        assert sorted(p.nodes for p in paths) == [(0, 1, 3), (0, 2, 3)]

    def test_paths_are_simple(self):
        g = DiGraph.from_edges(
            4,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (1, 3, 1.0)],
        )
        for path in enumerate_simple_paths(g, 0, (3,)):
            assert len(set(path.nodes)) == len(path.nodes)
            assert g.is_simple_path(path.nodes)

    def test_source_in_destination_set_yields_trivial_path(self, line_graph):
        paths = list(enumerate_simple_paths(line_graph, 2, (2, 4)))
        assert (2,) in [p.nodes for p in paths]

    def test_path_may_continue_past_a_destination(self, line_graph):
        # destinations {1, 3}: the path 0-1-2-3 passes through dest 1.
        nodes = {p.nodes for p in enumerate_simple_paths(line_graph, 0, (1, 3))}
        assert (0, 1) in nodes
        assert (0, 1, 2, 3) in nodes

    def test_lengths_are_path_weights(self, diamond_graph):
        for path in enumerate_simple_paths(diamond_graph, 0, (3,)):
            assert path.length == diamond_graph.path_weight(path.nodes)

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert list(enumerate_simple_paths(g, 0, (2,))) == []


class TestTopK:
    def test_sorted_by_length(self, diamond_graph):
        top = brute_force_topk(diamond_graph, 0, (3,), 2)
        assert [p.length for p in top] == [2.0, 3.0]

    def test_k_larger_than_path_count(self, diamond_graph):
        top = brute_force_topk(diamond_graph, 0, (3,), 100)
        assert len(top) == 2

    def test_deterministic_tie_break(self):
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
        top = brute_force_topk(g, 0, (3,), 2)
        assert [p.nodes for p in top] == [(0, 1, 3), (0, 2, 3)]
