"""Unit tests for DA (Alg. 1) on the G_Q transform."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.baselines.deviation import deviation_algorithm
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from tests.conftest import random_graph


def run_da(graph, source, destinations, k, stats=None):
    qg = build_query_graph(graph, (source,), destinations)
    paths = deviation_algorithm(qg, k, stats=stats)
    return [(qg.strip(p.nodes), p.length) for p in paths]


class TestDeviation:
    def test_paper_example_top3(self, paper_built, paper_graph):
        """Example 3.1: top-3 from v1 to category H has lengths 5, 6, 7."""
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run_da(paper_graph, v("v1"), hotels, 3)
        assert [length for _, length in results] == [5.0, 6.0, 7.0]
        assert results[0][0] == (v("v1"), v("v8"), v("v7"))
        assert results[1][0] == (v("v1"), v("v3"), v("v6"))

    def test_matches_brute_force_multi_destination(self):
        rng = random.Random(61)
        for _ in range(20):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run_da(g, src, dests, k)]
            assert got == pytest.approx(expected)

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert run_da(g, 0, (2,), 3) == []

    def test_fewer_paths_than_k(self, diamond_graph):
        results = run_da(diamond_graph, 0, (3,), 10)
        assert len(results) == 2

    def test_paths_are_simple_in_base_graph(self):
        rng = random.Random(62)
        g = random_graph(rng, bidirectional=True)
        for path, _ in run_da(g, 0, (g.n - 1,), 8):
            assert g.is_simple_path(path)

    def test_candidate_count_is_order_k_n(self, paper_built, paper_graph):
        """DA computes O(k * len(path)) candidate shortest paths."""
        v = paper_built.node_id
        stats = SearchStats()
        run_da(paper_graph, v("v1"), [v("v4"), v("v6"), v("v7")], 3, stats=stats)
        # 1 initial + refreshes per chosen path; much more than the
        # single computation the iteratively bounding approach needs.
        assert stats.shortest_path_computations >= 4
