"""Unit tests for DA-SPT (full-SPT deviation with Pascoal/Gao candidates)."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.baselines.deviation_spt import deviation_spt, spt_candidate
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.pathing.spt import build_spt_to_target
from tests.conftest import random_graph


def run(graph, source, destinations, k, stats=None):
    qg = build_query_graph(graph, (source,), destinations)
    paths = deviation_spt(qg, k, stats=stats)
    return [(qg.strip(p.nodes), p.length) for p in paths]


class TestDeviationSPT:
    def test_paper_example_top3(self, paper_built, paper_graph):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run(paper_graph, v("v1"), hotels, 3)
        assert [length for _, length in results] == [5.0, 6.0, 7.0]

    def test_matches_brute_force(self):
        rng = random.Random(71)
        for _ in range(25):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run(g, src, dests, k)]
            assert got == pytest.approx(expected)

    def test_spt_nodes_recorded(self, diamond_graph):
        stats = SearchStats()
        run(diamond_graph, 0, (3,), 2, stats=stats)
        assert stats.spt_nodes >= 4  # the full SPT covers the graph

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert run(g, 0, (2,), 2) == []


class TestSPTCandidate:
    def make(self):
        # 0-1-2-3 line plus a parallel 1->4->3 detour.
        g = DiGraph.from_edges(
            5,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (1, 4, 2.0), (4, 3, 2.0)],
        )
        spt = build_spt_to_target(g, 3)
        return g, spt

    def test_pascoal_fast_path(self):
        g, spt = self.make()
        found = spt_candidate(g, spt, (0,), 0.0, set())
        assert found is not None
        path, length = found
        assert path == (0, 1, 2, 3)
        assert length == 3.0

    def test_banned_hop_forces_detour(self):
        g, spt = self.make()
        found = spt_candidate(g, spt, (0, 1), 1.0, {2})
        assert found is not None
        path, length = found
        assert path == (0, 1, 4, 3)
        assert length == 5.0

    def test_blocked_prefix_respected(self):
        g, spt = self.make()
        # Prefix (0, 1): extension must not revisit 0 or 1.
        found = spt_candidate(g, spt, (0, 1), 1.0, set())
        assert found is not None
        path, _ = found
        assert path[:2] == (0, 1)
        assert path.count(0) == 1 and path.count(1) == 1

    def test_no_candidate_when_everything_banned(self):
        g, spt = self.make()
        assert spt_candidate(g, spt, (0, 1), 1.0, {2, 4}) is None

    def test_gao_fallback_when_tree_path_not_simple(self):
        # SPT path from 1 goes back through 0: tree-path gluing fails,
        # the Gao search must still find 1 -> 2 at cost 10.
        g = DiGraph.from_edges(
            3, [(0, 1, 1.0), (1, 0, 1.0), (0, 2, 1.0), (1, 2, 10.0)]
        )
        spt = build_spt_to_target(g, 2)
        assert spt.path_from(1) == (1, 0, 2)
        found = spt_candidate(g, spt, (0, 1), 1.0, set())
        assert found is not None
        path, length = found
        assert path == (0, 1, 2)
        assert length == 11.0
