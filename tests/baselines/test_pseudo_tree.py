"""Unit tests for the pseudo-tree (Fig. 2's running example)."""

import pytest

from repro.baselines.pseudo_tree import PseudoTree


class TestPseudoTree:
    def test_initial_tree_is_single_vertex(self):
        tree = PseudoTree(0)
        assert len(tree) == 1
        assert tree.root.node == 0
        assert tree.root.prefix == (0,)
        assert tree.root.used_hops == set()

    def test_insert_first_path(self):
        tree = PseudoTree(0)
        deviation, new = tree.insert((0, 1, 2), [1.0, 2.0])
        assert deviation is tree.root
        assert [v.node for v in new] == [1, 2]
        assert tree.root.used_hops == {1}
        assert new[0].prefix == (0, 1)
        assert new[0].prefix_weight == 1.0
        assert new[1].prefix == (0, 1, 2)
        assert new[1].prefix_weight == 3.0
        assert len(tree) == 3

    def test_insert_shares_longest_prefix(self):
        tree = PseudoTree(0)
        tree.insert((0, 1, 2), [1.0, 1.0])
        deviation, new = tree.insert((0, 1, 3), [1.0, 5.0])
        assert deviation.node == 1
        assert deviation.prefix == (0, 1)
        assert [v.node for v in new] == [3]
        assert deviation.used_hops == {2, 3}

    def test_paper_fig2_sequence(self):
        """The three insertions of Example 3.1 (ids: v1=1, ..., t=0)."""
        tree = PseudoTree(1)
        # P1 = (v1, v8, v7, t)
        tree.insert((1, 8, 7, 0), [2.0, 3.0, 0.0])
        # P2 = (v1, v3, v6, t): deviates at v1.
        deviation, new = tree.insert((1, 3, 6, 0), [3.0, 3.0, 0.0])
        assert deviation is tree.root
        assert tree.root.used_hops == {8, 3}
        # P3 = (v1, v3, v7, t): deviates at v3.
        deviation, new = tree.insert((1, 3, 7, 0), [3.0, 4.0, 0.0])
        assert deviation.node == 3
        assert [v.node for v in new] == [7, 0]
        # Fig. 2(c) has 8 vertices: v1, v8, v7, t, v3, v6, t, v7', t.
        assert len(tree) == 9

    def test_same_graph_node_appears_twice(self):
        tree = PseudoTree(0)
        tree.insert((0, 1, 2), [1.0, 1.0])
        tree.insert((0, 3, 2), [1.0, 1.0])
        nodes = [v.node for v in tree.vertices()]
        assert nodes.count(2) == 2  # v2 appears under both branches

    def test_insert_wrong_source_asserts(self):
        tree = PseudoTree(0)
        with pytest.raises(AssertionError):
            tree.insert((1, 2), [1.0])

    def test_vertices_iterates_all(self):
        tree = PseudoTree(0)
        tree.insert((0, 1), [1.0])
        tree.insert((0, 2), [1.0])
        assert sorted(v.node for v in tree.vertices()) == [0, 1, 2]
