"""Unit tests for classic Yen (the independent oracle)."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.baselines.yen import yen_ksp
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from tests.conftest import random_graph


class TestYen:
    def test_diamond(self, diamond_graph):
        paths = yen_ksp(diamond_graph, 0, 3, 5)
        assert [p.length for p in paths] == [2.0, 3.0]
        assert paths[0].nodes == (0, 1, 3)

    def test_no_path_returns_empty(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert yen_ksp(g, 0, 2, 3) == []

    def test_k_one_is_shortest_path(self, line_graph):
        paths = yen_ksp(line_graph, 0, 4, 1)
        assert len(paths) == 1
        assert paths[0].length == 4.0

    def test_lengths_non_decreasing(self):
        rng = random.Random(51)
        for _ in range(10):
            g = random_graph(rng, bidirectional=True)
            paths = yen_ksp(g, 0, g.n - 1, 8)
            lengths = [p.length for p in paths]
            assert lengths == sorted(lengths)

    def test_paths_simple_and_distinct(self):
        rng = random.Random(52)
        g = random_graph(rng, min_nodes=8, max_nodes=10, bidirectional=True)
        paths = yen_ksp(g, 0, g.n - 1, 10)
        seen = set()
        for p in paths:
            assert g.is_simple_path(p.nodes)
            assert p.nodes not in seen
            seen.add(p.nodes)

    def test_matches_brute_force(self):
        rng = random.Random(53)
        for _ in range(20):
            g = random_graph(rng)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            if src == dst:
                continue
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, (dst,), k)]
            got = [p.length for p in yen_ksp(g, src, dst, k)]
            assert got == pytest.approx(expected)

    def test_stats_counted(self, diamond_graph):
        stats = SearchStats()
        yen_ksp(diamond_graph, 0, 3, 2, stats=stats)
        assert stats.shortest_path_computations >= 2
