"""Smoke tests of the per-figure experiments (minimal query counts).

These verify the experiment *definitions* — series labels, x-axes,
figure structure — not the timings themselves; each runs with one
query per point on the smallest datasets involved.
"""

import pytest

from repro.bench import experiments


class TestTable1:
    def test_rows_cover_registry(self):
        rows = experiments.table1()
        assert [r["dataset"] for r in rows] == ["SJ", "CAL", "SF", "COL", "FLA", "USA"]
        for row in rows:
            assert row["nodes"] > 0
            assert row["edges"] > 0
            assert row["paper_nodes"] > row["nodes"]


class TestFigureDefinitions:
    def test_fig6a_structure(self):
        fig = experiments.fig6a(queries_per_point=1, sizes=(4, 8))
        assert [s.label for s in fig.series] == list(experiments.CAL_CATEGORIES)
        for series in fig.series:
            assert [x for x, _ in series.points] == ["4", "8"]
            assert all(v > 0 for _, v in series.points)

    def test_fig6b_structure(self):
        fig = experiments.fig6b(queries_per_point=1, alphas=(1.1, 1.5))
        for series in fig.series:
            assert [x for x, _ in series.points] == ["1.1", "1.5"]

    def test_fig9_sj_vary_q(self):
        fig = experiments.fig9("SJ", vary="Q", queries_per_point=1)
        assert [s.label for s in fig.series] == [
            "BestFirst",
            "IterBound",
            "IterBoundP",
            "IterBoundI",
        ]
        for series in fig.series:
            assert [x for x, _ in series.points] == ["Q1", "Q2", "Q3", "Q4", "Q5"]

    def test_fig9_vary_k(self):
        fig = experiments.fig9("SJ", vary="k", queries_per_point=1)
        for series in fig.series:
            assert [x for x, _ in series.points] == ["10", "20", "30", "50"]

    def test_fig9_invalid_vary(self):
        with pytest.raises(ValueError):
            experiments.fig9("SJ", vary="z", queries_per_point=1)

    def test_fig10_structure(self):
        fig = experiments.fig10("SJ", queries_per_point=1)
        for series in fig.series:
            labels = [x for x, _ in series.points]
            assert len(labels) == 4
            assert labels[0].startswith("T1(")

    def test_fig11_small(self):
        fig = experiments.fig11(datasets=("SJ",), sample_sources=3)
        assert fig.series[0].label == "SJ"
        percentiles = [v for _, v in fig.series[0].points]
        assert len(percentiles) == 4
        assert all(0.0 <= p <= 100.0 for p in percentiles)
        # More destinations -> shorter longest path -> smaller percentile.
        assert percentiles[0] >= percentiles[-1]

    def test_fig12a_small(self):
        fig = experiments.fig12a(datasets=("SJ",), queries_per_point=1)
        assert fig.series[0].label == "IterBoundI"
        assert [x for x, _ in fig.series[0].points] == ["SJ"]

    def test_fig12b_small(self):
        fig = experiments.fig12b("SJ", k_values=(5, 10), queries_per_point=1)
        assert [x for x, _ in fig.series[0].points] == ["5", "10"]

    def test_fig13_structure(self):
        fig = experiments.fig13("SJ", vary="k", queries_per_point=1)
        assert [s.label for s in fig.series] == ["DA-SPT", "IterBoundI"]

    def test_fig13_invalid_vary(self):
        with pytest.raises(ValueError):
            experiments.fig13("SJ", vary="x", queries_per_point=1)

    def test_ablation_bounds(self):
        fig = experiments.ablation_bounds("SJ", category="T2", queries_per_point=1)
        assert [s.label for s in fig.series] == ["Eq2", "Eq1"]

    def test_work_table(self):
        fig = experiments.work_table("SJ", category="T2", queries_per_point=1)
        series = {s.label: dict(s.points) for s in fig.series}
        assert set(series) == {"sp_computations", "nodes_settled", "lb_tests"}
        # Lemma 4.1 made measurable: the iteratively bounding methods
        # run exactly one full shortest-path computation per query.
        assert series["sp_computations"]["IterBoundI"] == 1.0
        assert series["sp_computations"]["DA"] > series["sp_computations"]["IterBoundI"]
        # The deviation paradigm never calls TestLB.
        assert series["lb_tests"]["DA"] == 0.0

    def test_ablation_hub_labels(self):
        fig = experiments.ablation_hub_labels("SJ", queries_per_point=1)
        assert [s.label for s in fig.series] == ["hub-labels", "landmarks-eq2"]
        for series in fig.series:
            assert [x for x, _ in series.points] == ["KSP", "KPJ-T2"]
            assert all(v > 0 for _, v in series.points)

    def test_ablation_alpha_counters(self):
        fig = experiments.ablation_alpha_counters(
            "SJ", category="T2", alphas=(1.1, 1.5), queries_per_point=1
        )
        labels = [s.label for s in fig.series]
        assert labels == ["lb_tests", "lb_test_failures", "nodes_settled"]
        tests = dict(fig.series[0].points)
        failures = dict(fig.series[1].points)
        for alpha in ("1.1", "1.5"):
            assert failures[alpha] <= tests[alpha]
