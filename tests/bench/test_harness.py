"""Unit tests for the benchmark harness and reporting."""

import pytest

from repro.bench.harness import (
    FigureResult,
    Series,
    solver_for,
    time_query_batch,
    workload_for,
)
from repro.bench.reporting import format_figure, format_speedups, write_figure


class TestSeriesAndFigure:
    def test_series_add(self):
        s = Series("x")
        s.add("a", 1.0)
        s.add("b", 2.0)
        assert s.points == [("a", 1.0), ("b", 2.0)]

    def test_new_series_registers(self):
        fig = FigureResult(figure="F", title="t", x_label="x")
        s = fig.new_series("algo")
        assert fig.series == [s]


class TestCaches:
    def test_solver_cached(self):
        a = solver_for("SJ", landmarks=4)
        b = solver_for("SJ", landmarks=4)
        assert a is b

    def test_solver_distinct_per_landmark_count(self):
        a = solver_for("SJ", landmarks=4)
        b = solver_for("SJ", landmarks=5)
        assert a is not b
        assert b[1].landmark_index.size == 5

    def test_workload_cached(self):
        a = workload_for("SJ", "T2", per_group=5)
        b = workload_for("SJ", "T2", per_group=5)
        assert a is b


class TestTiming:
    def test_time_query_batch(self):
        _, solver = solver_for("SJ", landmarks=4)
        workload = workload_for("SJ", "T2", per_group=5)
        timing = time_query_batch(
            solver, workload.group("Q1")[:3], "T2", 5, "iter-bound-spti"
        )
        assert timing.queries == 3
        assert timing.mean_ms > 0
        assert timing.total_ms >= timing.mean_ms
        assert timing.stats.nodes_settled > 0


class TestReporting:
    def make_figure(self):
        fig = FigureResult(figure="Fig X", title="demo", x_label="k")
        a = fig.new_series("DA")
        a.add("10", 100.0)
        a.add("20", 200.0)
        b = fig.new_series("IterBoundI")
        b.add("10", 1.0)
        b.add("20", 2.0)
        return fig

    def test_format_contains_all_cells(self):
        text = format_figure(self.make_figure())
        assert "Fig X" in text
        assert "DA" in text and "IterBoundI" in text
        assert "100" in text and "2.00" in text

    def test_format_handles_missing_points(self):
        fig = self.make_figure()
        fig.series[1].points.pop()  # IterBoundI loses its "20" point
        text = format_figure(fig)
        assert "IterBoundI" in text

    def test_speedups_relative_to_baseline(self):
        text = format_speedups(self.make_figure(), "DA")
        assert "speedup vs DA" in text
        assert "100" in text  # IterBoundI is 100x at both points

    def test_speedups_unknown_baseline_raises(self):
        with pytest.raises(ValueError):
            format_speedups(self.make_figure(), "Nope")

    def test_write_figure(self, tmp_path):
        path = write_figure(self.make_figure(), tmp_path)
        assert path.exists()
        assert "demo" in path.read_text()

    def test_notes_rendered(self):
        fig = self.make_figure()
        fig.notes = "values are percentiles"
        assert "percentiles" in format_figure(fig)
