"""Open-loop replay entries and the SLO gate.

Replays here use tiny query budgets on the SJ dataset so the suite
stays fast; the gate tests run against synthetic entries so every
failure branch is exercised without timing flakiness.
"""

import json

import pytest

from repro.bench.loadtest import (
    LOADTEST_SCHEMA_VERSION,
    baseline_for,
    evaluate_gate,
    load_entries,
    render_entry_summary,
    replay_workload,
)
from repro.bench.workload import parse_spec
from repro.exceptions import QueryError


def tiny_spec(**overrides):
    data = {
        "name": "tiny",
        "dataset": "SJ",
        "categories": ["T1", "T2"],
        "target_qps": 400.0,
        "queries": 12,
        "workers": 1,
        "seed": 3,
        "kernel": "dict",
        "landmarks": 2,
        "k": {"kind": "fixed", "value": 2},
    }
    data.update(overrides)
    return parse_spec(data)


@pytest.fixture(scope="module")
def tiny_entry():
    return replay_workload(tiny_spec())


class TestReplayEntry:
    def test_entry_structure(self, tiny_entry):
        e = tiny_entry
        assert e["schema_version"] == LOADTEST_SCHEMA_VERSION
        assert e["queries"] == 12
        assert e["completed"] == 12
        assert e["errors"]["count"] == 0
        assert e["spec"] == tiny_spec().as_dict()
        assert len(e["schedule_sha"]) == 64
        assert e["achieved_qps"] > 0
        assert 0.0 <= e["occupancy"]
        for block in ("latency_ms", "queue_wait_ms", "service_ms"):
            assert e[block]["count"] == 12
            for q in ("p50", "p95", "p99", "p999"):
                assert e[block][q] is not None
        # Latency decomposes into queue wait + service: the combined
        # tail can never undercut the service tail.
        assert e["latency_ms"]["p99"] >= e["service_ms"]["p99"]

    def test_work_counters_recorded(self, tiny_entry):
        assert tiny_entry["work"], "replay must accumulate SearchStats work"
        assert any(v for v in tiny_entry["work"].values())

    def test_phases_include_warmup(self, tiny_entry):
        assert "warmup" in tiny_entry["phases"]

    def test_schedule_sha_is_deterministic(self, tiny_entry):
        again = replay_workload(tiny_spec())
        assert again["schedule_sha"] == tiny_entry["schedule_sha"]

    def test_unknown_category_is_query_error(self):
        with pytest.raises(QueryError, match="no category"):
            replay_workload(tiny_spec(categories=["T1", "NOPE"]))

    def test_pooled_replay_smoke(self):
        entry = replay_workload(tiny_spec(workers=2, queries=6))
        assert entry["completed"] == 6
        assert entry["errors"]["count"] == 0
        assert entry["queue_wait_ms"]["count"] == 6

    def test_render_summary_mentions_components(self, tiny_entry):
        text = render_entry_summary(tiny_entry)
        assert "queue wait" in text
        assert "service" in text
        assert "achieved" in text


def synthetic_entry(spec, *, p99=50.0, qps=100.0, errors=0, queries=10):
    block = {"count": queries - errors, "mean": p99 / 2,
             "p50": p99 / 4, "p95": p99 / 2, "p99": p99, "p999": p99 * 1.5}
    return {
        "schema_version": LOADTEST_SCHEMA_VERSION,
        "spec": spec.as_dict(),
        "queries": queries,
        "completed": queries - errors,
        "errors": {"count": errors, "samples": []},
        "achieved_qps": qps,
        "latency_ms": dict(block),
        "queue_wait_ms": dict(block),
        "service_ms": dict(block),
        "date": "2026-01-01T00:00:00Z",
        "sha": "feedface",
    }


class TestGate:
    def test_clean_entry_passes(self):
        spec = tiny_spec(slo={"p99_ms": 100.0, "min_qps": 10.0})
        assert evaluate_gate(synthetic_entry(spec), spec) == []

    def test_p99_bound_violation(self):
        spec = tiny_spec(slo={"p99_ms": 10.0})
        failures = evaluate_gate(synthetic_entry(spec, p99=50.0), spec)
        assert len(failures) == 1
        assert "p99" in failures[0] and "SLO" in failures[0]

    def test_throughput_floor_violation(self):
        spec = tiny_spec(slo={"min_qps": 500.0})
        failures = evaluate_gate(synthetic_entry(spec, qps=100.0), spec)
        assert any("below the" in f for f in failures)

    def test_error_budget_violation(self):
        spec = tiny_spec(slo={"max_error_rate": 0.0})
        failures = evaluate_gate(synthetic_entry(spec, errors=2), spec)
        assert any("error rate" in f for f in failures)

    def test_no_completed_queries_fails_p99_slo(self):
        spec = tiny_spec(slo={"p99_ms": 100.0})
        entry = synthetic_entry(spec)
        entry["latency_ms"]["p99"] = None
        assert any("no completed" in f for f in evaluate_gate(entry, spec))

    def test_regression_vs_baseline(self):
        spec = tiny_spec(slo={"regression_factor": 2.0})
        baseline = synthetic_entry(spec, p99=10.0, qps=100.0)
        # 5x slower p99 and 4x lower throughput: both bounds trip.
        entry = synthetic_entry(spec, p99=50.0, qps=25.0)
        failures = evaluate_gate(entry, spec, baseline)
        assert any("regressed" in f for f in failures)
        assert any("fell" in f for f in failures)

    def test_within_regression_factor_passes(self):
        spec = tiny_spec(slo={"regression_factor": 2.0})
        baseline = synthetic_entry(spec, p99=10.0, qps=100.0)
        entry = synthetic_entry(spec, p99=15.0, qps=80.0)
        assert evaluate_gate(entry, spec, baseline) == []

    def test_baseline_spec_mismatch_flagged(self):
        spec = tiny_spec(slo={"regression_factor": 2.0})
        other = tiny_spec(seed=99, slo={"regression_factor": 2.0})
        failures = evaluate_gate(
            synthetic_entry(spec), spec, synthetic_entry(other)
        )
        assert any("different spec" in f for f in failures)


class TestTrajectoryIO:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_entries(str(tmp_path / "absent.json")) == []

    def test_blank_file_is_empty(self, tmp_path):
        path = tmp_path / "blank.json"
        path.write_text("  \n")
        assert load_entries(str(path)) == []

    def test_malformed_and_non_list_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        with pytest.raises(QueryError, match="malformed"):
            load_entries(str(bad))
        bad.write_text('{"not": "a list"}')
        with pytest.raises(QueryError, match="not a list"):
            load_entries(str(bad))

    def test_baseline_for_picks_latest_exact_match(self, tmp_path):
        spec = tiny_spec()
        other = tiny_spec(seed=42)
        entries = [
            synthetic_entry(spec, p99=10.0),
            synthetic_entry(other, p99=20.0),
            synthetic_entry(spec, p99=30.0),
        ]
        path = tmp_path / "t.json"
        path.write_text(json.dumps(entries))
        pool = load_entries(str(path))
        base = baseline_for(pool, spec.as_dict())
        assert base is not None and base["latency_ms"]["p99"] == 30.0
        assert baseline_for(pool, tiny_spec(seed=7).as_dict()) is None


class TestServiceTarget:
    """`--target service`: replay against the resident-worker tier."""

    @pytest.fixture(scope="class")
    def service_entry(self):
        return replay_workload(tiny_spec(), target="service")

    def test_entry_matches_pool_shape(self, service_entry, tiny_entry):
        assert service_entry["target"] == "service"
        assert tiny_entry.get("target", "pool") == "pool"
        assert service_entry["completed"] == 12
        assert service_entry["errors"]["count"] == 0
        assert service_entry["schedule_sha"] == tiny_entry["schedule_sha"]
        for block in ("latency_ms", "queue_wait_ms", "service_ms"):
            assert service_entry[block]["count"] == 12

    def test_warmup_paid_once_at_startup(self, service_entry):
        # The acceptance criterion for the service tier: per-query
        # service time excludes warm-up, which shows up as exactly one
        # call of the one-time warmup phase.
        assert service_entry["phases"]["warmup"]["calls"] == 1
        assert service_entry["work"]

    def test_unknown_target_rejected(self):
        with pytest.raises(QueryError, match="unknown loadtest target"):
            replay_workload(tiny_spec(), target="bogus")

    def test_baseline_lookup_is_target_scoped(self):
        spec = tiny_spec()
        pool_base = synthetic_entry(spec, p99=10.0)
        service_base = dict(synthetic_entry(spec, p99=20.0), target="service")
        entries = [pool_base, service_base]
        found = baseline_for(entries, spec.as_dict(), target="service")
        assert found is not None and found["latency_ms"]["p99"] == 20.0
        # Entries from before targets existed count as pool.
        found = baseline_for(entries, spec.as_dict(), target="pool")
        assert found is not None and found["latency_ms"]["p99"] == 10.0

    def test_gate_flags_cross_target_baseline(self):
        spec = tiny_spec(slo={"regression_factor": 2.0})
        entry = dict(synthetic_entry(spec), target="service")
        baseline = synthetic_entry(spec)  # implicit pool
        failures = evaluate_gate(entry, spec, baseline)
        assert any("different target" in f for f in failures)

    def test_summary_names_the_target(self, service_entry):
        assert "target service" in render_entry_summary(service_entry)
