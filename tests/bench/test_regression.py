"""Unit tests for the perf-regression gate logic (benchmarks/regression.py).

The gate's measurement path is exercised by CI's perf-gate job; here
we test the *decision* logic — threshold, noise floor, protocol and
checksum handling — against synthetic entries, without timing anything.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "regression",
    Path(__file__).resolve().parents[2] / "benchmarks" / "regression.py",
)
regression = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("regression", regression)
_SPEC.loader.exec_module(regression)


def entry(phases: dict[str, float], checksum: str = "abc") -> dict:
    return {
        "sha": "0" * 40,
        "date": "2026-01-01T00:00:00Z",
        "protocol": dict(regression.PROTOCOL),
        "phases": {
            name: {"p50_ms": p50, "p95_ms": p50 * 2}
            for name, p50 in phases.items()
        },
        "paths_checksum": checksum,
    }


class TestGateLogic:
    def test_identical_entries_pass(self):
        base = entry({"test_lb": 1.0, "total": 4.0})
        assert regression.check(entry({"test_lb": 1.0, "total": 4.0}), base) == []

    def test_regression_beyond_threshold_fails(self):
        base = entry({"test_lb": 1.0, "total": 4.0})
        now = entry({"test_lb": 1.3, "total": 4.0})  # 1.3x > 1.25x
        failures = regression.check(now, base)
        assert len(failures) == 1
        assert "test_lb" in failures[0] and "1.30x" in failures[0]

    def test_improvement_and_small_drift_pass(self):
        base = entry({"test_lb": 1.0, "total": 4.0})
        now = entry({"test_lb": 0.5, "total": 4.9})  # 1.225x < 1.25x
        assert regression.check(now, base) == []

    def test_noise_floor_exempts_cheap_phases(self):
        base = entry({"prepare": 0.05, "total": 4.0})
        now = entry({"prepare": 0.4, "total": 4.0})  # 8x, but < MIN_PHASE_MS
        assert regression.check(now, base) == []
        assert regression.MIN_PHASE_MS == 0.5

    def test_missing_phase_fails(self):
        base = entry({"test_lb": 1.0, "total": 4.0})
        now = entry({"total": 4.0})
        failures = regression.check(now, base)
        assert any("disappeared" in f for f in failures)

    def test_checksum_mismatch_fails_even_when_fast(self):
        base = entry({"total": 4.0}, checksum="aaa")
        now = entry({"total": 1.0}, checksum="bbb")
        failures = regression.check(now, base)
        assert any("checksum" in f for f in failures)

    def test_protocol_change_demands_refresh(self):
        base = entry({"total": 4.0})
        base["protocol"] = {**base["protocol"], "k": 999}
        failures = regression.check(entry({"total": 4.0}), base)
        assert failures == [
            "workload protocol changed — refresh the trajectory with --update"
        ]

    def test_threshold_is_twenty_five_percent(self):
        assert regression.THRESHOLD == pytest.approx(1.25)


class TestTrajectoryArtifact:
    def test_committed_trajectory_is_valid(self):
        """The repo ships a baseline entry for every gated workload."""
        trajectory = regression.load_trajectory()
        assert trajectory, "benchmarks/results/BENCH_trajectory.json missing"
        for spec in regression.PROTOCOLS:
            last = regression.baseline_for(trajectory, spec)
            assert last is not None, f"no baseline for {spec['kernel']!r}"
            assert len(last["paths_checksum"]) == 64  # sha256 hex
            assert "total" in last["phases"]
            for numbers in last["phases"].values():
                assert numbers["p50_ms"] > 0
                assert numbers["p95_ms"] >= numbers["p50_ms"]

    def test_committed_kernels_agree_on_answers(self):
        """The latest dict/flat/native baselines share one checksum."""
        trajectory = regression.load_trajectory()
        digests = {
            regression.baseline_for(trajectory, spec)["paths_checksum"]
            for spec in regression.PROTOCOLS
        }
        assert len(digests) == 1

    def test_workloads_differ_only_in_kernel(self):
        """The protocol list pins one workload per kernel, nothing else."""
        kernels = [spec["kernel"] for spec in regression.PROTOCOLS]
        assert kernels == ["dict", "flat", "native"]
        for spec in regression.PROTOCOLS:
            stripped = {k: v for k, v in spec.items() if k != "kernel"}
            base = {
                k: v for k, v in regression.PROTOCOL.items() if k != "kernel"
            }
            assert stripped == base

    def test_baseline_for_matches_exact_protocol(self):
        trajectory = [
            entry({"total": 1.0}),
            {**entry({"total": 2.0}),
             "protocol": {**regression.PROTOCOL, "kernel": "flat"}},
        ]
        hit = regression.baseline_for(trajectory, regression.PROTOCOL)
        assert hit is trajectory[0]
        assert regression.baseline_for(
            trajectory, {**regression.PROTOCOL, "kernel": "native"}
        ) is None
