"""Unit tests for the trajectory/work-counter renderer (kpj report)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.trajectory import (
    WORK_PHASE_FIELDS,
    accumulate_work,
    render_trajectory_report,
    render_work_deltas,
    work_snapshot,
)
from repro.core.stats import WORK_PARITY_FIELDS, SearchStats

TRAJECTORY = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "results"
    / "BENCH_trajectory.json"
)


def entry(work=None, protocol=None, **overrides) -> dict:
    base = {
        "sha": "0" * 40,
        "date": "2026-01-01T00:00:00Z",
        "protocol": protocol or {"kernel": "dict", "version": 1},
        "phases": {
            "total": {"p50_ms": 4.0, "p95_ms": 8.0},
            "test_lb": {"p50_ms": 1.0, "p95_ms": 2.0},
        },
        "paths_checksum": "abc",
    }
    if work is not None:
        base["work"] = work
    base.update(overrides)
    return base


class TestTaxonomy:
    def test_covers_every_parity_counter(self):
        # §3g contract: every cross-kernel-pinned counter has a home
        # phase in the trajectory's work block.
        taxonomy = {f for fields in WORK_PHASE_FIELDS.values() for f in fields}
        assert set(WORK_PARITY_FIELDS) <= taxonomy

    def test_no_counter_in_two_phases(self):
        fields = [f for fs in WORK_PHASE_FIELDS.values() for f in fs]
        assert len(fields) == len(set(fields))

    def test_snapshot_keeps_zeros_and_groups_by_phase(self):
        snap = work_snapshot(SearchStats(nodes_settled=5))
        assert snap["test_lb"]["nodes_settled"] == 5
        assert snap["test_lb"]["heap_pushes"] == 0  # zeros kept
        assert set(snap) == set(WORK_PHASE_FIELDS)

    def test_accumulate_sums_across_queries(self):
        total: dict = {}
        accumulate_work(total, SearchStats(nodes_settled=5, heap_pushes=2))
        accumulate_work(total, SearchStats(nodes_settled=3))
        assert total["test_lb"]["nodes_settled"] == 8
        assert total["test_lb"]["heap_pushes"] == 2


class TestWorkDeltas:
    def work(self, **counters) -> dict:
        return {"test_lb": {"nodes_settled": 100, **counters}}

    def test_against_matching_baseline(self):
        doc = render_work_deltas(
            entry(work=self.work(nodes_settled=110)),
            entry(work=self.work(nodes_settled=100)),
        )
        assert "| test_lb | nodes_settled | 110 | +10 (+10.0%) |" in doc
        assert "`dict` kernel" in doc

    def test_unchanged_and_new_markers(self):
        now = entry(work={"test_lb": {"nodes_settled": 7, "heap_pops": 3}})
        base = entry(work={"test_lb": {"nodes_settled": 7}})
        doc = render_work_deltas(now, base)
        assert "| test_lb | nodes_settled | 7 | = |" in doc
        assert "| test_lb | heap_pops | 3 | (new) |" in doc

    def test_pre_work_baseline_renders_as_new(self):
        doc = render_work_deltas(entry(work=self.work()), entry())
        assert "(new)" in doc and "nodes_settled" in doc

    def test_entry_without_work_block(self):
        doc = render_work_deltas(entry(), None)
        assert "no work block" in doc


class TestTrajectoryReport:
    def test_empty(self):
        assert "(no entries)" in render_trajectory_report([])

    def test_groups_by_protocol_and_marks_new(self):
        dict_proto = {"kernel": "dict", "version": 1}
        flat_proto = {"kernel": "flat", "version": 1}
        doc = render_trajectory_report(
            [
                entry(protocol=dict_proto),
                entry(protocol=dict_proto, work={"test_lb": {"heap_pops": 1}}),
                entry(protocol=flat_proto),
            ]
        )
        assert doc.count("### Phases (latest entry)") == 2
        assert "`dict` kernel" in doc and "`flat` kernel" in doc
        # dict group has a previous entry without p-deltas? both share
        # the same phases, so the ratio column is populated.
        assert "1.00x" in doc
        assert "| test_lb | heap_pops | 1 | (new) |" in doc

    def test_committed_trajectory_renders(self):
        # The exact document `kpj report` must produce in CI: committed
        # entries predate the work-attribution layer, so the renderer
        # has to tolerate missing work blocks.
        trajectory = json.loads(TRAJECTORY.read_text())
        doc = render_trajectory_report(trajectory)
        assert doc.startswith("# Perf trajectory report")
        for needle in ("`dict` kernel", "total", "### Work counters"):
            assert needle in doc
