"""Workload spec validation and arrival-schedule determinism.

The spec layer is the pinning mechanism for load-test comparability:
every constraint violation must fail with a clean QueryError naming
the field (no tracebacks from deep inside the replay engine), and the
same spec + seed must expand to a byte-identical arrival schedule.
"""

import json

import pytest

from repro.bench.workload import (
    SPEC_SCHEMA_VERSION,
    Arrival,
    CategorySkew,
    generate_schedule,
    load_spec,
    parse_spec,
    schedule_digest,
)
from repro.exceptions import QueryError

BASE = {
    "name": "unit",
    "dataset": "SJ",
    "categories": ["T1", "T2", "T3"],
    "target_qps": 50.0,
    "queries": 40,
}


def spec_data(**overrides):
    data = dict(BASE)
    data.update(overrides)
    return {k: v for k, v in data.items() if v is not None}


class TestSpecValidation:
    def test_minimal_spec_parses_with_defaults(self):
        spec = parse_spec(spec_data())
        assert spec.name == "unit"
        assert spec.workers == 1
        assert spec.seed == 0
        assert spec.skew.kind == "uniform"
        assert spec.k.kind == "fixed" and spec.k.value == 8
        assert spec.algorithm == "iter-bound-spti"
        assert spec.kernel == "dict"
        assert spec.slo.max_error_rate == 0.0

    def test_as_dict_round_trips_through_parse(self):
        spec = parse_spec(spec_data(
            skew={"kind": "zipf", "s": 1.5},
            k={"kind": "choice", "values": [2, 4], "weights": [3, 1]},
            slo={"p99_ms": 100.0, "regression_factor": 2.0},
        ))
        again = parse_spec(spec.as_dict())
        assert again == spec
        assert spec.as_dict()["schema_version"] == SPEC_SCHEMA_VERSION

    def test_bad_skew_kind_named_in_error(self):
        with pytest.raises(QueryError, match="bad skew kind 'pareto'"):
            parse_spec(spec_data(skew={"kind": "pareto"}))

    def test_zero_qps_rejected(self):
        with pytest.raises(QueryError, match="target_qps must be > 0"):
            parse_spec(spec_data(target_qps=0))

    def test_negative_duration_rejected(self):
        with pytest.raises(QueryError, match="duration_s must be > 0"):
            parse_spec(spec_data(queries=None, duration_s=-1.0))

    def test_exactly_one_budget_required(self):
        with pytest.raises(QueryError, match="exactly one of duration_s"):
            parse_spec(spec_data(queries=None))
        with pytest.raises(QueryError, match="exactly one of duration_s"):
            parse_spec(spec_data(duration_s=2.0))  # both set

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(QueryError, match="unknown workload spec field"):
            parse_spec(spec_data(qps=10))

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(QueryError, match="unknown skew field"):
            parse_spec(spec_data(skew={"kind": "uniform", "s": 1.0}))

    def test_unknown_dataset_lists_choices(self):
        with pytest.raises(QueryError, match="unknown dataset 'XX'"):
            parse_spec(spec_data(dataset="XX"))

    def test_unknown_kernel_and_algorithm(self):
        with pytest.raises(QueryError, match="unknown kernel"):
            parse_spec(spec_data(kernel="gpu"))
        with pytest.raises(QueryError, match="unknown algorithm"):
            parse_spec(spec_data(algorithm="dfs"))

    def test_duplicate_categories_rejected(self):
        with pytest.raises(QueryError, match="duplicates"):
            parse_spec(spec_data(categories=["T1", "T1"]))

    def test_hot_set_needs_a_cold_category(self):
        with pytest.raises(QueryError, match="skew.hot"):
            parse_spec(spec_data(skew={"kind": "hot-set", "hot": 3}))

    def test_bad_slo_bounds(self):
        with pytest.raises(QueryError, match="slo.max_error_rate"):
            parse_spec(spec_data(slo={"max_error_rate": 1.5}))
        with pytest.raises(QueryError, match="slo.regression_factor"):
            parse_spec(spec_data(slo={"regression_factor": 0.5}))

    def test_unsupported_schema_version(self):
        with pytest.raises(QueryError, match="schema_version"):
            parse_spec(spec_data(schema_version=99))

    def test_negative_seed_and_bad_workers(self):
        with pytest.raises(QueryError, match="seed must be >= 0"):
            parse_spec(spec_data(seed=-1))
        with pytest.raises(QueryError, match="workers must be >= 1"):
            parse_spec(spec_data(workers=0))


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(json.dumps(spec_data()))
        assert load_spec(str(path)).name == "unit"

    def test_toml_file(self, tmp_path):
        path = tmp_path / "w.toml"
        path.write_text(
            'name = "unit"\n'
            'dataset = "SJ"\n'
            'categories = ["T1", "T2"]\n'
            "target_qps = 25.0\n"
            "queries = 10\n"
            "[skew]\n"
            'kind = "zipf"\n'
            "s = 1.1\n"
        )
        spec = load_spec(str(path))
        assert spec.skew.kind == "zipf"
        assert spec.target_qps == 25.0

    def test_missing_file_is_query_error(self, tmp_path):
        with pytest.raises(QueryError, match="cannot read workload spec"):
            load_spec(str(tmp_path / "absent.json"))

    def test_malformed_json_is_query_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(QueryError, match="malformed workload spec"):
            load_spec(str(path))


class TestSchedule:
    def test_same_seed_same_spec_is_byte_identical(self):
        spec = parse_spec(spec_data(seed=7))
        a = generate_schedule(spec, n_nodes=500)
        b = generate_schedule(spec, n_nodes=500)
        assert a == b
        assert schedule_digest(a) == schedule_digest(b)

    def test_different_seed_differs(self):
        a = generate_schedule(parse_spec(spec_data(seed=1)), n_nodes=500)
        b = generate_schedule(parse_spec(spec_data(seed=2)), n_nodes=500)
        assert schedule_digest(a) != schedule_digest(b)

    def test_query_budget_is_exact(self):
        spec = parse_spec(spec_data(queries=25))
        arrivals = generate_schedule(spec, n_nodes=100)
        assert len(arrivals) == 25
        assert [a.index for a in arrivals] == list(range(25))

    def test_duration_bounds_offsets(self):
        spec = parse_spec(spec_data(queries=None, duration_s=1.0,
                                    target_qps=200.0))
        arrivals = generate_schedule(spec, n_nodes=100)
        assert arrivals, "200 qps for 1s should schedule something"
        assert all(a.offset_s <= 1.0 for a in arrivals)
        assert all(
            a.offset_s < b.offset_s for a, b in zip(arrivals, arrivals[1:])
        )

    def test_sources_and_k_within_declared_ranges(self):
        spec = parse_spec(spec_data(
            queries=200,
            k={"kind": "choice", "values": [2, 4, 8]},
        ))
        arrivals = generate_schedule(spec, n_nodes=50)
        assert all(0 <= a.source < 50 for a in arrivals)
        assert {a.k for a in arrivals} <= {2, 4, 8}
        assert {a.category for a in arrivals} <= {"T1", "T2", "T3"}

    def test_hot_set_mass_lands_on_hot_categories(self):
        spec = parse_spec(spec_data(
            queries=2000,
            skew={"kind": "hot-set", "hot": 1, "mass": 0.9},
        ))
        arrivals = generate_schedule(spec, n_nodes=100)
        hot_share = sum(a.category == "T1" for a in arrivals) / len(arrivals)
        assert hot_share == pytest.approx(0.9, abs=0.05)

    def test_zipf_respects_rank_order(self):
        spec = parse_spec(spec_data(
            queries=2000, skew={"kind": "zipf", "s": 1.2},
        ))
        arrivals = generate_schedule(spec, n_nodes=100)
        counts = [
            sum(a.category == c for a in arrivals) for c in spec.categories
        ]
        assert counts[0] > counts[1] > counts[2]

    def test_zipf_weights_are_rank_powers(self):
        w = CategorySkew(kind="zipf", s=1.0).weights(3)
        assert w == pytest.approx((1.0, 0.5, 1.0 / 3.0))

    def test_digest_is_order_sensitive(self):
        spec = parse_spec(spec_data(queries=5))
        arrivals = generate_schedule(spec, n_nodes=100)
        swapped = list(arrivals)
        swapped[0], swapped[1] = (
            Arrival(0, swapped[1].offset_s, swapped[1].source,
                    swapped[1].category, swapped[1].k),
            Arrival(1, swapped[0].offset_s, swapped[0].source,
                    swapped[0].category, swapped[0].k),
        )
        assert schedule_digest(swapped) != schedule_digest(arrivals)

    def test_bad_n_nodes_rejected(self):
        spec = parse_spec(spec_data())
        with pytest.raises(QueryError, match="n_nodes"):
            generate_schedule(spec, n_nodes=0)
