"""Shared fixtures: canonical small graphs and helpers.

``paper_graph`` reconstructs a graph consistent with the paper's
running example (Fig. 1): nodes v1..v15, bidirectional edges, hotels
at v4/v6/v7, and the edge weights implied by Examples 2.1–5.3 (the
top-3 paths from v1 to "H" have lengths 5, 6, 7, with
P1 = (v1, v8, v7) and P2 = (v1, v3, v6)).
"""

from __future__ import annotations

import random

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph

#: (u, v, weight) edges of the Fig.-1-style graph, bidirectional.
PAPER_EDGES = [
    ("v1", "v2", 1),
    ("v1", "v3", 3),
    ("v1", "v8", 2),
    ("v1", "v11", 1),
    ("v2", "v10", 8),
    ("v3", "v4", 5),
    ("v3", "v5", 2),
    ("v3", "v6", 3),
    ("v3", "v7", 4),
    ("v4", "v5", 10),
    ("v5", "v6", 2),
    ("v5", "v15", 1),
    ("v8", "v7", 3),
    ("v8", "v9", 1),
    ("v7", "v13", 10),
    ("v7", "v14", 10),
    ("v9", "v10", 1),
    ("v11", "v12", 1),
    ("v12", "v13", 1),
    ("v14", "v15", 1),
]

HOTELS = ("v4", "v6", "v7")


@pytest.fixture(scope="session")
def paper_built():
    """The Fig.-1-style graph with its label table."""
    builder = GraphBuilder(bidirectional=True)
    for u, v, w in PAPER_EDGES:
        builder.add_edge(u, v, float(w))
    return builder.build()


@pytest.fixture(scope="session")
def paper_graph(paper_built):
    """Just the frozen :class:`DiGraph` of the paper example."""
    return paper_built.graph


@pytest.fixture(scope="session")
def paper_categories(paper_built):
    """Category index with the hotel category "H" of the example."""
    hotels = [paper_built.node_id(name) for name in HOTELS]
    return CategoryIndex({"H": hotels})


@pytest.fixture(scope="session")
def line_graph():
    """0 - 1 - 2 - 3 - 4, bidirectional unit weights."""
    return DiGraph.from_edges(
        5, [(i, i + 1, 1.0) for i in range(4)], bidirectional=True
    )


@pytest.fixture(scope="session")
def diamond_graph():
    """Two parallel routes 0->3: through 1 (length 2) and 2 (length 3)."""
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(0, 2, 1.0)
    g.add_edge(2, 3, 2.0)
    return g.freeze()


def random_graph(
    rng: random.Random,
    min_nodes: int = 5,
    max_nodes: int = 14,
    weight_max: int = 9,
    bidirectional: bool = False,
) -> DiGraph:
    """A random simple digraph for cross-validation tests."""
    n = rng.randint(min_nodes, max_nodes)
    g = DiGraph(n)
    seen: set[tuple[int, int]] = set()
    for _ in range(rng.randint(n, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        if bidirectional:
            seen.add((v, u))
            g.add_bidirectional_edge(u, v, float(rng.randint(1, weight_max)))
        else:
            g.add_edge(u, v, float(rng.randint(1, weight_max)))
    return g.freeze()
