"""Unit tests for BestFirst (Alg. 2) including Lemma 4.1."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.baselines.deviation import deviation_algorithm
from repro.core.best_first import best_first
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex
from tests.conftest import random_graph


def run(graph, source, destinations, k, heuristic=ZERO_BOUNDS, stats=None):
    qg = build_query_graph(graph, (source,), destinations)
    paths = best_first(qg, k, heuristic, stats=stats)
    return qg, [(qg.strip(p.nodes), p.length) for p in paths]


class TestBestFirst:
    def test_paper_example(self, paper_built, paper_graph):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        _, results = run(paper_graph, v("v1"), hotels, 3)
        assert [length for _, length in results] == [5.0, 6.0, 7.0]
        assert results[0][0] == (v("v1"), v("v8"), v("v7"))

    def test_matches_brute_force_zero_heuristic(self):
        rng = random.Random(91)
        for _ in range(20):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            _, results = run(g, src, dests, k)
            assert [length for _, length in results] == pytest.approx(expected)

    def test_matches_brute_force_landmark_heuristic(self):
        rng = random.Random(92)
        for _ in range(20):
            g = random_graph(rng, bidirectional=True)
            index = LandmarkIndex.build(g, num_landmarks=3, seed=1)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            bounds = index.to_target_bounds(tuple(dests))
            _, results = run(g, src, dests, k, heuristic=bounds)
            assert [length for _, length in results] == pytest.approx(expected)

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        _, results = run(g, 0, (2,), 3)
        assert results == []

    def test_source_is_destination(self, line_graph):
        _, results = run(line_graph, 2, (2,), 1)
        assert results[0] == ((2,), 0.0)

    def test_lemma_4_1_fewer_sp_computations_than_da(self):
        """BestFirst's shortest-path computations <= DA's (Lemma 4.1)."""
        rng = random.Random(93)
        for _ in range(15):
            g = random_graph(rng, min_nodes=8, max_nodes=14, bidirectional=True)
            index = LandmarkIndex.build(g, num_landmarks=3, seed=0)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), 2)
            k = rng.randint(2, 6)
            qg = build_query_graph(g, (src,), dests)
            bf_stats, da_stats = SearchStats(), SearchStats()
            bf = best_first(qg, k, index.to_target_bounds(qg.destinations), stats=bf_stats)
            da = deviation_algorithm(qg, k, stats=da_stats)
            assert [p.length for p in bf] == pytest.approx([p.length for p in da])
            assert (
                bf_stats.shortest_path_computations
                <= da_stats.shortest_path_computations
            )

    def test_subspace_counters(self, diamond_graph):
        stats = SearchStats()
        run(diamond_graph, 0, (3,), 2, stats=stats)
        assert stats.subspaces_created >= 1
        assert stats.lower_bound_computations >= 1

    def test_lengths_non_decreasing_large_k(self):
        rng = random.Random(94)
        g = random_graph(rng, min_nodes=10, max_nodes=12, bidirectional=True)
        _, results = run(g, 0, (g.n - 1,), 30)
        lengths = [length for _, length in results]
        assert lengths == sorted(lengths)
