"""Cross-algorithm edge cases: exhaustion, zero weights, determinism.

These scenarios are where top-k engines typically diverge: fewer than
k simple paths exist, zero-weight edges create ties and zero-length
bounds, and destination nodes sit on paths to other destinations.
Every registered algorithm must behave identically in all of them.
"""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from tests.conftest import random_graph


def all_algorithm_lengths(graph, source, destinations, k, landmarks=2):
    solver = KPJSolver(
        graph, CategoryIndex({"T": destinations}), landmarks=min(landmarks, graph.n)
    )
    return {
        algorithm: tuple(
            round(x, 9)
            for x in solver.top_k(
                source, category="T", k=k, algorithm=algorithm
            ).lengths
        )
        for algorithm in ALGORITHMS
    }


class TestExhaustion:
    """k far exceeds the number of simple paths."""

    def test_all_algorithms_agree_when_paths_run_out(self):
        rng = random.Random(181)
        for _ in range(10):
            g = random_graph(rng, min_nodes=5, max_nodes=8)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), 2)
            expected = tuple(
                round(p.length, 9) for p in brute_force_topk(g, src, dests, 50)
            )
            results = all_algorithm_lengths(g, src, dests, 50)
            for algorithm, lengths in results.items():
                assert lengths == expected, algorithm

    def test_single_path_graph(self):
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        results = all_algorithm_lengths(g, 0, (3,), 10)
        for algorithm, lengths in results.items():
            assert lengths == (3.0,), algorithm

    def test_isolated_source(self):
        g = DiGraph(4)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.freeze()
        results = all_algorithm_lengths(g, 0, (3,), 5)
        for algorithm, lengths in results.items():
            assert lengths == (), algorithm


class TestZeroWeights:
    def test_zero_weight_edges_everywhere(self):
        # A graph whose every edge weighs 0: all paths tie at 0.
        g = DiGraph.from_edges(
            4,
            [(0, 1, 0.0), (1, 3, 0.0), (0, 2, 0.0), (2, 3, 0.0), (1, 2, 0.0)],
        )
        expected = tuple(p.length for p in brute_force_topk(g, 0, (3,), 10))
        results = all_algorithm_lengths(g, 0, (3,), 10)
        for algorithm, lengths in results.items():
            assert lengths == expected, algorithm

    def test_source_in_destination_set(self):
        g = DiGraph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]
        )
        # The trivial zero-length path must rank first everywhere.
        results = all_algorithm_lengths(g, 0, (0, 2), 3)
        for algorithm, lengths in results.items():
            assert lengths[0] == 0.0, algorithm

    def test_mixed_zero_and_positive(self):
        rng = random.Random(182)
        for _ in range(10):
            n = rng.randint(5, 8)
            g = DiGraph(n)
            seen = set()
            for _ in range(3 * n):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and (u, v) not in seen:
                    seen.add((u, v))
                    g.add_edge(u, v, float(rng.choice([0, 0, 1, 2, 5])))
            g.freeze()
            src = rng.randrange(n)
            dests = rng.sample(range(n), 2)
            expected = tuple(
                round(p.length, 9) for p in brute_force_topk(g, src, dests, 6)
            )
            results = all_algorithm_lengths(g, src, dests, 6)
            for algorithm, lengths in results.items():
                assert lengths == expected, algorithm


class TestDestinationOnTheWay:
    def test_path_through_one_destination_to_another(self):
        # 0 -> 1 -> 2, both 1 and 2 are destinations: the length-2 path
        # through destination 1 must appear.
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        solver = KPJSolver(g, CategoryIndex({"T": [1, 2]}), landmarks=None)
        for algorithm in ALGORITHMS:
            result = solver.top_k(0, category="T", k=2, algorithm=algorithm)
            assert result.lengths == (1.0, 2.0), algorithm
            assert result.paths[1].nodes == (0, 1, 2), algorithm


class TestDeterminism:
    def test_same_query_twice_identical(self, paper_graph, paper_categories, paper_built):
        solver = KPJSolver(paper_graph, paper_categories, landmarks=4)
        v = paper_built.node_id
        for algorithm in ALGORITHMS:
            a = solver.top_k(v("v1"), category="H", k=5, algorithm=algorithm)
            b = solver.top_k(v("v1"), category="H", k=5, algorithm=algorithm)
            assert [p.nodes for p in a.paths] == [p.nodes for p in b.paths]
            assert a.lengths == b.lengths

    def test_fresh_solver_same_answer(self, paper_graph, paper_categories, paper_built):
        v = paper_built.node_id
        a = KPJSolver(paper_graph, paper_categories, landmarks=4, seed=0).top_k(
            v("v1"), category="H", k=5
        )
        b = KPJSolver(paper_graph, paper_categories, landmarks=4, seed=0).top_k(
            v("v1"), category="H", k=5
        )
        assert a.lengths == b.lengths
