"""Unit tests for the flat iterative-bounding engine.

The flat engine (:mod:`repro.core.flat_engine`) re-implements the
``SPT_I`` driver's moving parts — ``TestLB`` closure, incremental
tree, Alg. 8 bounds, batched division — on CSR arrays.  The property
suite asserts whole-query parity; these tests pin the *semantics* the
parity rests on, under both kernels where the behaviour must agree:

* the ``τ``-cap retirement of provably-empty (dead-end) prefixes;
* blocked-prefix handling deep in the search tree, including the
  kernel's "pre-stamp the whole prefix, then re-open the source"
  trick being exactly "block ``prefix[:-1]``";
* the ``tail_dists`` the kernel reports being the same float
  accumulation ``divide`` would recompute from edge weights;
* the batched Alg. 8 division producing exactly what ``divide`` +
  scalar ``comp_lb`` produce.
"""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.core.flat_engine import FlatQueryContext, dense_heuristic
from repro.core.iter_bound import iter_bound_search
from repro.core.spt_incremental import iter_bound_spti
from repro.core.stats import SearchStats
from repro.core.subspace import Subspace
from repro.graph.csr import shared_csr
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex
from repro.pathing.flat import flat_bounded_astar_path
from repro.pathing.kernels import KERNELS
from tests.conftest import random_graph

INF = float("inf")

ENGINES = KERNELS


def _run_spti(graph, source, destinations, k, engine, stats=None, trace=None):
    """IterBound-SPT_I through either engine, stripped to base ids."""
    qg = build_query_graph(graph, (source,), destinations)
    index = LandmarkIndex.build(graph, 2, seed=7)
    dest = tuple(sorted(set(destinations)))
    paths = iter_bound_spti(
        qg,
        k,
        index.to_target_bounds(dest),
        index.from_source_bounds((source,)),
        stats=stats,
        flat_core=(engine == "flat"),
    )
    return [(qg.strip(p.nodes), p.length) for p in paths]


def _run_iter_bound(graph, source, destinations, k, engine, stats=None):
    """Plain IterBound through either TestLB substrate."""
    qg = build_query_graph(graph, (source,), destinations)
    paths = iter_bound_search(
        qg.graph,
        qg.source,
        qg.target,
        k,
        ZERO_BOUNDS,
        stats=stats,
        use_flat_engine=(engine == "flat"),
    )
    return [(qg.strip(p.nodes), p.length) for p in paths]


class TestTauCapRetirement:
    """A dead-end prefix must be retired at the τ-cap, not retried
    forever — identically under both substrates."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cul_de_sac_terminates(self, engine):
        # After outputting 0->1->2->3, dividing bans (1, 2) under
        # prefix (0, 1): that subspace is empty and only the τ-limit
        # proves it.
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        g.freeze()
        stats = SearchStats()
        results = _run_spti(g, 0, (3,), 5, engine, stats=stats)
        assert [length for _, length in results] == [3.0]
        assert stats.subspaces_pruned >= 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_retirement_counted_once_per_empty_subspace(self, engine):
        # Two dead-end arms: both empty subspaces retire; neither path
        # count nor pruning differs between substrates.
        g = DiGraph.from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 5, 1.0),
                (0, 3, 2.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        )
        g.freeze()
        per_engine = {}
        for name in ENGINES:
            stats = SearchStats()
            results = _run_spti(g, 0, (5,), 6, name, stats=stats)
            per_engine[name] = (results, stats.subspaces_pruned)
        assert per_engine["dict"][0] == per_engine["flat"][0]
        assert per_engine["dict"][1] == per_engine["flat"][1]
        assert [length for _, length in per_engine[engine][0]] == [3.0, 4.0]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_k_beyond_path_count_exhausts(self, engine):
        g = DiGraph.from_edges(
            8, [(i, i + 1, 1.0) for i in range(7)], bidirectional=True
        )
        g.freeze()
        results = _run_spti(g, 0, (7,), 4, engine)
        # The line graph holds exactly one simple 0..7 path.
        assert [length for _, length in results] == [7.0]


class TestDeepPrefixBlocking:
    """Blocked sets built from deep prefixes must exclude exactly
    ``prefix[:-1]`` — revisits through any earlier prefix node are
    forbidden, the head itself is re-expandable as the search source."""

    def _lollipop(self):
        # 0-1-2-3 stick onto a 3-4-5-6-3 cycle; deviations deep in the
        # stick must never walk back through the blocked stick nodes.
        g = DiGraph.from_edges(
            7,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 3, 1.0),
                (4, 6, 2.5),
            ],
            bidirectional=True,
        )
        g.freeze()
        return g

    @pytest.mark.parametrize("engine", ENGINES)
    def test_lollipop_topk_simple(self, engine):
        g = self._lollipop()
        expected = [p.length for p in brute_force_topk(g, 0, [6], 8)]
        got = [length for _, length in _run_spti(g, 0, (6,), 8, engine)]
        assert got == pytest.approx(expected)
        # Every returned path must be simple (the whole point of
        # blocking the prefix).
        for nodes, _ in _run_spti(g, 0, (6,), 8, engine):
            assert len(nodes) == len(set(nodes))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_random_graphs_match_brute_force(self, engine):
        rng = random.Random(331)
        for _ in range(12):
            g = random_graph(rng, bidirectional=True)
            g.freeze()
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(2, 7)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in _run_spti(g, src, dests, k, engine)]
            assert got == pytest.approx(expected)

    def test_kernel_reopens_blocked_source(self):
        # The flat kernel is handed the *whole* prefix as blocked
        # (head included) and must still search from the head: blocking
        # (0, 1, 2) with source 2 equals blocking (0, 1).
        g = DiGraph.from_edges(
            5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 5.0)]
        )
        g.freeze()
        csr = shared_csr(g)
        hit = flat_bounded_astar_path(
            csr, 2, 4, None, bound=100.0, blocked=(0, 1, 2), initial_distance=2.0
        )
        assert hit is not None
        tail, length = hit
        assert tail == (2, 3, 4)
        assert length == 4.0

    def test_kernel_blocked_excludes_interior_nodes(self):
        # Same graph, but block node 3: only the expensive 2->4 edge
        # remains.
        g = DiGraph.from_edges(
            5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 5.0)]
        )
        g.freeze()
        csr = shared_csr(g)
        hit = flat_bounded_astar_path(
            csr, 2, 4, None, bound=100.0, blocked=(0, 1, 2, 3), initial_distance=2.0
        )
        assert hit == ((2, 4), 7.0)

    def test_kernel_banned_first_hops_only_bind_at_source(self):
        # Banning first hop 3 from source 2 still allows reaching 3
        # later through another node.
        g = DiGraph.from_edges(
            5, [(2, 3, 1.0), (3, 4, 1.0), (2, 0, 1.0), (0, 3, 1.0)]
        )
        g.freeze()
        csr = shared_csr(g)
        hit = flat_bounded_astar_path(
            csr, 2, 4, None, bound=100.0, banned_first_hops=frozenset((3,))
        )
        assert hit == ((2, 0, 3, 4), 3.0)


class TestTailDistances:
    def test_tail_dists_match_edge_weight_accumulation(self):
        rng = random.Random(77)
        for _ in range(10):
            g = random_graph(rng, bidirectional=True)
            g.freeze()
            csr = shared_csr(g)
            src = rng.randrange(g.n)
            dst = rng.randrange(g.n)
            info: dict = {}
            hit = flat_bounded_astar_path(
                csr, src, dst, None, bound=INF, info=info, collect_dists=True
            )
            if hit is None:
                assert info["tail_dists"] is None
                continue
            path, length = hit
            dists = info["tail_dists"]
            assert len(dists) == len(path)
            acc = 0.0
            assert dists[0] == 0.0
            for i in range(1, len(path)):
                acc = acc + g.edge_weight(path[i - 1], path[i])
                assert dists[i] == acc  # bit-for-bit, not approx
            assert dists[-1] == length

    def test_initial_distance_offsets_every_entry(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.5)])
        g.freeze()
        info: dict = {}
        hit = flat_bounded_astar_path(
            shared_csr(g),
            0,
            2,
            None,
            bound=INF,
            initial_distance=10.0,
            info=info,
            collect_dists=True,
        )
        assert hit == ((0, 1, 2), 14.0)
        assert info["tail_dists"] == [10.0, 11.5, 14.0]


class TestEngineEquivalence:
    """The flat TestLB substrate of the *plain* driver and the full
    flat SPT_I engine must be path-identical to their dict twins."""

    @pytest.mark.parametrize("seed", [11, 23, 59])
    def test_plain_driver_flat_vs_dict(self, seed):
        rng = random.Random(seed)
        for _ in range(8):
            g = random_graph(rng, bidirectional=True)
            g.freeze()
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 2))
            k = rng.randint(1, 6)
            assert _run_iter_bound(g, src, dests, k, "flat") == _run_iter_bound(
                g, src, dests, k, "dict"
            )

    @pytest.mark.parametrize("seed", [13, 37, 71])
    def test_spti_flat_vs_dict(self, seed):
        rng = random.Random(seed)
        for _ in range(8):
            g = random_graph(rng, bidirectional=True)
            g.freeze()
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 7)
            assert _run_spti(g, src, dests, k, "flat") == _run_spti(
                g, src, dests, k, "dict"
            )

    def test_dense_heuristic_matches_callable(self):
        g = DiGraph.from_edges(
            6,
            [(i, (i + 1) % 6, float(i + 1)) for i in range(6)],
            bidirectional=True,
        )
        g.freeze()
        index = LandmarkIndex.build(g, 2, seed=3)
        tb = index.to_target_bounds((4,))
        dense = dense_heuristic(tb, g.n)
        assert [dense[v] for v in range(g.n)] == [tb(v) for v in range(g.n)]

    def test_query_context_blocked_prefix_equals_dict_blocked(self):
        # One subspace, tested through FlatQueryContext vs the dict
        # bounded A* contract it replaces.
        from repro.pathing.astar import bounded_astar_path

        g = DiGraph.from_edges(
            7,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 3, 1.0),
            ],
            bidirectional=True,
        )
        g.freeze()
        sub = Subspace(
            prefix=(0, 1, 2, 3), banned=frozenset((4,)), prefix_weight=3.0
        )
        ctx = FlatQueryContext(g, None)
        try:
            test_lb = ctx.make_test_lb(6, None)
            flat_info: dict = {}
            flat_hit = test_lb(sub, 100.0, flat_info)
        finally:
            ctx.close()
        dict_info: dict = {}
        dict_hit = bounded_astar_path(
            g,
            sub.head,
            6,
            ZERO_BOUNDS,
            bound=100.0,
            blocked=sub.blocked_set,
            banned_first_hops=sub.banned,
            initial_distance=sub.prefix_weight,
            info=dict_info,
        )
        assert flat_hit is not None and dict_hit is not None
        assert flat_hit[0] == dict_hit[0]
        assert flat_hit[1] == dict_hit[1]
        assert flat_info["pruned"] == dict_info["pruned"]


class TestSubspaceDivision:
    def test_divide_with_tail_dists_matches_edge_weight_walk(self):
        from repro.core.subspace import divide

        g = DiGraph.from_edges(
            5,
            [(0, 1, 1.25), (1, 2, 2.5), (2, 3, 0.75), (3, 4, 1.0)],
        )
        g.freeze()
        root = Subspace.entire(0)
        path = (0, 1, 2, 3, 4)
        dists = [0.0, 1.25, 3.75, 4.5, 5.5]
        def key(children):
            return [(c.prefix, c.banned, c.prefix_weight) for c in children]

        with_dists = list(divide(root, path, 5.5, g.edge_weight, dists))
        without = list(divide(root, path, 5.5, g.edge_weight, None))
        assert key(with_dists) == key(without)
        assert [c.prefix_weight for c in with_dists[1:]] == dists[1:-1]
