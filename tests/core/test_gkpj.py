"""Unit tests for GKPJ (Section 6: set-valued sources)."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.core.gkpj import gkpj
from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex
from tests.conftest import random_graph


def brute_force_gkpj(graph, sources, destinations, k):
    """Ground truth: best k among per-source enumerations."""
    pool = []
    for source in set(sources):
        pool.extend(brute_force_topk(graph, source, destinations, k))
    pool.sort()
    return [p.length for p in pool[:k]]


class TestJoin:
    def test_paper_scenario_two_categories(self, paper_built, paper_graph):
        v = paper_built.node_id
        categories = CategoryIndex(
            {"H": [v("v4"), v("v6"), v("v7")], "S": [v("v9"), v("v12")]}
        )
        solver = KPJSolver(paper_graph, categories, landmarks=4)
        result = solver.join(source_category="S", category="H", k=3)
        expected = brute_force_gkpj(
            paper_graph, categories.nodes_of("S"), categories.nodes_of("H"), 3
        )
        assert list(result.lengths) == pytest.approx(expected)
        # Paths must start in V_S and end in V_T, without virtual ids.
        for path in result.paths:
            assert path.source in categories.node_set("S")
            assert path.destination in categories.node_set("H")
            assert max(path.nodes) < paper_graph.n

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_algorithms_agree_on_gkpj(self, paper_built, paper_graph, algorithm):
        v = paper_built.node_id
        solver = KPJSolver(paper_graph, landmarks=4)
        result = solver.join(
            sources=[v("v9"), v("v12")],
            destinations=[v("v4"), v("v6"), v("v7")],
            k=4,
            algorithm=algorithm,
        )
        expected = brute_force_gkpj(
            paper_graph, [v("v9"), v("v12")], [v("v4"), v("v6"), v("v7")], 4
        )
        assert list(result.lengths) == pytest.approx(expected)

    def test_matches_brute_force_random(self):
        rng = random.Random(141)
        for _ in range(15):
            g = random_graph(rng, bidirectional=True)
            sources = rng.sample(range(g.n), 2)
            dests = rng.sample(range(g.n), 2)
            k = rng.randint(1, 5)
            solver = KPJSolver(g, landmarks=2)
            result = solver.join(sources=sources, destinations=dests, k=k)
            expected = brute_force_gkpj(g, sources, dests, k)
            assert list(result.lengths) == pytest.approx(expected)

    def test_single_source_join_equals_top_k(self, paper_built, paper_graph):
        v = paper_built.node_id
        solver = KPJSolver(paper_graph, landmarks=4)
        a = solver.join(
            sources=[v("v1")], destinations=[v("v6"), v("v7")], k=3
        )
        b = solver.top_k(v("v1"), destinations=[v("v6"), v("v7")], k=3)
        assert a.lengths == b.lengths

    def test_source_validation(self, paper_graph):
        solver = KPJSolver(paper_graph, landmarks=None)
        with pytest.raises(QueryError):
            solver.join(destinations=[1], k=2)  # no sources at all
        with pytest.raises(QueryError):
            solver.join(
                source_category="X", sources=[0], destinations=[1], k=2
            )  # both given

    def test_overlapping_source_and_destination(self, line_graph):
        # A node in both V_S and V_T yields a zero-length trivial path.
        solver = KPJSolver(line_graph, landmarks=None)
        result = solver.join(sources=[0, 2], destinations=[2, 4], k=2)
        assert result.paths[0].nodes == (2,)
        assert result.paths[0].length == 0.0


class TestFunctionEntryPoint:
    def test_gkpj_function(self, paper_built, paper_graph):
        v = paper_built.node_id
        result = gkpj(
            paper_graph,
            sources=[v("v9"), v("v12")],
            destinations=[v("v4"), v("v6"), v("v7")],
            k=3,
            landmarks=2,
        )
        expected = brute_force_gkpj(
            paper_graph, [v("v9"), v("v12")], [v("v4"), v("v6"), v("v7")], 3
        )
        assert list(result.lengths) == pytest.approx(expected)
