"""Unit tests for the iteratively bounding driver (Alg. 4)."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.core.iter_bound import iter_bound, iter_bound_search
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex
from tests.conftest import random_graph


def run(graph, source, destinations, k, heuristic=ZERO_BOUNDS, alpha=1.1, stats=None):
    qg = build_query_graph(graph, (source,), destinations)
    paths = iter_bound(qg, k, heuristic, alpha=alpha, stats=stats)
    return [(qg.strip(p.nodes), p.length) for p in paths]


class TestIterBound:
    def test_paper_example(self, paper_built, paper_graph):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run(paper_graph, v("v1"), hotels, 3)
        assert [length for _, length in results] == [5.0, 6.0, 7.0]

    def test_matches_brute_force(self):
        rng = random.Random(101)
        for _ in range(20):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run(g, src, dests, k)]
            assert got == pytest.approx(expected)

    @pytest.mark.parametrize("alpha", [1.01, 1.1, 1.5, 3.0, 10.0])
    def test_alpha_does_not_change_answers(self, paper_built, paper_graph, alpha):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run(paper_graph, v("v1"), hotels, 5, alpha=alpha)
        assert [length for _, length in results] == [5.0, 6.0, 7.0, 7.0, 8.0]

    @pytest.mark.parametrize("alpha", [1.0, 0.5, 0.0])
    def test_invalid_alpha_rejected(self, diamond_graph, alpha):
        with pytest.raises(ValueError):
            run(diamond_graph, 0, (3,), 2, alpha=alpha)

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert run(g, 0, (2,), 3) == []

    def test_dead_end_subspace_terminates(self):
        # A cul-de-sac: once the search commits to 0 -> 1 with edge
        # (1, 2) banned, the subspace is empty; the tau-limit guard
        # must retire it instead of growing tau forever.
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        results = run(g, 0, (3,), 5)
        assert [length for _, length in results] == [3.0]

    def test_exhaustion_detection_prunes_without_limit(self):
        # Same scenario but instrumented: the empty subspace must be
        # counted as pruned.
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        stats = SearchStats()
        run(g, 0, (3,), 5, stats=stats)
        assert stats.subspaces_pruned >= 1

    def test_lb_test_counters(self, paper_built, paper_graph):
        v = paper_built.node_id
        stats = SearchStats()
        run(paper_graph, v("v1"), [v("v4"), v("v6"), v("v7")], 3, stats=stats)
        assert stats.lb_tests > 0
        assert stats.lb_test_failures <= stats.lb_tests

    def test_only_one_full_sp_computation(self, paper_built, paper_graph):
        """IterBound runs a single initial shortest-path computation;
        everything else is bounded testing."""
        v = paper_built.node_id
        stats = SearchStats()
        run(paper_graph, v("v1"), [v("v4"), v("v6"), v("v7")], 3, stats=stats)
        assert stats.shortest_path_computations == 1

    def test_with_landmark_heuristic(self):
        rng = random.Random(102)
        for _ in range(10):
            g = random_graph(rng, bidirectional=True)
            index = LandmarkIndex.build(g, 3, seed=2)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), 2)
            k = rng.randint(1, 5)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            bounds = index.to_target_bounds(tuple(sorted(set(dests))))
            got = [length for _, length in run(g, src, dests, k, heuristic=bounds)]
            assert got == pytest.approx(expected)


class TestIterBoundSearchDriver:
    def test_initial_path_honoured(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        initial = ((0, 1, 3, qg.target), 2.0)
        paths = iter_bound_search(
            qg.graph, qg.source, qg.target, 2, ZERO_BOUNDS, initial=initial
        )
        assert [p.length for p in paths] == [2.0, 3.0]

    def test_before_test_hook_called_with_growing_tau(self, paper_built, paper_graph):
        v = paper_built.node_id
        qg = build_query_graph(
            paper_graph, (v("v1"),), (v("v4"), v("v6"), v("v7"))
        )
        taus = []
        iter_bound_search(
            qg.graph,
            qg.source,
            qg.target,
            3,
            ZERO_BOUNDS,
            before_test=taus.append,
        )
        assert taus, "TestLB was never invoked"
        assert all(t > 0 for t in taus)

    def test_custom_comp_lb_used(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        calls = []

        def comp_lb(subspace):
            calls.append(subspace)
            return 0.0

        paths = iter_bound_search(
            qg.graph, qg.source, qg.target, 2, ZERO_BOUNDS, comp_lb=comp_lb
        )
        assert [p.length for p in paths] == [2.0, 3.0]
        assert calls
