"""Unit tests for the KPJSolver facade and algorithm registry."""

import pytest

from repro.core.kpj import ALGORITHMS, DEFAULT_ALGORITHM, KPJSolver
from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.landmarks.index import LandmarkIndex


@pytest.fixture(scope="module")
def solver(paper_graph, paper_categories):
    return KPJSolver(paper_graph, paper_categories, landmarks=4)


class TestTopK:
    def test_category_query(self, solver, paper_built):
        result = solver.top_k(paper_built.node_id("v1"), category="H", k=3)
        assert result.lengths == (5.0, 6.0, 7.0)
        assert result.algorithm == DEFAULT_ALGORITHM
        assert result.k_found == 3

    def test_explicit_destinations(self, solver, paper_built):
        v = paper_built.node_id
        result = solver.top_k(v("v1"), destinations=[v("v7")], k=1)
        assert result.lengths == (5.0,)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_agrees(self, solver, paper_built, algorithm):
        result = solver.top_k(
            paper_built.node_id("v1"), category="H", k=4, algorithm=algorithm
        )
        assert result.lengths == (5.0, 6.0, 7.0, 7.0)
        assert result.algorithm == algorithm

    def test_paths_live_in_base_graph(self, solver, paper_built, paper_graph):
        result = solver.top_k(paper_built.node_id("v1"), category="H", k=3)
        for path in result.paths:
            assert paper_graph.is_simple_path(path.nodes)
            assert max(path.nodes) < paper_graph.n  # no virtual ids leak

    def test_stats_populated(self, solver, paper_built):
        result = solver.top_k(paper_built.node_id("v1"), category="H", k=3)
        assert result.stats.nodes_settled > 0


class TestKSP:
    def test_single_destination(self, solver, paper_built):
        v = paper_built.node_id
        result = solver.ksp(v("v1"), v("v7"), k=2)
        assert result.lengths[0] == 5.0
        assert result.paths[0].nodes == (v("v1"), v("v8"), v("v7"))

    def test_ksp_equals_top_k_with_singleton(self, solver, paper_built):
        v = paper_built.node_id
        a = solver.ksp(v("v1"), v("v6"), k=3)
        b = solver.top_k(v("v1"), destinations=[v("v6")], k=3)
        assert a.lengths == b.lengths


class TestValidation:
    def test_unknown_algorithm(self, solver, paper_built):
        with pytest.raises(QueryError, match="unknown algorithm"):
            solver.top_k(paper_built.node_id("v1"), category="H", algorithm="magic")

    def test_nonpositive_k(self, solver, paper_built):
        with pytest.raises(QueryError):
            solver.top_k(paper_built.node_id("v1"), category="H", k=0)

    def test_unknown_category(self, solver, paper_built):
        with pytest.raises(QueryError):
            solver.top_k(paper_built.node_id("v1"), category="Restaurant")

    def test_category_and_destinations_conflict(self, solver, paper_built):
        with pytest.raises(QueryError):
            solver.top_k(
                paper_built.node_id("v1"), category="H", destinations=[1]
            )

    def test_neither_category_nor_destinations(self, solver, paper_built):
        with pytest.raises(QueryError):
            solver.top_k(paper_built.node_id("v1"))

    def test_category_without_index(self, paper_graph):
        bare = KPJSolver(paper_graph, landmarks=None)
        with pytest.raises(QueryError, match="CategoryIndex"):
            bare.top_k(0, category="H")


class TestConstruction:
    def test_landmarks_int_builds_index(self, paper_graph, paper_categories):
        solver = KPJSolver(paper_graph, paper_categories, landmarks=3)
        assert solver.landmark_index is not None
        assert solver.landmark_index.size == 3

    def test_landmarks_none(self, paper_graph, paper_categories, paper_built):
        solver = KPJSolver(paper_graph, paper_categories, landmarks=None)
        assert solver.landmark_index is None
        result = solver.top_k(paper_built.node_id("v1"), category="H", k=3)
        assert result.lengths == (5.0, 6.0, 7.0)

    def test_landmarks_prebuilt_index(self, paper_graph, paper_categories):
        index = LandmarkIndex.build(paper_graph, 2)
        solver = KPJSolver(paper_graph, paper_categories, landmarks=index)
        assert solver.landmark_index is index

    def test_unfrozen_graph_is_frozen(self, paper_categories):
        g = DiGraph(3)
        g.add_bidirectional_edge(0, 1, 1.0)
        g.add_bidirectional_edge(1, 2, 1.0)
        solver = KPJSolver(g, CategoryIndex({"X": [2]}), landmarks=None)
        assert g.frozen
        assert solver.top_k(0, category="X", k=1).lengths == (2.0,)


class TestRegistry:
    def test_default_in_registry(self):
        assert DEFAULT_ALGORITHM in ALGORITHMS

    def test_expected_names(self):
        assert set(ALGORITHMS) == {
            "da",
            "da-spt",
            "best-first",
            "iter-bound",
            "iter-bound-sptp",
            "iter-bound-spti",
            "iter-bound-spti-nl",
        }
