"""The paper's comparative claims, asserted with work counters.

Wall-clock comparisons are machine-dependent; the *mechanisms* behind
every figure are not.  These tests pin them on the SJ dataset with
fixed seeds: exploration areas shrink in the order the paper's
algorithm ladder predicts, the deviation paradigm's candidate count
scales with k, and the indexed variants touch a fraction of the graph.
"""

import pytest

from repro.core.kpj import KPJSolver
from repro.core.stats import SearchStats
from repro.datasets.queries import stratified_sources
from repro.datasets.registry import road_network


@pytest.fixture(scope="module")
def setting():
    dataset = road_network("SJ")
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=8)
    workload = stratified_sources(
        dataset.graph, dataset.categories, "T2", per_group=10, seed=3
    )
    return dataset, solver, workload


def batch_stats(solver, sources, algorithm, k=20, category="T2") -> SearchStats:
    total = SearchStats()
    for source in sources:
        result = solver.top_k(source, category=category, k=k, algorithm=algorithm)
        total.merge(result.stats)
    return total


class TestExplorationLadder:
    """Each rung of the paper's ladder explores less than the last."""

    def test_settled_nodes_order(self, setting):
        _, solver, workload = setting
        sources = workload.group("Q3")[:5]
        totals = {
            algorithm: batch_stats(solver, sources, algorithm)
            for algorithm in ("da", "da-spt", "best-first", "iter-bound-spti")
        }
        settled = {name: s.nodes_settled for name, s in totals.items()}
        # DA traverses exhaustively; the SPT and best-first both cut it
        # down; IterBound_I's restricted exploration is far below all.
        assert settled["da"] > settled["da-spt"]
        assert settled["da"] > settled["best-first"]
        assert settled["iter-bound-spti"] * 5 < settled["best-first"]
        # Lemma 4.1 at workload level: BestFirst computes fewer
        # candidate shortest paths than DA.
        assert (
            totals["best-first"].shortest_path_computations
            < totals["da"].shortest_path_computations
        )

    def test_iterbound_family_single_sp_computation(self, setting):
        _, solver, workload = setting
        sources = workload.group("Q3")[:5]
        for algorithm in ("iter-bound", "iter-bound-sptp", "iter-bound-spti"):
            stats = batch_stats(solver, sources, algorithm)
            assert stats.shortest_path_computations == len(sources), algorithm

    def test_deviation_candidates_grow_with_k(self, setting):
        """DA's O(k n) candidate computations, observed."""
        _, solver, workload = setting
        source = workload.group("Q3")[0]
        counts = []
        for k in (5, 10, 20):
            result = solver.top_k(source, category="T2", k=k, algorithm="da")
            counts.append(result.stats.shortest_path_computations)
        assert counts[0] < counts[1] < counts[2]


class TestIndexFootprints:
    def test_full_spt_covers_graph_partial_trees_do_not(self, setting):
        dataset, solver, workload = setting
        source = workload.group("Q1")[0]  # a near query: trees stay small
        full = solver.top_k(source, category="T2", k=20, algorithm="da-spt")
        partial = solver.top_k(
            source, category="T2", k=20, algorithm="iter-bound-sptp"
        )
        incremental = solver.top_k(
            source, category="T2", k=20, algorithm="iter-bound-spti"
        )
        n = dataset.n
        assert full.stats.spt_nodes >= 0.9 * n  # DA-SPT pays for everything
        assert partial.stats.spt_nodes < full.stats.spt_nodes
        assert incremental.stats.spt_nodes < full.stats.spt_nodes

    def test_incremental_tree_tracks_query_difficulty(self, setting):
        """Far queries (Q5) need bigger trees than near ones (Q1)."""
        _, solver, workload = setting
        near = batch_stats(solver, workload.group("Q1")[:5], "iter-bound-spti")
        far = batch_stats(solver, workload.group("Q5")[:5], "iter-bound-spti")
        assert far.spt_nodes > near.spt_nodes


class TestLandmarkEffect:
    def test_landmarks_shrink_exploration(self, setting):
        """IterBound_I vs its NL variant: same answers, fewer nodes."""
        _, solver, workload = setting
        sources = workload.group("Q4")[:5]
        with_lm = batch_stats(solver, sources, "iter-bound-spti")
        without = batch_stats(solver, sources, "iter-bound-spti-nl")
        assert with_lm.nodes_settled < without.nodes_settled

    def test_answers_identical_with_and_without_landmarks(self, setting):
        _, solver, workload = setting
        for source in workload.group("Q4")[:5]:
            a = solver.top_k(source, category="T2", k=20)
            b = solver.top_k(
                source, category="T2", k=20, algorithm="iter-bound-spti-nl"
            )
            assert a.lengths == b.lengths
