"""End-to-end assertions of the paper's running example (Figs. 1–2,
Examples 2.1, 3.1, 4.1).

The fixture graph reproduces the Fig. 1 weights implied by the
worked examples; these tests pin the library to the paper's numbers.
"""

import pytest

from repro.core.kpj import ALGORITHMS, KPJSolver


@pytest.fixture(scope="module")
def solver(paper_graph, paper_categories):
    return KPJSolver(paper_graph, paper_categories, landmarks=4)


class TestExample21:
    """Example 2.1: top-1 from v1 to category H is (v1, v8, v7), length 5."""

    def test_top1(self, solver, paper_built):
        v = paper_built.node_id
        result = solver.top_k(v("v1"), category="H", k=1)
        assert result.paths[0].nodes == (v("v1"), v("v8"), v("v7"))
        assert result.paths[0].length == 5.0


class TestExample31:
    """Example 3.1: the top-3 paths are P1=(v1,v8,v7) len 5,
    P2=(v1,v3,v6) len 6, P3 len 7."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_top3(self, solver, paper_built, algorithm):
        v = paper_built.node_id
        result = solver.top_k(v("v1"), category="H", k=3, algorithm=algorithm)
        assert result.lengths == (5.0, 6.0, 7.0)
        assert result.paths[0].nodes == (v("v1"), v("v8"), v("v7"))
        assert result.paths[1].nodes == (v("v1"), v("v3"), v("v6"))
        # Two paths tie at length 7: (v1,v3,v7) — the paper's P3 — and
        # (v1,v3,v5,v6) — the paper's c(v3) in Fig. 2(c).
        assert result.paths[2].nodes in {
            (v("v1"), v("v3"), v("v7")),
            (v("v1"), v("v3"), v("v5"), v("v6")),
        }


class TestExample41:
    """Example 4.1 context: with k=2 the 2nd path comes from subspace
    S2 = <(v1), {(v1, v8)}> — i.e. it avoids the edge (v1, v8)."""

    def test_second_path_avoids_first_hop(self, solver, paper_built):
        v = paper_built.node_id
        result = solver.top_k(v("v1"), category="H", k=2)
        second = result.paths[1].nodes
        assert second[:2] != (v("v1"), v("v8"))
        assert result.paths[1].length == 6.0


class TestKSPOnGlacierStyleCategory:
    """KPJ with a singleton category behaves exactly like KSP
    (Section 7 treats KSP as a KPJ whose category has one node)."""

    def test_singleton_category(self, paper_graph, paper_built):
        from repro.graph.categories import CategoryIndex

        v = paper_built.node_id
        categories = CategoryIndex({"G": [v("v4")]})
        solver = KPJSolver(paper_graph, categories, landmarks=4)
        a = solver.top_k(v("v1"), category="G", k=3)
        b = solver.ksp(v("v1"), v("v4"), k=3)
        assert a.lengths == b.lengths
        assert a.lengths[0] == 8.0  # v1 -> v3 -> v4
