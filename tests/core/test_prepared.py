"""Unit tests for the prepared-category batch API."""

import pytest

from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def solver(paper_graph, paper_categories):
    return KPJSolver(paper_graph, paper_categories, landmarks=4)


class TestPreparedCategory:
    def test_matches_direct_queries(self, solver, paper_built):
        v = paper_built.node_id
        prepared = solver.prepare(category="H")
        for source_name in ("v1", "v9", "v12"):
            source = v(source_name)
            direct = solver.top_k(source, category="H", k=4)
            batched = prepared.top_k(source, k=4)
            assert batched.lengths == direct.lengths
            assert [p.nodes for p in batched.paths] == [
                p.nodes for p in direct.paths
            ]

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_algorithms_supported(self, solver, paper_built, algorithm):
        v = paper_built.node_id
        prepared = solver.prepare(category="H")
        result = prepared.top_k(v("v1"), k=3, algorithm=algorithm)
        assert result.lengths == (5.0, 6.0, 7.0)

    def test_join_through_prepared(self, solver, paper_built):
        v = paper_built.node_id
        prepared = solver.prepare(category="H")
        direct = solver.join(
            sources=[v("v9"), v("v12")], category="H", k=3
        )
        batched = prepared.join([v("v9"), v("v12")], k=3)
        assert batched.lengths == direct.lengths

    def test_explicit_destinations(self, solver, paper_built):
        v = paper_built.node_id
        prepared = solver.prepare(destinations=[v("v7")])
        assert prepared.destinations == (v("v7"),)
        result = prepared.top_k(v("v1"), k=1)
        assert result.lengths == (5.0,)

    def test_prepare_validation(self, solver):
        with pytest.raises(QueryError):
            solver.prepare()  # neither category nor destinations
        with pytest.raises(QueryError):
            solver.prepare(category="Nope")

    def test_prepared_without_landmarks(self, paper_graph, paper_categories, paper_built):
        bare = KPJSolver(paper_graph, paper_categories, landmarks=None)
        prepared = bare.prepare(category="H")
        v = paper_built.node_id
        assert prepared.top_k(v("v1"), k=3).lengths == (5.0, 6.0, 7.0)
