"""Unit tests for the prepared-category batch API."""

import pytest

from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def solver(paper_graph, paper_categories):
    return KPJSolver(paper_graph, paper_categories, landmarks=4)


class TestPreparedCategory:
    def test_matches_direct_queries(self, solver, paper_built):
        v = paper_built.node_id
        prepared = solver.prepare(category="H")
        for source_name in ("v1", "v9", "v12"):
            source = v(source_name)
            direct = solver.top_k(source, category="H", k=4)
            batched = prepared.top_k(source, k=4)
            assert batched.lengths == direct.lengths
            assert [p.nodes for p in batched.paths] == [
                p.nodes for p in direct.paths
            ]

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_algorithms_supported(self, solver, paper_built, algorithm):
        v = paper_built.node_id
        prepared = solver.prepare(category="H")
        result = prepared.top_k(v("v1"), k=3, algorithm=algorithm)
        assert result.lengths == (5.0, 6.0, 7.0)

    def test_join_through_prepared(self, solver, paper_built):
        v = paper_built.node_id
        prepared = solver.prepare(category="H")
        direct = solver.join(
            sources=[v("v9"), v("v12")], category="H", k=3
        )
        batched = prepared.join([v("v9"), v("v12")], k=3)
        assert batched.lengths == direct.lengths

    def test_explicit_destinations(self, solver, paper_built):
        v = paper_built.node_id
        prepared = solver.prepare(destinations=[v("v7")])
        assert prepared.destinations == (v("v7"),)
        result = prepared.top_k(v("v1"), k=1)
        assert result.lengths == (5.0,)

    def test_prepare_validation(self, solver):
        with pytest.raises(QueryError):
            solver.prepare()  # neither category nor destinations
        with pytest.raises(QueryError):
            solver.prepare(category="Nope")

    def test_prepared_without_landmarks(self, paper_graph, paper_categories, paper_built):
        bare = KPJSolver(paper_graph, paper_categories, landmarks=None)
        prepared = bare.prepare(category="H")
        v = paper_built.node_id
        assert prepared.top_k(v("v1"), k=3).lengths == (5.0, 6.0, 7.0)


class TestPreparedCache:
    """LRU semantics and hit/miss accounting of the solver cache."""

    def _solver(self, paper_graph, paper_categories, **kw):
        return KPJSolver(paper_graph, paper_categories, landmarks=None, **kw)

    def test_repeat_query_hits(self, paper_graph, paper_categories, paper_built):
        s = self._solver(paper_graph, paper_categories)
        v = paper_built.node_id
        first = s.top_k(v("v1"), category="H", k=3)
        second = s.top_k(v("v9"), category="H", k=3)
        assert first.stats.prepared_cache_misses == 1
        assert first.stats.prepared_cache_hits == 0
        assert second.stats.prepared_cache_hits == 1
        assert second.stats.prepared_cache_misses == 0
        info = s.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["entries"] == 1

    def test_distinct_destination_sets_distinct_entries(
        self, paper_graph, paper_categories, paper_built
    ):
        s = self._solver(paper_graph, paper_categories)
        v = paper_built.node_id
        s.top_k(v("v1"), category="H", k=2)
        s.top_k(v("v1"), destinations=[v("v4")], k=2)
        assert s.cache_info()["entries"] == 2
        assert s.cache_info()["misses"] == 2

    def test_duplicate_destinations_share_an_entry(
        self, paper_graph, paper_categories, paper_built
    ):
        s = self._solver(paper_graph, paper_categories)
        v = paper_built.node_id
        dests = [v("v4"), v("v6")]
        s.top_k(v("v1"), destinations=dests, k=2)
        # Re-ordered and duplicated destination lists canonicalise to
        # the same cache key.
        s.top_k(v("v1"), destinations=list(reversed(dests)) + [dests[0]], k=2)
        assert s.cache_info()["hits"] == 1

    def test_lru_eviction_respects_bound(
        self, paper_graph, paper_categories, paper_built
    ):
        s = self._solver(paper_graph, paper_categories, prepared_cache_size=2)
        v = paper_built.node_id
        for name in ("v4", "v6", "v7"):  # three distinct destination sets
            s.top_k(v("v1"), destinations=[v(name)], k=1)
        assert s.cache_info()["entries"] == 2
        # The oldest entry (v4) was evicted: querying it again misses.
        s.top_k(v("v1"), destinations=[v("v4")], k=1)
        assert s.cache_info()["misses"] == 4

    def test_zero_size_disables_caching(
        self, paper_graph, paper_categories, paper_built
    ):
        s = self._solver(paper_graph, paper_categories, prepared_cache_size=0)
        v = paper_built.node_id
        s.top_k(v("v1"), category="H", k=2)
        s.top_k(v("v1"), category="H", k=2)
        info = s.cache_info()
        assert info["entries"] == 0
        assert info["hits"] == 0 and info["misses"] == 2

    def test_invalid_config_rejected(self, paper_graph, paper_categories):
        with pytest.raises(QueryError):
            KPJSolver(paper_graph, paper_categories, kernel="gpu")
        with pytest.raises(QueryError):
            KPJSolver(paper_graph, paper_categories, prepared_cache_size=-1)

    def test_cached_answers_identical_to_cold(
        self, paper_graph, paper_categories, paper_built
    ):
        v = paper_built.node_id
        warm = self._solver(paper_graph, paper_categories)
        warm.top_k(v("v1"), category="H", k=3)  # prime
        cold = self._solver(paper_graph, paper_categories)
        a = warm.top_k(v("v1"), category="H", k=3)
        b = cold.top_k(v("v1"), category="H", k=3)
        assert a.lengths == b.lengths
        assert [p.nodes for p in a.paths] == [p.nodes for p in b.paths]
