"""Prepared-cache edge cases across both kernels.

Three hazards the cache must survive: the category index being
mutated (or swapped out) between queries, LRU eviction happening in
the middle of a batch, and the cache itself changing answers — it may
only ever change *timings*.
"""

import random

import pytest

from repro.core.kpj import KPJSolver
from repro.graph.categories import CategoryIndex
from repro.pathing.kernels import KERNELS
from repro.server.pool import BatchQuery

from tests.conftest import random_graph




def paths_of(result):
    return [(p.length, p.nodes) for p in result.paths]


@pytest.mark.parametrize("kernel", KERNELS)
class TestCategoryMutation:
    def test_index_snapshots_member_iterables(self, paper_graph, paper_built, kernel):
        # CategoryIndex copies its member lists up front: mutating the
        # mapping afterwards must not leak into cached artefacts.
        v = paper_built.node_id
        members = {"H": [v("v4"), v("v6"), v("v7")]}
        index = CategoryIndex(members)
        solver = KPJSolver(paper_graph, index, landmarks=4, kernel=kernel)
        before = solver.top_k(v("v1"), category="H", k=3)
        members["H"].clear()
        after = solver.top_k(v("v1"), category="H", k=3)
        assert paths_of(after) == paths_of(before)
        assert solver.cache_info()["hits"] == 1  # same destination set

    def test_swapped_index_misses_instead_of_serving_stale(
        self, paper_graph, paper_built, kernel
    ):
        # The cache is keyed by the *resolved destination set*, not the
        # category name, so rebinding "H" to different nodes between
        # queries gets a fresh entry — never a stale answer.
        v = paper_built.node_id
        solver = KPJSolver(
            paper_graph,
            CategoryIndex({"H": [v("v4"), v("v6"), v("v7")]}),
            landmarks=4,
            kernel=kernel,
        )
        solver.top_k(v("v1"), category="H", k=3)
        solver.categories = CategoryIndex({"H": [v("v4")]})
        narrowed = solver.top_k(v("v1"), category="H", k=2)
        explicit = solver.top_k(v("v1"), destinations=[v("v4")], k=2)
        assert paths_of(narrowed) == paths_of(explicit)
        assert all(p.nodes[-1] == v("v4") for p in narrowed.paths)
        info = solver.cache_info()
        assert info["entries"] == 2
        assert info["misses"] == 2


@pytest.mark.parametrize("kernel", KERNELS)
class TestEvictionMidBatch:
    def _queries(self, v):
        # Alternate destination sets so a size-1 cache thrashes.
        return [
            BatchQuery(source=v("v1"), category="H", k=3),
            BatchQuery(source=v("v1"), destinations=(v("v13"),), k=2),
            BatchQuery(source=v("v9"), category="H", k=3),
            BatchQuery(source=v("v9"), destinations=(v("v13"),), k=2),
        ]

    def test_thrashing_cache_keeps_answers_identical(
        self, paper_graph, paper_categories, paper_built, kernel
    ):
        v = paper_built.node_id
        tiny = KPJSolver(
            paper_graph, paper_categories, landmarks=4, kernel=kernel,
            prepared_cache_size=1,
        )
        roomy = KPJSolver(
            paper_graph, paper_categories, landmarks=4, kernel=kernel,
        )
        thrashed = tiny.solve_batch(self._queries(v))
        cached = roomy.solve_batch(self._queries(v))
        assert [paths_of(r) for r in thrashed] == [paths_of(r) for r in cached]
        # The size bound held throughout, and every alternation evicted:
        # four queries, two destination sets, zero reuse.
        info = tiny.cache_info()
        assert info["entries"] == 1
        assert info["misses"] == 4
        assert info["hits"] == 0
        # The roomy cache proves reuse was available.
        assert roomy.cache_info()["hits"] == 2

    def test_eviction_under_workers_matches_sequential(
        self, paper_graph, paper_categories, paper_built, kernel
    ):
        v = paper_built.node_id
        solver = KPJSolver(
            paper_graph, paper_categories, landmarks=4, kernel=kernel,
            prepared_cache_size=1,
        )
        sequential = solver.solve_batch(self._queries(v))
        parallel = solver.solve_batch(self._queries(v), workers=2)
        assert [paths_of(r) for r in parallel] == [paths_of(r) for r in sequential]


@pytest.mark.parametrize("kernel", KERNELS)
class TestCacheNeutrality:
    def test_disabled_vs_enabled_path_equality(self, kernel):
        # Property: over random graphs, sources, and k, the cache is
        # invisible in the answers — paths, not just lengths.
        rng = random.Random(20260806)
        for _ in range(8):
            graph = random_graph(rng, min_nodes=6, max_nodes=12)
            destinations = sorted(
                rng.sample(range(graph.n), rng.randint(1, 3))
            )
            uncached = KPJSolver(
                graph, landmarks=2, kernel=kernel, prepared_cache_size=0
            )
            cached = KPJSolver(
                graph, landmarks=2, kernel=kernel, prepared_cache_size=8
            )
            for source in range(graph.n):
                k = rng.randint(1, 4)
                a = uncached.top_k(source, destinations=destinations, k=k)
                b = cached.top_k(source, destinations=destinations, k=k)
                # Ask twice so the cached solver actually serves a hit.
                c = cached.top_k(source, destinations=destinations, k=k)
                assert paths_of(a) == paths_of(b) == paths_of(c)
            assert uncached.cache_info()["entries"] == 0
            assert cached.cache_info()["hits"] > 0
