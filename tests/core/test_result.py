"""Unit tests for Path / QueryResult containers."""

from repro.core.result import Path, QueryResult
from repro.core.stats import SearchStats


class TestPath:
    def test_ordering_by_length_then_nodes(self):
        a = Path(length=1.0, nodes=(0, 1))
        b = Path(length=2.0, nodes=(0, 2))
        c = Path(length=1.0, nodes=(0, 2))
        assert sorted([b, c, a]) == [a, c, b]

    def test_endpoints(self):
        p = Path(length=3.0, nodes=(4, 5, 6))
        assert p.source == 4
        assert p.destination == 6

    def test_len_and_iter(self):
        p = Path(length=3.0, nodes=(4, 5, 6))
        assert len(p) == 3
        assert list(p) == [4, 5, 6]

    def test_frozen(self):
        p = Path(length=1.0, nodes=(0,))
        try:
            p.length = 2.0
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_equality(self):
        assert Path(1.0, (0, 1)) == Path(1.0, (0, 1))
        assert Path(1.0, (0, 1)) != Path(1.0, (0, 2))


class TestQueryResult:
    def make(self):
        paths = [Path(1.0, (0, 1)), Path(2.0, (0, 2))]
        return QueryResult(paths=paths, algorithm="test")

    def test_lengths(self):
        assert self.make().lengths == (1.0, 2.0)

    def test_k_found_and_len(self):
        result = self.make()
        assert result.k_found == 2
        assert len(result) == 2

    def test_iter(self):
        result = self.make()
        assert [p.length for p in result] == [1.0, 2.0]

    def test_default_stats(self):
        assert isinstance(self.make().stats, SearchStats)

    def test_empty_result(self):
        result = QueryResult(paths=[], algorithm="x")
        assert result.lengths == ()
        assert result.k_found == 0

    def test_to_dict_json_round_trip(self):
        import json

        result = self.make()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["algorithm"] == "test"
        assert payload["paths"] == [
            {"length": 1.0, "nodes": [0, 1]},
            {"length": 2.0, "nodes": [0, 2]},
        ]
        assert payload["stats"]["nodes_settled"] == 0

    def test_path_to_dict(self):
        assert Path(3.5, (1, 2, 3)).to_dict() == {
            "length": 3.5,
            "nodes": [1, 2, 3],
        }
