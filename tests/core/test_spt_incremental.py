"""Unit tests for IterBound-SPT_I (Section 5.3, Algs. 7–8)."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk, enumerate_simple_paths
from repro.core.spt_incremental import IncrementalSPT, iter_bound_spti
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex
from repro.pathing.dijkstra import single_source_distances
from tests.conftest import random_graph

INF = float("inf")


def run(graph, source, destinations, k, index=None, stats=None, alpha=1.1):
    qg = build_query_graph(graph, (source,), destinations)
    if index is None:
        tb, sb = ZERO_BOUNDS, ZERO_BOUNDS
    else:
        tb = index.to_target_bounds(qg.destinations)
        sb = index.from_source_bounds(qg.sources)
    paths = iter_bound_spti(qg, k, tb, sb, stats=stats, alpha=alpha)
    return [(qg.strip(p.nodes), p.length) for p in paths]


class TestIncrementalSPT:
    def make(self, seed=121):
        rng = random.Random(seed)
        g = random_graph(rng, min_nodes=12, max_nodes=18, bidirectional=True)
        src = rng.randrange(g.n)
        dests = rng.sample(range(g.n), 3)
        qg = build_query_graph(g, (src,), dests)
        return g, qg

    def test_build_initial_finds_shortest_path(self):
        g, qg = self.make()
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        initial = tree.build_initial(qg.target)
        dist = single_source_distances(qg.graph, qg.source)
        assert initial is not None
        path, length = initial
        assert length == pytest.approx(dist[qg.target])
        assert path[0] == qg.source and path[-1] == qg.target

    def test_settled_distances_are_exact(self):
        g, qg = self.make(seed=122)
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        tree.build_initial(qg.target)
        tree.grow(10.0)
        dist = single_source_distances(qg.graph, qg.source)
        for v, d in tree.settled.items():
            assert d == pytest.approx(dist[v])

    def test_prop_5_2_grow_covers_short_paths(self):
        """After grow(tau), every node of every path of length <= tau
        from the source to the target is settled (Prop. 5.2)."""
        g, qg = self.make(seed=123)
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        initial = tree.build_initial(qg.target)
        assert initial is not None
        tau = initial[1] * 1.5
        tree.grow(tau)
        for path in enumerate_simple_paths(qg.graph, qg.source, (qg.target,)):
            if path.length <= tau:
                assert all(v in tree for v in path.nodes)

    def test_grow_is_monotone(self):
        g, qg = self.make(seed=124)
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        tree.build_initial(qg.target)
        before = len(tree)
        tree.grow(5.0)
        mid = len(tree)
        tree.grow(20.0)
        assert before <= mid <= len(tree)

    def test_settled_destinations_tracked(self):
        g, qg = self.make(seed=125)
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        tree.build_initial(qg.target)
        tree.grow(1e9)
        dist = single_source_distances(qg.graph, qg.source)
        expected = {v for v in qg.destinations if dist[v] < INF}
        assert tree.settled_destinations == expected

    def test_distance_lookup(self):
        g, qg = self.make(seed=126)
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        tree.build_initial(qg.target)
        assert tree.distance(qg.source) == 0.0
        assert tree.distance(-1) is None

    def test_unreachable_target(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        qg = build_query_graph(g, (0,), (2,))
        tree = IncrementalSPT(qg, ZERO_BOUNDS)
        assert tree.build_initial(qg.target) is None


class TestIterBoundSPTI:
    def test_paper_example(self, paper_built, paper_graph):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run(paper_graph, v("v1"), hotels, 3)
        assert [length for _, length in results] == [5.0, 6.0, 7.0]
        assert results[0][0] == (v("v1"), v("v8"), v("v7"))

    def test_matches_brute_force_no_landmarks(self):
        rng = random.Random(131)
        for _ in range(25):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run(g, src, dests, k)]
            assert got == pytest.approx(expected)

    def test_matches_brute_force_with_landmarks(self):
        rng = random.Random(132)
        for _ in range(20):
            g = random_graph(rng, bidirectional=True)
            index = LandmarkIndex.build(g, 3, seed=5)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run(g, src, dests, k, index=index)]
            assert got == pytest.approx(expected)

    def test_paths_are_forward_oriented(self, paper_built, paper_graph):
        """The reverse-orientation search must return source->dest paths."""
        v = paper_built.node_id
        results = run(paper_graph, v("v1"), [v("v7")], 2)
        for path, _ in results:
            assert path[0] == v("v1")
            assert path[-1] == v("v7")
            assert paper_graph.is_simple_path(path)

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert run(g, 0, (2,), 3) == []

    def test_source_is_destination(self, line_graph):
        results = run(line_graph, 2, (2, 4), 2)
        assert results[0] == ((2,), 0.0)

    def test_single_initial_sp_computation(self, paper_built, paper_graph):
        v = paper_built.node_id
        stats = SearchStats()
        run(paper_graph, v("v1"), [v("v4"), v("v6"), v("v7")], 3, stats=stats)
        assert stats.shortest_path_computations == 1

    def test_spti_size_recorded_and_partial(self):
        # Local query on a long ladder (2 x 30): alternative paths
        # exist near the source, so the tree must stay local instead of
        # spanning the graph.
        edges = []
        for i in range(29):
            edges.append((i, i + 1, 1.0))  # bottom rail
            edges.append((30 + i, 31 + i, 1.0))  # top rail
        for i in range(30):
            edges.append((i, 30 + i, 1.0))  # rungs
        g = DiGraph.from_edges(60, edges, bidirectional=True)
        stats = SearchStats()
        results = run(g, 5, (8,), 3, stats=stats)
        assert [length for _, length in results] == [3.0, 5.0, 5.0]
        assert 0 < stats.spt_nodes < 45

    def test_exhausts_graph_when_k_exceeds_path_count(self):
        # Only one simple path exists; asking for two forces the
        # driver to prove the rest of the space empty (tree covers all).
        g = DiGraph.from_edges(
            60, [(i, i + 1, 1.0) for i in range(59)], bidirectional=True
        )
        stats = SearchStats()
        results = run(g, 5, (8,), 2, stats=stats)
        assert [length for _, length in results] == [3.0]

    def test_dead_end_terminates(self):
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        results = run(g, 0, (3,), 5)
        assert [length for _, length in results] == [3.0]

    @pytest.mark.parametrize("alpha", [1.05, 1.5, 4.0])
    def test_alpha_invariance(self, paper_built, paper_graph, alpha):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run(paper_graph, v("v1"), hotels, 4, alpha=alpha)
        assert [length for _, length in results] == [5.0, 6.0, 7.0, 7.0]
