"""Unit tests for IterBound-SPT_P (Section 5.2)."""

import random

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.core.spt_partial import SPTPHeuristic, iter_bound_sptp
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex
from repro.pathing.spt import PartialSPT
from tests.conftest import random_graph


def run(graph, source, destinations, k, index=None, stats=None):
    qg = build_query_graph(graph, (source,), destinations)
    if index is None:
        tb, sb = ZERO_BOUNDS, ZERO_BOUNDS
    else:
        tb = index.to_target_bounds(qg.destinations)
        sb = index.from_source_bounds(qg.sources)
    paths = iter_bound_sptp(qg, k, tb, sb, stats=stats)
    return [(qg.strip(p.nodes), p.length) for p in paths]


class TestSPTPHeuristic:
    def test_tree_hit_returns_exact(self):
        tree = PartialSPT({5: 7.5}, {}, None)
        h = SPTPHeuristic(tree, lambda v: 1.0)
        assert h(5) == 7.5

    def test_tree_miss_falls_back(self):
        tree = PartialSPT({5: 7.5}, {}, None)
        h = SPTPHeuristic(tree, lambda v: 1.25)
        assert h(6) == 1.25

    def test_zero_distance_hit_not_confused_with_miss(self):
        tree = PartialSPT({5: 0.0}, {}, None)
        h = SPTPHeuristic(tree, lambda v: 99.0)
        assert h(5) == 0.0


class TestIterBoundSPTP:
    def test_paper_example(self, paper_built, paper_graph):
        v = paper_built.node_id
        hotels = [v("v4"), v("v6"), v("v7")]
        results = run(paper_graph, v("v1"), hotels, 3)
        assert [length for _, length in results] == [5.0, 6.0, 7.0]

    def test_matches_brute_force_no_landmarks(self):
        rng = random.Random(111)
        for _ in range(20):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run(g, src, dests, k)]
            assert got == pytest.approx(expected)

    def test_matches_brute_force_with_landmarks(self):
        rng = random.Random(112)
        for _ in range(15):
            g = random_graph(rng, bidirectional=True)
            index = LandmarkIndex.build(g, 3, seed=4)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), rng.randint(1, 3))
            k = rng.randint(1, 6)
            expected = [p.length for p in brute_force_topk(g, src, dests, k)]
            got = [length for _, length in run(g, src, dests, k, index=index)]
            assert got == pytest.approx(expected)

    def test_no_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert run(g, 0, (2,), 3) == []

    def test_partial_tree_size_recorded(self, paper_built, paper_graph):
        v = paper_built.node_id
        stats = SearchStats()
        run(paper_graph, v("v1"), [v("v4"), v("v6"), v("v7")], 1, stats=stats)
        assert stats.spt_nodes > 0

    def test_partial_tree_smaller_than_graph_when_query_local(self):
        # Long line, source right next to the destination: SPT_P must
        # not cover the whole graph (that is DA-SPT's flaw).
        g = DiGraph.from_edges(
            50, [(i, i + 1, 1.0) for i in range(49)], bidirectional=True
        )
        stats = SearchStats()
        run(g, 47, (49,), 1, stats=stats)
        assert stats.spt_nodes < 25
