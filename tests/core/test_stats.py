"""Unit tests for the SearchStats counters."""

from dataclasses import fields

from repro.core.stats import WORK_PARITY_FIELDS, SearchStats


class TestSearchStats:
    def test_defaults_zero(self):
        stats = SearchStats()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_merge_adds_fieldwise(self):
        a = SearchStats(nodes_settled=3, lb_tests=1)
        b = SearchStats(nodes_settled=4, shortest_path_computations=2)
        result = a.merge(b)
        assert result is a
        assert a.nodes_settled == 7
        assert a.lb_tests == 1
        assert a.shortest_path_computations == 2

    def test_merge_chainable(self):
        total = SearchStats()
        for _ in range(3):
            total.merge(SearchStats(edges_relaxed=2))
        assert total.edges_relaxed == 6

    def test_as_dict_covers_all_fields(self):
        d = SearchStats().as_dict()
        assert set(d) == {
            "shortest_path_computations",
            "lower_bound_computations",
            "lb_tests",
            "lb_test_failures",
            "lb_test_hits",
            "lb_test_misses",
            "lb_test_retires",
            "nodes_settled",
            "edges_relaxed",
            "heap_pushes",
            "heap_pops",
            "batch_rounds",
            "batch_slots_filled",
            "spt_nodes",
            "subspaces_created",
            "subspaces_pruned",
            "dict_kernel_calls",
            "flat_kernel_calls",
            "native_kernel_calls",
            "prepared_cache_hits",
            "prepared_cache_misses",
        }

    def test_parity_fields_are_real_fields(self):
        names = {f.name for f in fields(SearchStats)}
        assert set(WORK_PARITY_FIELDS) <= names
        # The exclusions are exactly the dispatch counters and the
        # native-only batch occupancy.
        assert names - set(WORK_PARITY_FIELDS) == {
            "dict_kernel_calls",
            "flat_kernel_calls",
            "native_kernel_calls",
            "batch_rounds",
            "batch_slots_filled",
        }

    def test_mutation(self):
        stats = SearchStats()
        stats.nodes_settled += 5
        assert stats.as_dict()["nodes_settled"] == 5

    def test_nonzero_filters_zero_counters(self):
        stats = SearchStats(nodes_settled=3, lb_tests=1)
        assert stats.nonzero() == {"nodes_settled": 3, "lb_tests": 1}

    def test_nonzero_empty_when_fresh(self):
        assert SearchStats().nonzero() == {}
