"""Unit tests for subspaces and their division (Section 4.1).

The load-bearing property is that :func:`divide` produces a
*partition*: the child subspaces are pairwise disjoint and their union
plus the removed path equals the parent subspace.  We verify it by
exhaustively enumerating subspace members on small graphs.
"""

import random

import pytest

from repro.baselines.brute_force import enumerate_simple_paths
from repro.core.subspace import Subspace, compute_lower_bound, divide
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.pathing.dijkstra import constrained_shortest_path
from tests.conftest import random_graph


def members(qg, subspace):
    """All paths of the subspace, by filtered enumeration on G_Q."""
    out = set()
    for path in enumerate_simple_paths(qg.graph, qg.source, (qg.target,)):
        nodes = path.nodes
        if len(nodes) < len(subspace.prefix):
            continue
        if nodes[: len(subspace.prefix)] != subspace.prefix:
            continue
        at = len(subspace.prefix)
        if at < len(nodes) and nodes[at] in subspace.banned:
            continue
        out.add(nodes)
    return out


class TestSubspace:
    def test_entire_space(self):
        s = Subspace.entire(7)
        assert s.prefix == (7,)
        assert s.banned == frozenset()
        assert s.prefix_weight == 0.0
        assert s.head == 7
        assert s.blocked == ()

    def test_child_at_head(self):
        s = Subspace((1, 2), frozenset({5}), 3.0)
        child = s.child_at_head(6)
        assert child.prefix == (1, 2)
        assert child.banned == frozenset({5, 6})
        assert child.prefix_weight == 3.0
        # Parent unchanged (immutability).
        assert s.banned == frozenset({5})


class TestDivide:
    def test_division_is_partition(self):
        rng = random.Random(81)
        for _ in range(15):
            g = random_graph(rng, min_nodes=5, max_nodes=8)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), 2)
            qg = build_query_graph(g, (src,), dests)
            root = Subspace.entire(qg.source)
            all_paths = members(qg, root)
            if not all_paths:
                continue
            # The parent's shortest path (any member works for the
            # partition property — use the true shortest).
            best = min(all_paths, key=lambda nodes: qg.graph.path_weight(nodes))
            length = qg.graph.path_weight(best)
            children = list(divide(root, best, length, qg.graph.edge_weight))
            child_sets = [members(qg, c) for c in children]
            # Disjoint...
            for i in range(len(child_sets)):
                for j in range(i + 1, len(child_sets)):
                    assert not (child_sets[i] & child_sets[j])
            # ...and together with {best} they cover the parent.
            union = set().union(*child_sets) if child_sets else set()
            assert union | {best} == all_paths
            assert best not in union

    def test_child_count_matches_path_interior(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        root = Subspace.entire(0)
        path = (0, 1, 3, qg.target)
        children = list(divide(root, path, 2.0, qg.graph.edge_weight))
        # One child at the head + one per interior node (1, 3).
        assert len(children) == 3
        assert children[0].prefix == (0,) and children[0].banned == {1}
        assert children[1].prefix == (0, 1) and children[1].banned == {3}
        assert children[2].prefix == (0, 1, 3) and children[2].banned == {qg.target}

    def test_prefix_weights_accumulate(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        root = Subspace.entire(0)
        children = list(divide(root, (0, 2, 3, 4), 3.0, qg.graph.edge_weight))
        weights = [c.prefix_weight for c in children]
        assert weights == [0.0, 1.0, 3.0]

    def test_divide_requires_matching_prefix(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        sub = Subspace((0, 1), frozenset(), 1.0)
        with pytest.raises(AssertionError):
            list(divide(sub, (0, 2, 3, 4), 3.0, qg.graph.edge_weight))


class TestCompLB:
    def heuristic(self, qg):
        """Exact remaining distance on G_Q — the tightest valid bound."""
        from repro.pathing.dijkstra import single_source_distances

        dist = single_source_distances(qg.reversed_graph(), qg.target)

        def h(v):
            d = dist[v]
            return d if d != float("inf") else 0.0

        return h

    def test_lower_bound_is_admissible(self):
        rng = random.Random(82)
        for _ in range(15):
            g = random_graph(rng, min_nodes=6, max_nodes=10)
            src = rng.randrange(g.n)
            dests = rng.sample(range(g.n), 2)
            qg = build_query_graph(g, (src,), dests)
            h = self.heuristic(qg)
            sub = Subspace.entire(qg.source)
            bound = compute_lower_bound(qg.graph.adjacency, sub, h)
            actual = constrained_shortest_path(qg.graph, qg.source, qg.target)
            if actual is None:
                continue
            assert bound <= actual[1] + 1e-9

    def test_no_valid_edges_gives_inf(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        sub = Subspace((0,), frozenset({1, 2}), 0.0)
        assert compute_lower_bound(qg.graph.adjacency, sub, lambda _: 0.0) == float(
            "inf"
        )

    def test_banned_and_prefix_edges_skipped(self, diamond_graph):
        qg = build_query_graph(diamond_graph, (0,), (3,))
        h = self.heuristic(qg)
        # With edge (0,1) banned, the bound goes through 2: 1 + 2 = 3.
        sub = Subspace((0,), frozenset({1}), 0.0)
        assert compute_lower_bound(qg.graph.adjacency, sub, h) == pytest.approx(3.0)

    def test_one_hop_bound_at_least_plain_heuristic(self, diamond_graph):
        """Alg. 3's bound dominates the naive w(prefix) + h(u)."""
        qg = build_query_graph(diamond_graph, (0,), (3,))
        h = self.heuristic(qg)
        sub = Subspace.entire(0)
        bound = compute_lower_bound(qg.graph.adjacency, sub, h)
        assert bound >= h(0) - 1e-9
