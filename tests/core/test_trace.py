"""Unit tests for search tracing."""

import pytest

from repro.core.iter_bound import iter_bound
from repro.core.trace import SearchTrace, TraceEvent
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS
from repro.pathing.kernels import KERNELS


class TestTraceEvent:
    def test_render_contains_fields(self):
        event = TraceEvent("test-hit", (0, 1), 3.0, tau=4.0, length=3.5)
        text = event.render()
        assert "test-hit" in text
        assert "tau=4" in text
        assert "length=3.5" in text

    def test_render_optional_fields_omitted(self):
        text = TraceEvent("output", (0,), 2.0).render()
        assert "tau=" not in text
        assert "length=" not in text


class TestSearchTrace:
    def run_traced(self, paper_graph, paper_built, k=3):
        v = paper_built.node_id
        qg = build_query_graph(
            paper_graph, (v("v1"),), (v("v4"), v("v6"), v("v7"))
        )
        trace = SearchTrace()
        paths = iter_bound(qg, k, ZERO_BOUNDS, trace=trace)
        return trace, paths

    def test_records_one_output_per_path(self, paper_graph, paper_built):
        trace, paths = self.run_traced(paper_graph, paper_built)
        assert trace.counts().get("output") == len(paths) == 3

    def test_tau_schedule_is_positive_and_bounded_below_by_first(
        self, paper_graph, paper_built
    ):
        trace, paths = self.run_traced(paper_graph, paper_built)
        schedule = trace.tau_schedule()
        assert schedule, "no TestLB recorded"
        first_length = paths[0].length
        assert all(tau > first_length for tau in schedule)

    def test_hits_and_misses_sum_to_lb_tests(self, paper_graph, paper_built):
        from repro.core.stats import SearchStats

        v = paper_built.node_id
        qg = build_query_graph(
            paper_graph, (v("v1"),), (v("v4"), v("v6"), v("v7"))
        )
        trace = SearchTrace()
        stats = SearchStats()
        iter_bound(qg, 3, ZERO_BOUNDS, stats=stats, trace=trace)
        counts = trace.counts()
        tested = (
            counts.get("test-hit", 0)
            + counts.get("test-miss", 0)
            + counts.get("retire", 0)
        )
        assert tested == stats.lb_tests

    def test_render_limit(self, paper_graph, paper_built):
        trace, _ = self.run_traced(paper_graph, paper_built)
        full = trace.render()
        short = trace.render(limit=1)
        assert "totals:" in full
        assert "more events" in short
        assert len(short.splitlines()) <= 3

    def test_no_trace_means_no_overhead_paths_identical(
        self, paper_graph, paper_built
    ):
        v = paper_built.node_id
        qg = build_query_graph(
            paper_graph, (v("v1"),), (v("v4"), v("v6"), v("v7"))
        )
        traced = iter_bound(qg, 3, ZERO_BOUNDS, trace=SearchTrace())
        plain = iter_bound(qg, 3, ZERO_BOUNDS)
        assert [p.length for p in traced] == [p.length for p in plain]

    def test_len(self, paper_graph, paper_built):
        trace, _ = self.run_traced(paper_graph, paper_built)
        assert len(trace) == len(trace.events) > 0


class TestTraceEquivalence:
    """The flat and dict engines must narrate the same search."""

    def test_flat_and_dict_engines_record_identical_events(
        self, paper_graph, paper_built
    ):
        from repro.core.spt_incremental import iter_bound_spti

        v = paper_built.node_id
        qg = build_query_graph(
            paper_graph, (v("v1"),), (v("v4"), v("v6"), v("v7"))
        )
        t_dict, t_flat = SearchTrace(), SearchTrace()
        p_dict = iter_bound_spti(
            qg, 3, ZERO_BOUNDS, ZERO_BOUNDS, flat_core=False, trace=t_dict
        )
        p_flat = iter_bound_spti(
            qg, 3, ZERO_BOUNDS, ZERO_BOUNDS, flat_core=True, trace=t_flat
        )
        assert [p.length for p in p_dict] == [p.length for p in p_flat]
        assert t_dict.events == t_flat.events

    def test_equivalence_on_registry_dataset(self):
        from repro.core.spt_incremental import iter_bound_spti
        from repro.datasets.registry import road_network
        from repro.landmarks.index import LandmarkIndex

        dataset = road_network("SJ")
        lm = LandmarkIndex.build(dataset.graph, 4)
        destinations = dataset.categories.nodes_of("T2")
        qg = build_query_graph(dataset.graph, (100,), destinations)
        bounds = lm.to_target_bounds(qg.destinations)
        source_bounds = lm.lazy_source_bounds(qg.sources)
        t_dict, t_flat = SearchTrace(), SearchTrace()
        p_dict = iter_bound_spti(
            qg, 5, bounds, source_bounds, flat_core=False, trace=t_dict
        )
        p_flat = iter_bound_spti(
            qg, 5, bounds, source_bounds, flat_core=True, trace=t_flat
        )
        assert [p.nodes for p in p_dict] == [p.nodes for p in p_flat]
        assert t_dict.events == t_flat.events


class TestExplainCLI:
    def test_explain_prints_narrative(self, capsys):
        from repro.cli import main

        code = main(
            [
                "explain",
                "--dataset",
                "SJ",
                "--source",
                "100",
                "--category",
                "T2",
                "--k",
                "2",
                "--landmarks",
                "4",
                "--limit",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iter-bound (dict kernel) on SJ" in out
        assert "totals:" in out
        assert "found 2 paths" in out

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_explain_spti_narrates_either_kernel(self, capsys, kernel):
        from repro.cli import main

        code = main(
            [
                "explain",
                "--dataset",
                "SJ",
                "--source",
                "100",
                "--category",
                "T2",
                "--k",
                "2",
                "--landmarks",
                "4",
                "--kernel",
                kernel,
                "--algorithm",
                "iter-bound-spti",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"iter-bound-spti ({kernel} kernel) on SJ" in out
        assert "totals:" in out
        assert "found 2 paths" in out

    def test_explain_bad_source(self, capsys):
        from repro.cli import main

        code = main(
            [
                "explain",
                "--dataset",
                "SJ",
                "--source",
                "123456",
                "--category",
                "T2",
            ]
        )
        assert code == 2
