"""Unit tests for top-k general shortest paths (walks)."""

import random

import pytest

from repro.baselines.yen import yen_ksp
from repro.core.walks import top_k_walks
from repro.graph.digraph import DiGraph
from tests.conftest import random_graph


class TestTopKWalks:
    def test_diamond_two_walks(self, diamond_graph):
        walks = top_k_walks(diamond_graph, 0, 3, 5)
        assert [w.length for w in walks] == [2.0, 3.0]

    def test_cycle_generates_infinitely_many(self):
        # 0 -> 1 -> 0 cycle before the target: lengths 2, 4, 6, ...
        g = DiGraph.from_edges(
            3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)]
        )
        walks = top_k_walks(g, 0, 2, 4)
        assert [w.length for w in walks] == [2.0, 4.0, 6.0, 8.0]
        assert walks[1].nodes == (0, 1, 0, 1, 2)

    def test_walks_lower_bound_simple_paths(self):
        """The i-th walk is never longer than the i-th simple path."""
        rng = random.Random(161)
        for _ in range(20):
            g = random_graph(rng, bidirectional=True)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            if src == dst:
                continue
            k = rng.randint(1, 6)
            simple = yen_ksp(g, src, dst, k)
            walks = top_k_walks(g, src, dst, k)
            assert len(walks) >= len(simple)
            for walk, path in zip(walks, simple):
                assert walk.length <= path.length + 1e-9

    def test_equals_simple_paths_on_dag(self):
        """On a DAG every walk is simple, so the problems coincide."""
        rng = random.Random(162)
        for _ in range(15):
            n = rng.randint(5, 10)
            g = DiGraph(n)
            for u in range(n):
                for v in range(u + 1, n):  # edges only forward: acyclic
                    if rng.random() < 0.5:
                        g.add_edge(u, v, float(rng.randint(1, 9)))
            g.freeze()
            k = rng.randint(1, 6)
            walks = top_k_walks(g, 0, n - 1, k)
            simple = yen_ksp(g, 0, n - 1, k)
            assert [w.length for w in walks] == pytest.approx(
                [p.length for p in simple]
            )

    def test_lengths_non_decreasing(self):
        rng = random.Random(163)
        g = random_graph(rng, bidirectional=True)
        walks = top_k_walks(g, 0, g.n - 1, 20)
        lengths = [w.length for w in walks]
        assert lengths == sorted(lengths)

    def test_walk_weights_verify(self):
        rng = random.Random(164)
        g = random_graph(rng, bidirectional=True)
        for walk in top_k_walks(g, 0, g.n - 1, 10):
            assert g.path_weight(walk.nodes) == pytest.approx(walk.length)
            assert walk.nodes[0] == 0
            assert walk.nodes[-1] == g.n - 1

    def test_unreachable_target(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert top_k_walks(g, 0, 2, 3) == []

    def test_k_nonpositive(self, diamond_graph):
        assert top_k_walks(diamond_graph, 0, 3, 0) == []

    def test_source_equals_target(self):
        # Walks from a node to itself: the trivial walk plus cycles.
        g = DiGraph.from_edges(2, [(0, 1, 1.0), (1, 0, 2.0)])
        walks = top_k_walks(g, 0, 0, 3)
        assert walks[0].nodes == (0,)
        assert walks[0].length == 0.0
        assert walks[1].length == 3.0  # 0 -> 1 -> 0
