"""Unit tests for the dataset disk cache."""

import pytest

from repro.datasets.cache import cached_road_network, load_dataset, save_dataset
from repro.datasets.registry import road_network
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.io import save_npz


class TestDatasetCache:
    def test_round_trip(self, tmp_path):
        original = road_network("SJ")
        path = tmp_path / "sj.npz"
        save_dataset(original, path)
        loaded = load_dataset(path, name="SJ")
        assert loaded.n == original.n
        assert loaded.m == original.m
        assert sorted(loaded.graph.edges()) == sorted(original.graph.edges())
        for category in ("T1", "T2", "T3", "T4"):
            assert loaded.categories.nodes_of(category) == (
                original.categories.nodes_of(category)
            )
        assert loaded.coordinates.tolist() == original.coordinates.tolist()

    def test_name_defaults_to_stem(self, tmp_path):
        original = road_network("SJ")
        path = tmp_path / "mytown.npz"
        save_dataset(original, path)
        assert load_dataset(path).name == "mytown"

    def test_rejects_non_dataset_snapshot(self, tmp_path):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        path = tmp_path / "bare.npz"
        save_npz(path, g)  # no categories/coordinates
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_cached_road_network_creates_then_reuses(self, tmp_path):
        first = cached_road_network("SJ", tmp_path)
        snapshot = tmp_path / "SJ-seed0.npz"
        assert snapshot.exists()
        second = cached_road_network("SJ", tmp_path)
        assert second.n == first.n
        assert sorted(second.graph.edges()) == sorted(first.graph.edges())

    def test_cached_solver_equivalence(self, tmp_path):
        """Queries on the cached dataset match the generated one."""
        from repro.core.kpj import KPJSolver

        generated = road_network("SJ")
        cached = cached_road_network("SJ", tmp_path)
        a = KPJSolver(generated.graph, generated.categories, landmarks=4)
        b = KPJSolver(cached.graph, cached.categories, landmarks=4)
        ra = a.top_k(100, category="T2", k=5)
        rb = b.top_k(100, category="T2", k=5)
        assert ra.lengths == rb.lengths
