"""Unit tests for POI / category generation."""

import pytest

from repro.datasets.poi import (
    CAL_FEATURED_CATEGORIES,
    NESTED_DENSITIES,
    cal_style_categories,
    nested_categories,
)
from repro.datasets.synthetic import grid_road_network
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def graph():
    g, _ = grid_road_network(40, 40, seed=0)
    return g


class TestCalStyle:
    def test_featured_cardinalities(self, graph):
        index = cal_style_categories(graph, seed=1)
        for name, size in CAL_FEATURED_CATEGORIES.items():
            assert index.size(name) == min(size, graph.n)

    def test_sixty_two_categories(self, graph):
        index = cal_style_categories(graph, seed=1)
        assert len(index) == 62

    def test_nodes_in_range(self, graph):
        index = cal_style_categories(graph, seed=2)
        for name in index:
            assert all(0 <= v < graph.n for v in index.nodes_of(name))

    def test_deterministic(self, graph):
        a = cal_style_categories(graph, seed=3)
        b = cal_style_categories(graph, seed=3)
        for name in a:
            assert a.nodes_of(name) == b.nodes_of(name)

    def test_glacier_is_singleton(self, graph):
        index = cal_style_categories(graph, seed=4)
        assert index.size("Glacier") == 1


class TestNested:
    def test_nesting_property(self, graph):
        index = nested_categories(graph, seed=1)
        names = list(NESTED_DENSITIES)
        for smaller, larger in zip(names, names[1:]):
            assert set(index.nodes_of(smaller)) < set(index.nodes_of(larger))

    def test_sizes_match_densities(self, graph):
        index = nested_categories(graph, seed=2)
        for name, density in NESTED_DENSITIES.items():
            expected = max(1, int(round(graph.n * density)))
            assert abs(index.size(name) - expected) <= 3  # nesting padding

    def test_strictly_growing(self, graph):
        index = nested_categories(graph, seed=3)
        sizes = [index.size(name) for name in NESTED_DENSITIES]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)

    def test_custom_densities(self, graph):
        index = nested_categories(
            graph, seed=4, densities={"A": 0.01, "B": 0.02}
        )
        assert set(index.nodes_of("A")) < set(index.nodes_of("B"))

    def test_density_too_large_rejected(self, graph):
        with pytest.raises(DatasetError):
            nested_categories(graph, densities={"X": 2.0})

    def test_deterministic(self, graph):
        a = nested_categories(graph, seed=5)
        b = nested_categories(graph, seed=5)
        assert a.nodes_of("T4") == b.nodes_of("T4")
