"""Unit tests for the stratified query workloads."""

import pytest

from repro.datasets.queries import (
    QueryWorkload,
    distances_to_targets,
    stratified_sources,
)
from repro.datasets.registry import road_network
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

INF = float("inf")


@pytest.fixture(scope="module")
def sj():
    return road_network("SJ")


@pytest.fixture(scope="module")
def workload(sj):
    return stratified_sources(
        sj.graph, sj.categories, "T2", per_group=10, seed=1
    )


class TestDistancesToTargets:
    def test_line(self, line_graph):
        dist = distances_to_targets(line_graph, (4,))
        assert dist == [4.0, 3.0, 2.0, 1.0, 0.0]

    def test_respects_direction(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        dist = distances_to_targets(g, (2,))
        assert dist == [2.0, 1.0, 0.0]
        assert distances_to_targets(g, (0,)) == [0.0, INF, INF]


class TestStratification:
    def test_five_groups_of_requested_size(self, workload):
        assert len(workload.groups) == 5
        for group in workload.groups:
            assert len(group) == 10

    def test_groups_ordered_by_distance(self, sj, workload):
        dist = distances_to_targets(sj.graph, workload.destinations)
        for nearer, farther in zip(workload.groups, workload.groups[1:]):
            assert max(dist[v] for v in nearer) <= min(dist[v] for v in farther) + 1e-9 or (
                # Groups are random samples from ordered slices, so only
                # the slice boundaries are strictly ordered; check means.
                sum(dist[v] for v in nearer) / len(nearer)
                < sum(dist[v] for v in farther) / len(farther)
            )

    def test_sources_can_reach_category(self, sj, workload):
        dist = distances_to_targets(sj.graph, workload.destinations)
        for group in workload.groups:
            assert all(dist[v] < INF for v in group)

    def test_deterministic(self, sj):
        a = stratified_sources(sj.graph, sj.categories, "T2", per_group=5, seed=2)
        b = stratified_sources(sj.graph, sj.categories, "T2", per_group=5, seed=2)
        assert a.groups == b.groups

    def test_group_lookup(self, workload):
        assert workload.group("Q1") == workload.groups[0]
        assert workload.group("q3") == workload.groups[2]
        assert workload.group(5) == workload.groups[4]

    def test_group_lookup_errors(self, workload):
        with pytest.raises(QueryError):
            workload.group("Q9")
        with pytest.raises(QueryError):
            workload.group("X1")
        with pytest.raises(QueryError):
            workload.group(0)

    def test_small_slices_returned_whole(self):
        g = DiGraph.from_edges(
            10, [(i, i + 1, 1.0) for i in range(9)], bidirectional=True
        )
        from repro.graph.categories import CategoryIndex

        categories = CategoryIndex({"X": [0]})
        workload = stratified_sources(g, categories, "X", per_group=100, seed=0)
        total = sum(len(g) for g in workload.groups)
        assert total == 10  # everything reachable, nothing duplicated

    def test_too_few_reachable_nodes_raises(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        from repro.graph.categories import CategoryIndex

        categories = CategoryIndex({"X": [1]})
        with pytest.raises(QueryError):
            stratified_sources(g, categories, "X", num_groups=5)
