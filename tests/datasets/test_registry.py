"""Unit tests for the dataset registry (small datasets only)."""

import pytest

from repro.datasets.registry import (
    DATASET_GRIDS,
    PAPER_SIZES,
    available_datasets,
    road_network,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_available_names(self):
        assert available_datasets() == ("SJ", "CAL", "SF", "COL", "FLA", "USA")

    def test_paper_sizes_cover_all(self):
        assert set(PAPER_SIZES) == set(DATASET_GRIDS)

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            road_network("MARS")

    def test_sj_shape(self):
        sj = road_network("SJ")
        assert sj.name == "SJ"
        rows, cols = DATASET_GRIDS["SJ"]
        assert 0.8 * rows * cols <= sj.n <= rows * cols
        assert sj.coordinates.shape == (sj.n, 2)

    def test_case_insensitive(self):
        assert road_network("sj") is road_network("SJ")

    def test_cached(self):
        assert road_network("SJ") is road_network("SJ")

    def test_seed_variants_distinct(self):
        a = road_network("SJ", seed=0)
        b = road_network("SJ", seed=1)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())

    def test_nested_categories_present(self):
        sj = road_network("SJ")
        for name in ("T1", "T2", "T3", "T4"):
            assert name in sj.categories

    def test_cal_has_featured_categories(self):
        cal = road_network("CAL")
        for name in ("Glacier", "Lake", "Crater", "Harbor"):
            assert name in cal.categories
        assert cal.categories.size("Glacier") == 1
        assert cal.categories.size("Harbor") == 94
        # Plus the nested sets.
        assert "T2" in cal.categories

    def test_relative_ordering_preserved(self):
        sj = road_network("SJ")
        cal = road_network("CAL")
        assert sj.n < cal.n
        assert sj.m < cal.m
