"""Unit tests for the synthetic road-network generators."""

import pytest

from repro.datasets.synthetic import (
    grid_road_network,
    largest_connected_component,
    radial_road_network,
)
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import single_source_distances

INF = float("inf")


class TestGridRoadNetwork:
    def test_size_roughly_rows_times_cols(self):
        g, coords = grid_road_network(10, 12, seed=1)
        assert 0.8 * 120 <= g.n <= 120
        assert len(coords) == g.n

    def test_connected(self):
        g, _ = grid_road_network(15, 15, seed=2)
        dist = single_source_distances(g, 0)
        assert all(d < INF for d in dist)

    def test_bidirectional(self):
        g, _ = grid_road_network(8, 8, seed=3)
        for u, v, w in g.edges():
            assert g.edge_weight(v, u) == w

    def test_weights_are_euclidean_scale(self):
        g, _ = grid_road_network(8, 8, seed=4)
        for _, _, w in g.edges():
            assert 0.0 < w < 3.0  # neighbouring jittered grid points

    def test_deterministic_in_seed(self):
        a, ca = grid_road_network(6, 6, seed=5)
        b, cb = grid_road_network(6, 6, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())
        assert ca.tolist() == cb.tolist()

    def test_different_seeds_differ(self):
        a, _ = grid_road_network(6, 6, seed=1)
        b, _ = grid_road_network(6, 6, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_low_degree(self):
        g, _ = grid_road_network(12, 12, seed=6)
        max_degree = max(g.out_degree(u) for u in range(g.n))
        assert max_degree <= 8  # road junction, not a hub

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            grid_road_network(1, 5)

    def test_no_removal_keeps_full_grid(self):
        g, _ = grid_road_network(5, 5, seed=7, removal_prob=0.0, diagonal_prob=0.0)
        assert g.n == 25
        assert g.m == 2 * (2 * 5 * 4)  # 40 undirected grid edges


class TestRadialRoadNetwork:
    def test_size(self):
        g, coords = radial_road_network(5, 12, seed=1)
        assert g.n <= 1 + 5 * 12
        assert len(coords) == g.n

    def test_connected(self):
        g, _ = radial_road_network(4, 10, seed=2)
        dist = single_source_distances(g, 0)
        assert all(d < INF for d in dist)

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            radial_road_network(0, 10)
        with pytest.raises(DatasetError):
            radial_road_network(3, 2)

    def test_deterministic(self):
        a, _ = radial_road_network(3, 8, seed=9)
        b, _ = radial_road_network(3, 8, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())


class TestLargestComponent:
    def test_keeps_biggest_and_relabels(self):
        import numpy as np

        g = DiGraph(6)
        # Component A: 0-1-2 (size 3); component B: 3-4 (size 2); 5 isolated.
        g.add_bidirectional_edge(0, 1, 1.0)
        g.add_bidirectional_edge(1, 2, 1.0)
        g.add_bidirectional_edge(3, 4, 1.0)
        g.freeze()
        coords = np.arange(12, dtype=float).reshape(6, 2)
        out, out_coords = largest_connected_component(g, coords)
        assert out.n == 3
        assert out.m == 4
        assert out_coords.tolist() == coords[:3].tolist()

    def test_already_connected_is_isomorphic(self):
        import numpy as np

        g = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], bidirectional=True
        )
        out, _ = largest_connected_component(g, np.zeros((4, 2)))
        assert out.n == 4
        assert out.m == g.m
