"""Unit tests for weight-variant transforms."""

import pytest

from repro.baselines.brute_force import brute_force_topk
from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.datasets.synthetic import grid_road_network
from repro.datasets.weights import (
    reweighted,
    tolled_weights,
    travel_time_weights,
    unit_weights,
)
from repro.graph.categories import CategoryIndex


@pytest.fixture(scope="module")
def road():
    g, _ = grid_road_network(8, 8, seed=9)
    return g


class TestTransforms:
    def test_topology_preserved(self, road):
        for transform in (
            unit_weights,
            lambda g: travel_time_weights(g, seed=1),
            lambda g: tolled_weights(g, toll=5.0, seed=1),
        ):
            out = transform(road)
            assert out.n == road.n
            assert out.m == road.m
            assert [v for v, _ in out.out_edges(0)] == [
                v for v, _ in road.out_edges(0)
            ]

    def test_unit_weights(self, road):
        out = unit_weights(road)
        assert all(w == 1.0 for _, _, w in out.edges())

    def test_travel_time_symmetric_per_road(self, road):
        out = travel_time_weights(road, seed=2)
        for u, v, w in out.edges():
            assert out.edge_weight(v, u) == pytest.approx(w)

    def test_travel_time_deterministic(self, road):
        a = travel_time_weights(road, seed=3)
        b = travel_time_weights(road, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())
        c = travel_time_weights(road, seed=4)
        assert sorted(a.edges()) != sorted(c.edges())

    def test_travel_time_scales_by_speed(self, road):
        out = travel_time_weights(road, seed=5, speed_classes=(0.5, 1.0, 2.0))
        for u, v, w in road.edges():
            speed = w / out.edge_weight(u, v)
            assert min(abs(speed - s) for s in (0.5, 1.0, 2.0)) < 1e-9

    def test_tolled_adds_toll_to_subset(self, road):
        out = tolled_weights(road, toll=100.0, tolled_fraction=0.3, seed=6)
        tolled = sum(
            1
            for u, v, w in road.edges()
            if out.edge_weight(u, v) == pytest.approx(w + 100.0)
        )
        untolled = sum(
            1
            for u, v, w in road.edges()
            if out.edge_weight(u, v) == pytest.approx(w)
        )
        assert tolled + untolled == road.m
        assert 0 < tolled < road.m

    def test_negative_toll_rejected(self, road):
        with pytest.raises(ValueError):
            tolled_weights(road, toll=-1.0)

    def test_reweighted_generic(self, road):
        out = reweighted(road, lambda u, v, w: 2.0 * w)
        for u, v, w in road.edges():
            assert out.edge_weight(u, v) == pytest.approx(2.0 * w)


class TestAlgorithmsAreWeightAgnostic:
    @pytest.mark.parametrize(
        "transform",
        [unit_weights, lambda g: travel_time_weights(g, seed=7)],
        ids=["unit", "travel-time"],
    )
    def test_all_algorithms_correct_under_transform(self, transform):
        g, _ = grid_road_network(4, 4, seed=11)
        reweighted_graph = transform(g)
        destinations = (reweighted_graph.n - 1, reweighted_graph.n // 2)
        expected = [
            round(p.length, 9)
            for p in brute_force_topk(reweighted_graph, 0, destinations, 5)
        ]
        solver = KPJSolver(
            reweighted_graph, CategoryIndex({"T": destinations}), landmarks=3
        )
        for algorithm in ALGORITHMS:
            result = solver.top_k(0, category="T", k=5, algorithm=algorithm)
            assert [round(x, 9) for x in result.lengths] == expected, algorithm
