"""Tests for the differential fuzzing subsystem (repro.fuzz)."""
