"""The committed seed corpus replays clean on every CI run.

Every ``fuzz/corpus/*.json`` file goes through the full differential
matrix — all registry algorithms × every kernel (dict, flat, native)
× cached/uncached × sequential/batch vs. the brute-force and Yen
oracles — and the corpus
itself is pinned byte-for-byte to its in-code definition so the files
and :mod:`repro.fuzz.corpus` can never drift apart.
"""

from pathlib import Path

import pytest

from repro.fuzz import replay_file, seed_corpus_cases
from repro.fuzz.generators import FuzzCase

CORPUS_DIR = Path(__file__).parents[2] / "fuzz" / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_exists_and_is_substantial():
    assert CORPUS_DIR.is_dir()
    assert len(CORPUS_FILES) >= 20


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_file_replays_clean(path):
    """All registry algorithms agree with the oracles on this instance."""
    failures = replay_file(str(path))
    assert not failures, "\n".join(failures)


def test_corpus_files_match_generation():
    """The committed files are exactly what the code generates."""
    cases = dict(seed_corpus_cases())
    committed = {p.stem: p for p in CORPUS_FILES}
    assert set(cases) == set(committed), (
        "corpus files out of sync with seed_corpus_cases(); "
        "regenerate with repro.fuzz.write_seed_corpus('fuzz/corpus')"
    )
    for name, case in cases.items():
        assert committed[name].read_text() == case.to_json(), (
            f"{name}.json drifted from its in-code definition"
        )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_file_parses_as_case(path):
    """Each file is a valid, self-validating FuzzCase document."""
    case = FuzzCase.from_json(path.read_text())
    assert case.n >= 1
    assert case.k >= 1
