"""Generator determinism, shape coverage, and case serialisation."""

import pytest

from repro.exceptions import QueryError
from repro.fuzz import CASE_SHAPES, FuzzCase, generate_case


class TestDeterminism:
    def test_same_seed_same_case(self):
        assert generate_case(42) == generate_case(42)

    def test_different_seeds_differ_somewhere(self):
        cases = {generate_case(seed).to_json() for seed in range(20)}
        assert len(cases) > 1

    def test_shape_rotation_covers_all_shapes(self):
        shapes = {generate_case(seed).shape for seed in range(len(CASE_SHAPES))}
        assert shapes == set(CASE_SHAPES)


class TestShapes:
    @pytest.mark.parametrize("shape", sorted(CASE_SHAPES))
    def test_shape_builds_a_frozen_graph(self, shape):
        case = generate_case(7, shape=shape)
        graph = case.graph()
        assert graph.frozen
        assert graph.n == case.n

    def test_dag_is_acyclic(self):
        case = generate_case(3, shape="dag")
        graph = case.graph()
        # Kahn's algorithm consumes every node iff the graph is a DAG.
        indeg = [0] * graph.n
        for _, v, _ in graph.edges():
            indeg[v] += 1
        queue = [u for u in range(graph.n) if indeg[u] == 0]
        seen = 0
        while queue:
            u = queue.pop()
            seen += 1
            for v, _ in graph.out_edges(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        assert seen == graph.n

    def test_parallel_shape_emits_duplicate_pairs(self):
        case = generate_case(11, shape="parallel")
        pairs = [(u, v) for u, v, _ in case.edges]
        assert len(pairs) > len(set(pairs))
        # freeze() collapses them to the minimum weight
        graph = case.graph()
        assert graph.m == len(set(pairs))

    def test_zero_weight_shape_has_zero_edges(self):
        case = generate_case(5, shape="zero_weight")
        assert any(w == 0.0 for _, _, w in case.edges)

    def test_unknown_shape_rejected(self):
        with pytest.raises(QueryError, match="unknown case shape"):
            generate_case(0, shape="moebius")

    def test_kpj_cases_carry_decoy_categories(self):
        for seed in range(40):
            case = generate_case(seed)
            if case.kind == "kpj":
                index = case.category_index()
                assert "singleton" in index
                assert index.has_category("empty")
                break
        else:  # pragma: no cover - statistically impossible
            pytest.fail("no kpj case in 40 seeds")


class TestSerialisation:
    def test_round_trip(self):
        for seed in range(12):
            case = generate_case(seed)
            assert FuzzCase.from_json(case.to_json()) == case

    def test_malformed_json_rejected(self):
        with pytest.raises(QueryError, match="malformed fuzz case JSON"):
            FuzzCase.from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(QueryError, match="malformed fuzz case"):
            FuzzCase.from_dict({"n": 3})

    def test_invalid_instance_rejected_on_construction(self):
        with pytest.raises(QueryError, match="self-loop"):
            FuzzCase(
                n=2, edges=((0, 0, 1.0),), kind="ksp",
                sources=(0,), destinations=(1,), k=1,
            )

    def test_kind_validated(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            FuzzCase(
                n=2, edges=((0, 1, 1.0),), kind="tsp",
                sources=(0,), destinations=(1,), k=1,
            )

    def test_category_must_label_destinations(self):
        with pytest.raises(QueryError, match="does not label"):
            FuzzCase(
                n=3, edges=((0, 1, 1.0),), kind="kpj",
                sources=(0,), destinations=(1,), k=1,
                categories={"T": (2,)}, category="T",
            )
