"""Harness behavior: clean runs, planted mutations, repro files."""

import json

import pytest

from repro.exceptions import QueryError
from repro.fuzz import MUTATIONS, check_case, generate_case, replay_file, run_fuzz
from repro.fuzz.harness import ORACLE_MAX_NODES, self_check
from repro.pathing.kernels import KERNELS


class TestCleanRuns:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(seed=0, cases=30, kernels=("dict",), shrink=False)
        assert report.ok, report.summary()
        assert report.cases_run == 30
        assert report.oracle_cases > 0
        assert report.invariant_cases > 0

    def test_all_kernels_clean(self):
        report = run_fuzz(seed=1, cases=12, kernels=KERNELS)
        assert report.ok, report.summary()

    def test_determinism(self):
        a = run_fuzz(seed=5, cases=10, kernels=("dict",))
        b = run_fuzz(seed=5, cases=10, kernels=("dict",))
        assert a.ok and b.ok
        assert a.oracle_cases == b.oracle_cases

    def test_time_budget_stops_early(self):
        report = run_fuzz(seed=0, cases=10_000, time_budget=0.3, kernels=("dict",))
        assert report.cases_run < 10_000
        assert report.ok, report.summary()

    def test_mode_dispatch_by_size(self):
        small = generate_case(0)
        assert small.n <= ORACLE_MAX_NODES
        assert check_case(small, ("dict",))[0] == "oracle"
        large = generate_case(0, min_nodes=20, max_nodes=25)
        assert check_case(large, ("dict",))[0] == "invariant"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(QueryError, match="unknown kernel"):
            check_case(generate_case(0), kernels=("cuda",))

    def test_unknown_mutation_rejected(self):
        with pytest.raises(QueryError, match="unknown mutation"):
            run_fuzz(cases=1, mutation="optimism")


class TestPlantedMutations:
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_detected(self, name):
        report = run_fuzz(
            seed=0, cases=30, kernels=("dict",), shrink=False,
            mutation=name, max_failures=1,
        )
        assert not report.ok, f"harness is blind to planted {name!r}"

    def test_self_check_all_green(self):
        outcomes = self_check(seed=0, cases_per_mutation=20, kernels=("dict",))
        assert all(outcomes.values()), outcomes
        assert outcomes["clean"] is True
        assert set(MUTATIONS) <= set(outcomes)


class TestReproFiles:
    def test_failure_writes_shrunk_replayable_repro(self, tmp_path):
        report = run_fuzz(
            seed=0, cases=30, kernels=("dict",), shrink=True,
            corpus_dir=str(tmp_path), mutation="drop-deviation",
            max_failures=1,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.repro_path is not None
        doc = json.loads(open(failure.repro_path).read())
        assert doc["version"] == 1
        assert doc["failures"]
        # Shrunk case is no bigger than the original.
        assert failure.case.n <= failure.original.n
        assert len(failure.case.edges) <= len(failure.original.edges)
        # The repro file replays deterministically: clean against the
        # honest code (the bug was planted, not real) but structurally
        # loadable and checkable.
        assert replay_file(failure.repro_path, kernels=("dict",)) == []

    def test_replay_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(QueryError, match="cannot read repro file"):
            replay_file(str(tmp_path / "nope.json"))

    def test_clean_run_writes_nothing(self, tmp_path):
        report = run_fuzz(
            seed=0, cases=10, kernels=("dict",), corpus_dir=str(tmp_path)
        )
        assert report.ok
        assert list(tmp_path.iterdir()) == []


class TestReportRendering:
    def test_summary_mentions_failures(self):
        report = run_fuzz(
            seed=0, cases=30, kernels=("dict",), shrink=False,
            mutation="length-drift", max_failures=1,
        )
        text = report.summary()
        assert "FAILURE" in text
        assert "oracle" in text

    def test_clean_summary(self):
        report = run_fuzz(seed=2, cases=5, kernels=("dict",))
        assert "all configurations agree" in report.summary()
