"""Metamorphic invariants hold on oracle-sized and large instances."""

import pytest

from repro.fuzz import generate_case
from repro.fuzz.invariants import check_invariants
from repro.fuzz.generators import simplified
from repro.fuzz.oracles import check_against_oracles, oracle_expectation
from repro.pathing.kernels import KERNELS


class TestInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_large_case_invariants_hold(self, seed):
        case = generate_case(seed, min_nodes=20, max_nodes=30)
        failures = check_invariants(case, kernels=KERNELS)
        assert not failures, "\n".join(failures)

    def test_invariants_also_hold_on_small_cases(self):
        # The invariant suite must agree with the oracle suite on
        # instances small enough to run both.
        case = generate_case(10)
        assert not check_invariants(case, kernels=("dict",))
        assert not check_against_oracles(case, kernels=("dict",))

    def test_broken_relation_is_flagged(self, monkeypatch):
        # Sabotage the independent Yen oracle: the G_Q-transform
        # equivalence check must notice the lengths no longer match.
        import repro.fuzz.invariants as inv

        case = generate_case(3, shape="grid", min_nodes=20, max_nodes=25)
        assert not inv.check_invariants(case, kernels=("dict",))
        monkeypatch.setattr(inv, "_yen_lengths", lambda c: (123.0,))
        failures = inv.check_invariants(case, kernels=("dict",))
        assert any("gq_transform" in f for f in failures)


class TestOracleExpectation:
    def test_expectation_counts_and_ties(self):
        # Three tied shortest paths, k=2: lengths pinned, admissible
        # set contains all three.
        case = simplified(
            generate_case(0),
            n=5,
            edges=(
                (0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0),
                (1, 4, 1.0), (2, 4, 1.0), (3, 4, 1.0),
            ),
            kind="ksp",
            sources=(0,),
            destinations=(4,),
            k=2,
        )
        expectation = oracle_expectation(case)
        assert expectation.lengths == (2.0, 2.0)
        assert len(expectation.admissible) == 3

    def test_empty_when_unreachable(self):
        case = simplified(
            generate_case(0),
            n=3,
            edges=((1, 0, 1.0),),
            kind="ksp",
            sources=(0,),
            destinations=(2,),
            k=3,
        )
        expectation = oracle_expectation(case)
        assert expectation.lengths == ()
        assert not expectation.admissible
