"""Shrinker contract: failures preserved, instances minimised."""

from repro.fuzz import MUTATIONS, check_case, generate_case, shrink_case
from repro.fuzz.generators import FuzzCase, simplified


def _failing_case_for(mutation_name):
    """First generated case the planted mutation makes fail."""
    mutation = MUTATIONS[mutation_name]
    for seed in range(200):
        case = generate_case(seed)
        if check_case(case, ("dict",), mutation)[1]:
            return case, mutation
    raise AssertionError("no failing case found in 200 seeds")


def _still_fails(mutation):
    def predicate(candidate):
        return bool(check_case(candidate, ("dict",), mutation)[1])

    return predicate


class TestShrink:
    def test_shrunk_case_still_fails_and_is_smaller(self):
        case, mutation = _failing_case_for("drop-deviation")
        shrunk = shrink_case(case, _still_fails(mutation))
        assert check_case(shrunk, ("dict",), mutation)[1]
        assert shrunk.n <= case.n
        assert len(shrunk.edges) <= len(case.edges)
        assert shrunk.k <= case.k

    def test_shrink_drops_category_indirection(self):
        case, mutation = _failing_case_for("cutoff-off-by-one")
        shrunk = shrink_case(case, _still_fails(mutation))
        assert shrunk.category is None
        assert not shrunk.categories

    def test_non_failing_case_unchanged_shape(self):
        # The predicate never fires, so nothing may be "kept".
        case = generate_case(0)
        shrunk = shrink_case(case, lambda c: False)
        assert shrunk == case

    def test_budget_respected(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True  # everything "fails" — worst case for the budget

        case = generate_case(1)
        shrink_case(case, predicate, max_checks=25)
        assert len(calls) <= 25

    def test_shrink_compacts_node_ids(self):
        # A failing case whose interesting part touches few nodes
        # shrinks to a dense relabeling with no ghost ids.
        case, mutation = _failing_case_for("length-drift")
        shrunk = shrink_case(case, _still_fails(mutation))
        used = (
            {u for u, _, _ in shrunk.edges}
            | {v for _, v, _ in shrunk.edges}
            | set(shrunk.sources)
            | set(shrunk.destinations)
        )
        assert used == set(range(shrunk.n))

    def test_simplified_helper_replaces_fields(self):
        case = generate_case(0)
        other = simplified(case, k=1)
        assert isinstance(other, FuzzCase)
        assert other.k == 1
        assert other.category is None
