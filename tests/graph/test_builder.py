"""Unit tests for the labelled graph builder."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder


class TestGraphBuilder:
    def test_labels_are_interned_in_order(self):
        b = GraphBuilder()
        b.add_edge("x", "y", 1.0)
        b.add_edge("y", "z", 2.0)
        built = b.build()
        assert built.labels == ["x", "y", "z"]
        assert built.node_id("z") == 2

    def test_duplicate_labels_reuse_ids(self):
        b = GraphBuilder()
        assert b.node("a") == b.node("a") == 0
        assert b.num_nodes == 1

    def test_build_produces_frozen_graph(self):
        b = GraphBuilder()
        b.add_edge(1, 2, 1.0)
        built = b.build()
        assert built.graph.frozen
        assert built.graph.m == 1

    def test_bidirectional_builder(self):
        b = GraphBuilder(bidirectional=True)
        b.add_edge("a", "b", 5.0)
        built = b.build()
        assert built.graph.m == 2
        assert built.graph.edge_weight(built.node_id("b"), built.node_id("a")) == 5.0

    def test_add_node_creates_isolated_node(self):
        b = GraphBuilder()
        b.add_edge("a", "b", 1.0)
        b.add_node("island")
        built = b.build()
        assert built.graph.n == 3
        assert built.graph.out_degree(built.node_id("island")) == 0

    def test_unknown_label_raises(self):
        built = GraphBuilder().build()
        with pytest.raises(GraphError):
            built.node_id("nope")

    def test_num_edges_tracks_additions(self):
        b = GraphBuilder()
        b.add_edge("a", "b", 1.0)
        b.add_edge("b", "c", 1.0)
        assert b.num_edges == 2

    def test_arbitrary_hashable_labels(self):
        b = GraphBuilder()
        b.add_edge((1, 2), frozenset({3}), 1.0)
        built = b.build()
        assert built.node_id((1, 2)) == 0
        assert built.node_id(frozenset({3})) == 1

    def test_index_is_consistent_with_labels(self):
        b = GraphBuilder()
        for pair in [("a", "b"), ("c", "a"), ("b", "c")]:
            b.add_edge(*pair, 1.0)
        built = b.build()
        for node_id, label in enumerate(built.labels):
            assert built.index[label] == node_id
