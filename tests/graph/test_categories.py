"""Unit tests for the category (POI) inverted index."""

import pytest

from repro.exceptions import QueryError
from repro.graph.categories import CategoryIndex


@pytest.fixture
def index():
    return CategoryIndex({"Hotel": [5, 2, 8], "Fuel": [2], "Park": [9, 9, 1]})


class TestLookups:
    def test_nodes_sorted_and_deduped(self, index):
        assert index.nodes_of("Hotel") == (2, 5, 8)
        assert index.nodes_of("Park") == (1, 9)

    def test_node_set_membership(self, index):
        assert 5 in index.node_set("Hotel")
        assert 3 not in index.node_set("Hotel")

    def test_unknown_category_raises(self, index):
        with pytest.raises(QueryError):
            index.nodes_of("Restaurant")

    def test_empty_category_raises(self):
        index = CategoryIndex({"Empty": []})
        with pytest.raises(QueryError):
            index.nodes_of("Empty")
        assert index.has_category("Empty")

    def test_union(self, index):
        assert index.union(["Hotel", "Fuel"]) == (2, 5, 8)
        assert index.union(["Fuel", "Park"]) == (1, 2, 9)

    def test_categories_of_node(self, index):
        assert index.categories_of(2) == ("Fuel", "Hotel")
        assert index.categories_of(42) == ()

    def test_size(self, index):
        assert index.size("Hotel") == 3
        assert index.size("Fuel") == 1

    def test_contains_and_iter(self, index):
        assert "Hotel" in index
        assert "Nope" not in index
        assert list(index) == ["Fuel", "Hotel", "Park"]
        assert len(index) == 3


class TestConstruction:
    def test_from_node_labels(self):
        index = CategoryIndex.from_node_labels({0: ["A"], 1: ["A", "B"], 2: []})
        assert index.nodes_of("A") == (0, 1)
        assert index.nodes_of("B") == (1,)

    def test_merged_with(self):
        a = CategoryIndex({"X": [1], "Y": [2]})
        b = CategoryIndex({"Y": [3], "Z": [4]})
        merged = a.merged_with(b)
        assert merged.nodes_of("X") == (1,)
        assert merged.nodes_of("Y") == (2, 3)
        assert merged.nodes_of("Z") == (4,)
        # Originals are untouched.
        assert a.nodes_of("Y") == (2,)
