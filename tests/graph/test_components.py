"""Unit tests for SCC computation (cross-checked against networkx)."""

import random

import networkx as nx
import numpy as np
import pytest

from repro.graph.components import (
    is_strongly_connected,
    largest_strongly_connected_subgraph,
    strongly_connected_components,
)
from repro.graph.digraph import DiGraph
from tests.conftest import random_graph


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from((u, v) for u, v, _ in graph.edges())
    return g


class TestSCC:
    def test_single_cycle(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        assert strongly_connected_components(g) == [[0, 1, 2]]
        assert is_strongly_connected(g)

    def test_dag_gives_singletons(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        components = strongly_connected_components(g)
        assert sorted(map(tuple, components)) == [(0,), (1,), (2,)]
        assert not is_strongly_connected(g)

    def test_two_cycles_with_bridge(self):
        g = DiGraph.from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),  # bridge
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 2, 1.0),
                (5, 0, 1.0),  # tail into the first cycle
            ],
        )
        components = {tuple(c) for c in strongly_connected_components(g)}
        assert components == {(0, 1), (2, 3, 4), (5,)}

    def test_empty_and_singleton(self):
        assert strongly_connected_components(DiGraph(0).freeze()) == []
        assert is_strongly_connected(DiGraph(0).freeze())
        assert strongly_connected_components(DiGraph(1).freeze()) == [[0]]

    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(201)
        for _ in range(30):
            g = random_graph(rng, min_nodes=5, max_nodes=20)
            ours = {tuple(c) for c in strongly_connected_components(g)}
            theirs = {
                tuple(sorted(c))
                for c in nx.strongly_connected_components(to_networkx(g))
            }
            assert ours == theirs

    def test_deep_path_no_recursion_limit(self):
        """A 50k-node path would blow a recursive Tarjan's stack."""
        n = 50_000
        g = DiGraph.from_edges(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        components = strongly_connected_components(g)
        assert len(components) == n


class TestLargestSubgraph:
    def test_extracts_biggest_scc(self):
        g = DiGraph.from_edges(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 2.0),
                (3, 4, 1.0),  # small acyclic side
            ],
        )
        sub, _, kept = largest_strongly_connected_subgraph(g)
        assert kept == [0, 1, 2]
        assert sub.n == 3
        assert sub.m == 3
        assert is_strongly_connected(sub)
        assert sub.edge_weight(2, 0) == 2.0

    def test_coordinates_filtered(self):
        g = DiGraph.from_edges(4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0)])
        coords = np.arange(8, dtype=float).reshape(4, 2)
        _, kept_coords, kept = largest_strongly_connected_subgraph(g, coords)
        assert kept == [0, 1]
        assert kept_coords.tolist() == coords[:2].tolist()

    def test_empty_graph(self):
        sub, coords, kept = largest_strongly_connected_subgraph(DiGraph(0).freeze())
        assert sub.n == 0
        assert kept == []

    def test_queries_work_on_extracted_subgraph(self):
        rng = random.Random(202)
        g = random_graph(rng, min_nodes=10, max_nodes=20)
        sub, _, kept = largest_strongly_connected_subgraph(g)
        if sub.n < 3:
            pytest.skip("degenerate SCC for this seed")
        from repro.core.kpj import KPJSolver

        solver = KPJSolver(sub, landmarks=None)
        result = solver.top_k(0, destinations=[sub.n - 1], k=3)
        assert result.k_found >= 1  # strongly connected: must reach it
