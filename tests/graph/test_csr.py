"""Unit tests for the CSR snapshot."""

import numpy as np

from repro.graph.csr import to_csr
from repro.graph.digraph import DiGraph


def make_graph():
    return DiGraph.from_edges(
        4, [(0, 1, 1.0), (0, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)]
    )


class TestCSR:
    def test_shapes(self):
        csr = to_csr(make_graph())
        assert csr.n == 4
        assert csr.m == 4
        assert len(csr.indptr) == 5
        assert len(csr.indices) == len(csr.weights) == 4

    def test_neighbors_and_weights(self):
        csr = to_csr(make_graph())
        assert list(csr.neighbors(0)) == [1, 2]
        assert list(csr.edge_weights(0)) == [1.0, 2.0]
        assert list(csr.neighbors(1)) == []

    def test_out_degrees(self):
        csr = to_csr(make_graph())
        assert list(csr.out_degrees()) == [2, 0, 1, 1]

    def test_degree_histogram(self):
        csr = to_csr(make_graph())
        assert csr.degree_histogram() == {0: 1, 1: 2, 2: 1}

    def test_empty_graph(self):
        csr = to_csr(DiGraph(3).freeze())
        assert csr.n == 3
        assert csr.m == 0
        assert list(csr.out_degrees()) == [0, 0, 0]

    def test_round_trip_matches_adjacency(self):
        g = make_graph()
        csr = to_csr(g)
        for u in range(g.n):
            expected = g.out_edges(u)
            got = list(zip(csr.neighbors(u), csr.edge_weights(u)))
            assert [(int(v), float(w)) for v, w in got] == list(expected)

    def test_dtypes(self):
        csr = to_csr(make_graph())
        assert csr.indptr.dtype == np.int64
        assert csr.indices.dtype == np.int64
        assert csr.weights.dtype == np.float64
