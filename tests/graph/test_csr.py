"""Unit tests for the CSR snapshot."""

import numpy as np

from repro.graph.csr import to_csr
from repro.graph.digraph import DiGraph


def make_graph():
    return DiGraph.from_edges(
        4, [(0, 1, 1.0), (0, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)]
    )


class TestCSR:
    def test_shapes(self):
        csr = to_csr(make_graph())
        assert csr.n == 4
        assert csr.m == 4
        assert len(csr.indptr) == 5
        assert len(csr.indices) == len(csr.weights) == 4

    def test_neighbors_and_weights(self):
        csr = to_csr(make_graph())
        assert list(csr.neighbors(0)) == [1, 2]
        assert list(csr.edge_weights(0)) == [1.0, 2.0]
        assert list(csr.neighbors(1)) == []

    def test_out_degrees(self):
        csr = to_csr(make_graph())
        assert list(csr.out_degrees()) == [2, 0, 1, 1]

    def test_degree_histogram(self):
        csr = to_csr(make_graph())
        assert csr.degree_histogram() == {0: 1, 1: 2, 2: 1}

    def test_empty_graph(self):
        csr = to_csr(DiGraph(3).freeze())
        assert csr.n == 3
        assert csr.m == 0
        assert list(csr.out_degrees()) == [0, 0, 0]

    def test_round_trip_matches_adjacency(self):
        g = make_graph()
        csr = to_csr(g)
        for u in range(g.n):
            expected = g.out_edges(u)
            got = list(zip(csr.neighbors(u), csr.edge_weights(u)))
            assert [(int(v), float(w)) for v, w in got] == list(expected)

    def test_dtypes(self):
        csr = to_csr(make_graph())
        assert csr.indptr.dtype == np.int64
        assert csr.indices.dtype == np.int64
        assert csr.weights.dtype == np.float64


class TestReverse:
    def test_reverse_edges_are_transposed(self):
        g = make_graph()
        csr = to_csr(g)
        rev = csr.reverse()
        fwd = {
            (u, int(v), float(w))
            for u in range(g.n)
            for v, w in zip(csr.neighbors(u), csr.edge_weights(u))
        }
        bwd = {
            (int(v), u, float(w))
            for u in range(g.n)
            for v, w in zip(rev.neighbors(u), rev.edge_weights(u))
        }
        assert fwd == bwd

    def test_reverse_is_cached_and_involutive(self):
        csr = to_csr(make_graph())
        rev = csr.reverse()
        assert csr.reverse() is rev
        assert rev.reverse() is csr

    def test_reverse_empty_graph(self):
        from repro.graph.digraph import DiGraph

        csr = to_csr(DiGraph(3).freeze())
        rev = csr.reverse()
        assert rev.n == 3 and rev.m == 0


class TestSharedCSR:
    def test_cached_on_frozen_digraph(self):
        from repro.graph.csr import shared_csr

        g = make_graph()
        assert shared_csr(g) is shared_csr(g)

    def test_reversed_view_shares_base_export(self):
        from repro.graph.csr import shared_csr
        from repro.graph.digraph import ReversedView

        g = make_graph()
        rg = ReversedView(g)
        assert shared_csr(rg) is shared_csr(g).reverse()

    def test_matches_to_csr(self):
        from repro.graph.csr import shared_csr

        g = make_graph()
        a, b = shared_csr(g), to_csr(g)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)


class TestQueryOverlay:
    def _check(self, g, destinations, sources=()):
        from repro.graph.csr import query_overlay, shared_csr
        from repro.graph.virtual import build_query_graph

        srcs = tuple(sources) if len(sources) > 1 else (0,)
        qg = build_query_graph(g, srcs if len(sources) > 1 else (0,), destinations)
        expected = to_csr(qg.graph)
        got = query_overlay(shared_csr(g), sorted(set(destinations)), sources=sources)
        assert np.array_equal(got.indptr, expected.indptr)
        assert np.array_equal(got.indices, expected.indices)
        assert np.array_equal(got.weights, expected.weights)

    def test_single_source_overlay_matches_digraph_transform(self):
        self._check(make_graph(), [1, 3])

    def test_multi_source_overlay_matches(self):
        self._check(make_graph(), [3], sources=(0, 1, 2))

    def test_overlay_on_random_graphs(self):
        import random

        from tests.conftest import random_graph

        rng = random.Random(7)
        for _ in range(10):
            g = random_graph(rng)
            dests = sorted({rng.randrange(g.n) for _ in range(3)})
            self._check(g, dests)
